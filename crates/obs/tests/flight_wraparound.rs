//! Wraparound stress tests for the bounded event rings: the flight
//! recorder and the journal must survive many concurrent writers pushing
//! far past capacity without tearing entries, and must drain oldest-first.
//!
//! Torn-entry detection: every writer encodes `(writer, counter)` into the
//! event it records — in the message, the `unix_ms` stamp, and a field —
//! so any cross-contamination between two writers' entries is visible as a
//! mismatch between the three encodings.

use bp_obs::flight::{FlightEntry, FlightRecorder};
use bp_obs::{Journal, Level, LogEvent, LogLevel};
use std::sync::Arc;

const WRITERS: u64 = 8;
const PER_WRITER: u64 = 4_000;

fn encoded_event(writer: u64, counter: u64) -> LogEvent {
    let token = writer * 1_000_000 + counter;
    LogEvent {
        unix_ms: token,
        level: LogLevel::Info,
        target: format!("writer{writer}"),
        message: format!("w{writer}c{counter}"),
        fields: vec![("token".to_owned(), token.to_string())],
    }
}

/// Panics unless every encoding inside `entry` agrees on one
/// `(writer, counter)` pair — i.e. the entry is not torn.
fn assert_consistent(entry: &FlightEntry) {
    let writer = entry.event.unix_ms / 1_000_000;
    let counter = entry.event.unix_ms % 1_000_000;
    assert_eq!(
        entry.event.message,
        format!("w{writer}c{counter}"),
        "torn entry: message disagrees with stamp in {entry:?}"
    );
    assert_eq!(
        entry.event.target,
        format!("writer{writer}"),
        "torn entry: target disagrees with stamp in {entry:?}"
    );
    assert_eq!(
        entry.event.fields,
        vec![("token".to_owned(), entry.event.unix_ms.to_string())],
        "torn entry: field disagrees with stamp in {entry:?}"
    );
    assert!(writer < WRITERS && counter < PER_WRITER, "{entry:?}");
}

#[test]
fn concurrent_writers_never_tear_and_drain_oldest_first() {
    let ring = Arc::new(FlightRecorder::new(512));
    let handles: Vec<_> = (0..WRITERS)
        .map(|writer| {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for counter in 0..PER_WRITER {
                    ring.record_log(&encoded_event(writer, counter));
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    assert_eq!(ring.total_recorded(), WRITERS * PER_WRITER);
    let entries = ring.snapshot();
    assert_eq!(entries.len(), 512, "full ring retains exactly capacity");
    for entry in &entries {
        assert_consistent(entry);
    }
    // Oldest-first, strictly increasing, and all from the newest window of
    // tickets (nothing older than capacity-from-the-end survives).
    for pair in entries.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "{pair:?}");
    }
    let floor = WRITERS * PER_WRITER - 512;
    assert!(
        entries.iter().all(|e| e.seq >= floor),
        "an evicted-generation entry survived the wraparound"
    );
}

#[test]
fn snapshots_taken_mid_storm_are_internally_consistent() {
    let ring = Arc::new(FlightRecorder::new(256));
    let writers: Vec<_> = (0..WRITERS)
        .map(|writer| {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for counter in 0..PER_WRITER {
                    ring.record_log(&encoded_event(writer, counter));
                }
            })
        })
        .collect();
    // Read concurrently with the writes: every observed entry must be
    // whole and every observed snapshot strictly ordered.
    for _ in 0..200 {
        let entries = ring.snapshot();
        for entry in &entries {
            assert_consistent(entry);
        }
        for pair in entries.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "{pair:?}");
        }
    }
    for handle in writers {
        handle.join().unwrap();
    }
}

#[test]
fn render_during_wraparound_stays_line_oriented() {
    let ring = Arc::new(FlightRecorder::new(64));
    let writer = {
        let ring = Arc::clone(&ring);
        std::thread::spawn(move || {
            for counter in 0..PER_WRITER {
                ring.record_log(&encoded_event(0, counter));
            }
        })
    };
    for _ in 0..50 {
        let text = ring.render();
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("# bp-flight dump v1:"), "{header}");
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }
    writer.join().unwrap();
}

#[test]
fn journal_wraparound_under_concurrent_writers() {
    let journal = Arc::new(Journal::new(128));
    let handles: Vec<_> = (0..WRITERS)
        .map(|writer| {
            let journal = Arc::clone(&journal);
            std::thread::spawn(move || {
                for counter in 0..1_000u64 {
                    journal.record(Level::Info, format!("w{writer}c{counter}"));
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let events = journal.events();
    assert_eq!(events.len(), 128);
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "drain must be oldest-first");
    }
    let total = WRITERS * 1_000;
    assert_eq!(journal.dropped() + events.len() as u64, total);
}
