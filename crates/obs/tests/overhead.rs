//! Micro-measurement of the tracing layer's per-operation overhead —
//! the numbers quoted in EXPERIMENTS.md § E10. Ignored by default
//! (timing assertions are meaningless on shared CI hardware); run with:
//!
//! ```sh
//! cargo test -p bp-obs --release --test overhead -- --ignored --nocapture
//! ```

use std::hint::black_box;

use bp_obs::{sampler, trace, ClockHandle, Obs};

/// Wall-clock a closure and return its mean per-iteration cost in ns.
fn per_op_ns(iters: u64, f: impl FnOnce()) -> f64 {
    let clock = ClockHandle::real();
    let watch = clock.start();
    f();
    watch.elapsed().as_nanos() as f64 / iters as f64
}

#[test]
#[ignore = "micro-benchmark: run explicitly with --ignored --nocapture"]
fn tracing_per_op_costs() {
    const N: u64 = 10_000_000;
    let obs = Obs::isolated();
    let hist = obs.histogram("bench.overhead.latency_us");
    let clock = ClockHandle::real();

    // Span creation with the tracer disabled: the claimed cost is one
    // relaxed atomic load (the ENABLED check) plus guard construction.
    trace::set_enabled(false);
    let span_disabled = per_op_ns(N, || {
        for i in 0..N {
            black_box(trace::span("bench"));
            black_box(i);
        }
    });

    // Histogram record with no trace context: the pre-existing cost.
    let record_plain = per_op_ns(N, || {
        for i in 0..N {
            hist.record(black_box(i % 4096));
        }
    });

    // Histogram record under an active context: adds the thread-local
    // read plus two relaxed stores (the exemplar id/value slots).
    let record_exemplar = {
        let _ctx = trace::enter_new(&clock);
        per_op_ns(N, || {
            for i in 0..N {
                hist.record(black_box(i % 4096));
            }
        })
    };

    // Context mint at an entry point: clock read + splitmix64 + two
    // thread-local operations (install now, restore at drop).
    const M: u64 = 1_000_000;
    let mint = per_op_ns(M, || {
        for i in 0..M {
            black_box(trace::enter_new(&clock));
            black_box(i);
        }
    });

    // Tail-sampler offer, both verdicts. Per *request*, not per span.
    let tail = sampler::TailSampler::new(&obs, 16, 256);
    let offer = |id: u64| sampler::TraceRecord {
        trace_id: id,
        path: "bench",
        elapsed_us: 500,
        outcome: sampler::TraceOutcome::Ok,
        unix_ms: 0,
        tree: None,
    };
    // id % 16 != 0 → dropped: one counter bump, no lock.
    let offer_dropped = per_op_ns(M, || {
        for i in 0..M {
            black_box(tail.offer(offer(black_box(16 * i + 1))));
        }
    });
    // id % 16 == 0 → kept: ring push under the mutex, evicting oldest.
    let offer_kept = per_op_ns(M, || {
        for i in 0..M {
            black_box(tail.offer(offer(black_box(16 * (i + 1)))));
        }
    });

    println!("span() with tracer disabled : {span_disabled:7.2} ns/op");
    println!("histogram record, no context: {record_plain:7.2} ns/op");
    println!("histogram record + exemplar : {record_exemplar:7.2} ns/op");
    println!("context mint (enter_new)    : {mint:7.2} ns/op");
    println!("sampler offer, dropped      : {offer_dropped:7.2} ns/op");
    println!("sampler offer, kept         : {offer_kept:7.2} ns/op");

    // Generous sanity bounds — catches an accidental syscall or lock on
    // the hot paths, not hardware variance.
    assert!(span_disabled < 1_000.0);
    assert!(record_exemplar < record_plain + 1_000.0);
    assert!(mint < 10_000.0);
    assert!(offer_dropped < 1_000.0);
}
