//! Property tests for the log₂ histogram bucketing.

use bp_obs::{bucket_bounds, bucket_index, Histogram, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

proptest! {
    /// Bucket assignment is monotone: larger samples never land in a
    /// smaller bucket.
    #[test]
    fn bucket_assignment_is_monotone(a: u64, b: u64) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
    }

    /// Every sample lands inside its bucket's stated bounds — assignment
    /// loses nothing at the edges.
    #[test]
    fn samples_fall_within_their_bucket_bounds(v: u64) {
        let idx = bucket_index(v);
        let (lo, hi) = bucket_bounds(idx);
        prop_assert!(lo <= v && v <= hi, "{v} outside bucket {idx} = [{lo}, {hi}]");
    }

    /// Recording any batch of samples is lossless in aggregate: the
    /// per-bucket counts sum to the sample count, and sum/max are exact.
    #[test]
    fn recording_is_lossless(samples in proptest::collection::vec(any::<u64>(), 0..200)) {
        let h = Histogram::default();
        let mut sum = 0u64;
        for &v in &samples {
            h.record(v);
            sum = sum.wrapping_add(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), samples.len() as u64);
        prop_assert_eq!(snap.max, samples.iter().copied().max().unwrap_or(0));
        prop_assert_eq!(snap.sum, sum);
    }
}

/// Deterministic sweep of every boundary: for each bucket, its exact lower
/// and upper bounds map back to it, and values one past a boundary map to
/// the neighbor. Boundaries are where off-by-one bugs live, so this is
/// exhaustive rather than sampled.
#[test]
fn boundaries_are_exact() {
    for idx in 0..HISTOGRAM_BUCKETS {
        let (lo, hi) = bucket_bounds(idx);
        assert_eq!(bucket_index(lo), idx, "lower bound of bucket {idx}");
        assert_eq!(bucket_index(hi), idx, "upper bound of bucket {idx}");
        if idx + 1 < HISTOGRAM_BUCKETS {
            assert_eq!(
                bucket_index(hi + 1),
                idx + 1,
                "first value past bucket {idx}"
            );
        }
        if lo > 0 {
            assert_eq!(
                bucket_index(lo - 1),
                idx - 1,
                "last value before bucket {idx}"
            );
        }
    }
}

/// Quantiles never understate the data: the reported quantile is an upper
/// bound within the observed max.
#[test]
fn quantiles_are_clamped_upper_bounds() {
    let h = Histogram::default();
    for v in [3u64, 3, 3, 200, 90_000] {
        h.record(v);
    }
    let s = h.snapshot();
    assert!(s.p50() >= 3);
    assert!(s.p99() <= s.max);
    assert_eq!(s.max, 90_000);
}
