//! Property tests for Prometheus label-value escaping: hostile values
//! (backslashes, quotes, newlines, arbitrary UTF-8) must round-trip
//! through the text exposition format without loss, and a rendered sample
//! line must always stay one line that a spec-faithful parser can take
//! apart again.

use bp_obs::expo::{escape_label_value, render_labeled_sample};
use proptest::prelude::*;

/// Inverse of `escape_label_value`, written against the exposition spec
/// (not against the implementation): `\\` → `\`, `\"` → `"`, `\n` → LF.
fn unescape_label_value(escaped: &str) -> Result<String, String> {
    let mut out = String::with_capacity(escaped.len());
    let mut chars = escaped.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            if c == '"' || c == '\n' {
                return Err(format!("unescaped {c:?} in label value"));
            }
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            other => return Err(format!("dangling escape \\{other:?}")),
        }
    }
    Ok(out)
}

/// A parsed exposition sample: metric name, label pairs, value.
type ParsedSample = (String, Vec<(String, String)>, i64);

/// Parses `name{k="v",…} value\n` back apart. Walks the quoted strings
/// respecting escapes, so embedded `,`/`}`/`"` in values do not confuse
/// it.
fn parse_sample_line(line: &str) -> Result<ParsedSample, String> {
    let line = line.strip_suffix('\n').ok_or("missing newline")?;
    let (head, value) = line.rsplit_once(' ').ok_or("missing value")?;
    let value: i64 = value.parse().map_err(|e| format!("bad value: {e}"))?;
    let Some(brace) = head.find('{') else {
        return Ok((head.to_owned(), Vec::new(), value));
    };
    let name = head[..brace].to_owned();
    let labels_raw = head[brace + 1..]
        .strip_suffix('}')
        .ok_or("unterminated label set")?;
    let mut labels = Vec::new();
    let mut rest = labels_raw;
    while !rest.is_empty() {
        let eq = rest.find("=\"").ok_or("missing =\" in label")?;
        let key = rest[..eq].to_owned();
        // Scan to the closing quote, skipping escape pairs. Escapes are
        // all-ASCII, so byte stepping lands on char boundaries.
        let bytes = rest.as_bytes();
        let mut i = eq + 2;
        let mut end = None;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => {
                    end = Some(i);
                    break;
                }
                _ => i += 1,
            }
        }
        let end = end.ok_or("unterminated label value")?;
        labels.push((key, unescape_label_value(&rest[eq + 2..end])?));
        let tail = &rest[end + 1..];
        rest = tail.strip_prefix(',').unwrap_or(tail);
    }
    Ok((name, labels, value))
}

proptest! {
    /// Escaping is lossless over the printable/multibyte alphabet: any
    /// string survives escape → unescape.
    #[test]
    fn escape_round_trips(value in ".{0,40}") {
        let escaped = escape_label_value(&value);
        prop_assert_eq!(unescape_label_value(&escaped).unwrap(), value);
    }

    /// Explicitly hostile alphabet: dense mixes of backslash, quote, and
    /// literal newline (the three characters the spec escapes), including
    /// consecutive backslashes and trailing backslashes.
    #[test]
    fn hostile_values_round_trip(value in "[\\\"\nab]{0,40}") {
        let escaped = escape_label_value(&value);
        prop_assert_eq!(unescape_label_value(&escaped).unwrap(), value);
    }

    /// A rendered sample stays exactly one terminated line, and a
    /// spec-faithful parser recovers every label value byte-for-byte.
    #[test]
    fn rendered_samples_parse_back(
        a in "[\\\"\na-z ]{0,20}",
        b in ".{0,20}",
        value in any::<i64>(),
    ) {
        let line = render_labeled_sample(
            "bp_build_info",
            &[("alpha", a.as_str()), ("beta", b.as_str())],
            value,
        );
        prop_assert_eq!(line.matches('\n').count(), 1, "{:?}", line);
        prop_assert!(line.ends_with('\n'));
        let (name, labels, got) = parse_sample_line(&line).unwrap();
        prop_assert_eq!(name, "bp_build_info");
        prop_assert_eq!(got, value);
        prop_assert_eq!(labels[0].clone(), ("alpha".to_owned(), a));
        prop_assert_eq!(labels[1].clone(), ("beta".to_owned(), b));
    }
}

/// The exact examples from the exposition-format documentation.
#[test]
fn spec_examples() {
    assert_eq!(escape_label_value(r"\ and \\"), r"\\ and \\\\");
    assert_eq!(escape_label_value("\"quoted\""), "\\\"quoted\\\"");
    assert_eq!(escape_label_value("line\nbreak"), "line\\nbreak");
    let (_, labels, _) =
        parse_sample_line("m{path=\"C:\\\\tmp\\\"x\\n\"} 1\n").expect("spec line parses");
    assert_eq!(labels[0].1, "C:\\tmp\"x\n");
}
