//! Deterministic-interleaving stress tests for the sharded metrics
//! primitives: seeded schedules, yield-injection at pseudorandom points,
//! and exact totals once every writer has joined.
//!
//! The counter trades read-time exactness for write-time scalability
//! (padded shards, thread-sticky assignment); these tests pin down the
//! contract that matters: a *quiescent* counter reads the precise total,
//! under any interleaving, with any writer-to-shard ratio.

use bp_obs::{Counter, Gauge};
use std::sync::Arc;

/// A splitmix-style PRNG: deterministic per seed, no global state, so a
/// failing schedule is reproducible from its seed alone.
struct Schedule(u64);

impl Schedule {
    fn new(seed: u64) -> Self {
        Schedule(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Yields at seed-determined points to perturb the interleaving.
    fn maybe_yield(&mut self) {
        if self.next().is_multiple_of(8) {
            std::thread::yield_now();
        }
    }
}

#[test]
fn quiescent_counter_total_is_exact_for_seeded_mixed_adds() {
    for seed in [1u64, 7, 42] {
        let counter = Arc::new(Counter::default());
        let mut writers = Vec::new();
        for thread in 0..8u64 {
            let counter = Arc::clone(&counter);
            writers.push(std::thread::spawn(move || {
                let mut schedule = Schedule::new(seed * 1013 + thread);
                let mut local = 0u64;
                for _ in 0..10_000 {
                    let amount = schedule.next() % 7;
                    counter.add(amount);
                    local += amount;
                    schedule.maybe_yield();
                }
                local
            }));
        }
        let expected: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(counter.get(), expected, "seed {seed}");
    }
}

#[test]
fn counter_stays_exact_with_more_writers_than_shards() {
    // 48 writers over 16 shards: each shard serves several sticky
    // threads concurrently; contention must not lose increments.
    let counter = Arc::new(Counter::default());
    let writers: Vec<_> = (0..48u64)
        .map(|thread| {
            let counter = Arc::clone(&counter);
            std::thread::spawn(move || {
                let mut schedule = Schedule::new(0x5eed + thread);
                for _ in 0..2_000 {
                    counter.inc();
                    schedule.maybe_yield();
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    assert_eq!(counter.get(), 48 * 2_000);
}

#[test]
fn gauge_balanced_add_sub_returns_to_zero() {
    let gauge = Arc::new(Gauge::default());
    let writers: Vec<_> = (0..8u64)
        .map(|thread| {
            let gauge = Arc::clone(&gauge);
            std::thread::spawn(move || {
                let mut schedule = Schedule::new(31 * thread + 5);
                for _ in 0..5_000 {
                    let n = (schedule.next() % 9) as i64;
                    gauge.add(n);
                    schedule.maybe_yield();
                    gauge.sub(n);
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    assert_eq!(gauge.get(), 0);
}
