//! # bp-obs — observability for the browser-provenance stack
//!
//! A dependency-light metrics, tracing, and event-journal layer (only
//! `parking_lot` beyond std). The paper argues a provenance-aware browser
//! must hold a latency/durability envelope (capture keeps up with
//! browsing; queries answer interactively); this crate makes that envelope
//! *observable* at runtime rather than only in offline experiments:
//!
//! * [`MetricsRegistry`] — named [`Counter`]s (sharded atomics),
//!   [`Gauge`]s, and log₂-bucketed [`Histogram`]s with p50/p95/p99/max
//!   readout.
//! * [`trace`] — span-based tracing with thread-local span stacks,
//!   rendering per-stage timing trees for `--trace` query runs.
//! * [`profile`] — query EXPLAIN profiles: per-stage wall time, rows
//!   in/out, node/edge touches, and truncation points for `--explain`.
//! * [`Journal`] — a fixed-capacity ring buffer of notable events
//!   (recoveries, compactions, deadline misses, redactions).
//! * [`expo`] — Prometheus-style text and JSON exposition, plus a
//!   round-trippable snapshot format so one CLI invocation's metrics can
//!   be merged into a later one's report.
//! * [`log`] — structured leveled JSON-lines logging with env-style
//!   filtering; accepted events also land in the [`flight`] recorder.
//! * [`flight`] — a ring buffer of the last ~4k log/span events, dumped on
//!   panic, `SIGUSR1`, or `/debug/flightz`.
//! * [`sampler`] — tail-based trace retention: deadline-missed,
//!   truncated, and errored requests are always kept, a deterministic
//!   1-in-N of the rest, in a bounded searchable ring behind `/tracez`.
//! * [`slo`] — error-budget tracking with multi-window burn-rate rules
//!   over the paper's 200 ms query deadline.
//! * [`httpx`] — a dependency-free HTTP/1.1 server for the `serve`
//!   daemon's `/metrics`, `/healthz`, and debug endpoints.
//! * [`ClockHandle`] — a mockable monotonic clock behind every latency
//!   measurement.
//!
//! Instrumented components hold an [`Obs`] handle. Production code uses
//! [`Obs::global`]; tests that assert exact counts use [`Obs::isolated`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod expo;
pub mod flight;
pub mod httpx;
mod journal;
pub mod json;
pub mod log;
mod metrics;
pub mod profile;
pub mod sampler;
pub mod slo;
pub mod trace;

pub use clock::{unix_time_ms, Clock, ClockHandle, MockClock, RealClock, Stopwatch};
pub use journal::{Journal, JournalEvent, Level};
pub use log::{LogEvent, LogLevel};
pub use metrics::{
    bucket_bounds, bucket_index, BucketExemplar, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricsRegistry, RegistrySnapshot, HISTOGRAM_BUCKETS,
};

use std::sync::{Arc, OnceLock};

/// A handle bundling the metric registry and event journal a component
/// reports into.
#[derive(Clone, Debug)]
pub struct Obs {
    registry: Arc<MetricsRegistry>,
    journal: Arc<Journal>,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::global()
    }
}

impl Obs {
    /// The process-wide registry and journal (what the CLI reports).
    pub fn global() -> Obs {
        static GLOBAL: OnceLock<Obs> = OnceLock::new();
        GLOBAL.get_or_init(Obs::isolated).clone()
    }

    /// A private registry and journal, unshared with the rest of the
    /// process. Used by tests asserting exact metric values.
    pub fn isolated() -> Obs {
        Obs {
            registry: Arc::new(MetricsRegistry::new()),
            journal: Arc::new(Journal::default()),
        }
    }

    /// The metric registry behind this handle.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The event journal behind this handle.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Counter lookup shorthand.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.registry.counter(name)
    }

    /// Gauge lookup shorthand.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.registry.gauge(name)
    }

    /// Histogram lookup shorthand.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.registry.histogram(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_is_shared_isolated_is_not() {
        Obs::global().counter("lib.test.shared").inc();
        assert_eq!(Obs::global().counter("lib.test.shared").get(), 1);

        let a = Obs::isolated();
        let b = Obs::isolated();
        a.counter("x").inc();
        assert_eq!(b.counter("x").get(), 0);
    }

    #[test]
    fn journal_reachable_through_obs() {
        let obs = Obs::isolated();
        obs.journal().record(Level::Info, "hello");
        assert_eq!(obs.journal().events().len(), 1);
    }
}
