//! Time sources for instrumentation.
//!
//! All bp-obs timing flows through a [`ClockHandle`] so that code under
//! test can swap the process-wide monotonic clock for a [`MockClock`] and
//! drive time by hand (deadline tests, latency assertions). Production
//! code pays one virtual call per reading; readings are monotonic
//! microseconds since an arbitrary process-local anchor.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// A monotonic microsecond source.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Microseconds elapsed since this clock's anchor.
    fn now_micros(&self) -> u64;
}

/// The process monotonic clock ([`Instant`] behind a shared anchor).
#[derive(Debug, Default, Clone, Copy)]
pub struct RealClock;

fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

impl Clock for RealClock {
    fn now_micros(&self) -> u64 {
        anchor().elapsed().as_micros() as u64
    }
}

/// A hand-driven clock for tests: time only moves when told to, or — with
/// [`MockClock::set_auto_tick_micros`] — by a fixed step per reading, so
/// deadline loops expire deterministically without real sleeps.
#[derive(Debug, Default)]
pub struct MockClock {
    micros: AtomicU64,
    auto_tick_us: AtomicU64,
}

impl MockClock {
    /// A mock clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `d`.
    pub fn advance(&self, d: Duration) {
        self.micros
            .fetch_add(d.as_micros() as u64, Ordering::SeqCst);
    }

    /// Advances the clock by `us` microseconds.
    pub fn advance_micros(&self, us: u64) {
        self.micros.fetch_add(us, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute reading.
    pub fn set_micros(&self, us: u64) {
        self.micros.store(us, Ordering::SeqCst);
    }

    /// Makes every subsequent reading advance the clock by `us`
    /// microseconds (after returning the pre-tick value). Zero — the
    /// default — restores fully manual time.
    pub fn set_auto_tick_micros(&self, us: u64) {
        self.auto_tick_us.store(us, Ordering::SeqCst);
    }
}

impl Clock for MockClock {
    fn now_micros(&self) -> u64 {
        let tick = self.auto_tick_us.load(Ordering::SeqCst);
        if tick == 0 {
            self.micros.load(Ordering::SeqCst)
        } else {
            self.micros.fetch_add(tick, Ordering::SeqCst)
        }
    }
}

/// A cheaply clonable handle to some [`Clock`].
#[derive(Clone, Debug)]
pub struct ClockHandle(Arc<dyn Clock>);

impl Default for ClockHandle {
    fn default() -> Self {
        Self::real()
    }
}

impl ClockHandle {
    /// The process-wide real monotonic clock.
    pub fn real() -> Self {
        ClockHandle(Arc::new(RealClock))
    }

    /// A fresh mock clock plus a handle for advancing it.
    pub fn mock() -> (Self, Arc<MockClock>) {
        let mock = Arc::new(MockClock::new());
        (ClockHandle(mock.clone()), mock)
    }

    /// Wraps an arbitrary clock implementation.
    pub fn from_clock(clock: Arc<dyn Clock>) -> Self {
        ClockHandle(clock)
    }

    /// Current reading in microseconds since the clock's anchor.
    pub fn now_micros(&self) -> u64 {
        self.0.now_micros()
    }

    /// Starts a stopwatch at the current reading.
    pub fn start(&self) -> Stopwatch {
        Stopwatch {
            clock: self.clone(),
            start_micros: self.now_micros(),
        }
    }
}

static MOCK_UNIX_MS: AtomicU64 = AtomicU64::new(u64::MAX);

/// Wall-clock milliseconds since the Unix epoch.
///
/// This is the workspace's one sanctioned wall-clock read (everything else
/// is monotonic and flows through [`ClockHandle`]; bp-lint's L001 enforces
/// both). Journal entries need calendar time, which an anchored monotonic
/// clock cannot provide. Tests can pin the value with
/// [`set_mock_unix_time_ms`].
pub fn unix_time_ms() -> u64 {
    let mock = MOCK_UNIX_MS.load(Ordering::Relaxed);
    if mock != u64::MAX {
        return mock;
    }
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX - 1))
        .unwrap_or(0)
}

/// Pins (`Some`) or releases (`None`) the value [`unix_time_ms`] returns.
/// Test-only in spirit; `u64::MAX` is reserved as the "not mocked" state.
pub fn set_mock_unix_time_ms(ms: Option<u64>) {
    MOCK_UNIX_MS.store(ms.unwrap_or(u64::MAX), Ordering::Relaxed);
}

/// Measures elapsed time against the [`ClockHandle`] it was started from.
#[derive(Clone, Debug)]
pub struct Stopwatch {
    clock: ClockHandle,
    start_micros: u64,
}

impl Stopwatch {
    /// Microseconds since the stopwatch started.
    pub fn elapsed_micros(&self) -> u64 {
        self.clock.now_micros().saturating_sub(self.start_micros)
    }

    /// Elapsed time since the stopwatch started.
    pub fn elapsed(&self) -> Duration {
        Duration::from_micros(self.elapsed_micros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotone() {
        let clock = ClockHandle::real();
        let a = clock.now_micros();
        let b = clock.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn mock_clock_moves_only_when_told() {
        let (clock, mock) = ClockHandle::mock();
        let sw = clock.start();
        assert_eq!(sw.elapsed_micros(), 0);
        mock.advance(Duration::from_millis(3));
        assert_eq!(sw.elapsed(), Duration::from_millis(3));
        mock.advance_micros(7);
        assert_eq!(sw.elapsed_micros(), 3_007);
        mock.set_micros(1);
        // Going backwards saturates rather than underflowing.
        assert_eq!(sw.elapsed_micros(), 1);
    }

    #[test]
    fn auto_tick_advances_per_reading() {
        let (clock, mock) = ClockHandle::mock();
        mock.set_auto_tick_micros(250);
        assert_eq!(clock.now_micros(), 0);
        assert_eq!(clock.now_micros(), 250);
        assert_eq!(clock.now_micros(), 500);
        mock.set_auto_tick_micros(0);
        assert_eq!(clock.now_micros(), 750);
        assert_eq!(clock.now_micros(), 750, "manual mode holds still again");
    }

    #[test]
    fn unix_time_can_be_pinned() {
        set_mock_unix_time_ms(Some(1_234_567));
        assert_eq!(unix_time_ms(), 1_234_567);
        set_mock_unix_time_ms(None);
        assert!(unix_time_ms() > 1_600_000_000_000, "should be real time");
    }

    #[test]
    fn stopwatch_starts_at_current_reading() {
        let (clock, mock) = ClockHandle::mock();
        mock.set_micros(500);
        let sw = clock.start();
        mock.set_micros(650);
        assert_eq!(sw.elapsed_micros(), 150);
    }
}
