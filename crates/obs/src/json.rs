//! A minimal JSON reader (no external deps), used to verify that the
//! crate's hand-rolled JSON emitters ([`crate::expo::render_json`],
//! [`crate::profile::Profile::to_json`]) produce well-formed output, and
//! by `bp-bench`'s `--compare` mode to read committed `BENCH_*.json`
//! baselines.
//!
//! The parser accepts the full JSON grammar (objects, arrays, strings
//! with escapes, numbers, booleans, null); numbers are held as `f64`,
//! which is exact for every integer the workspace emits below 2^53.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; keys sorted (JSON objects are unordered).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object member lookup; `None` for non-objects or absent keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The number, when this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer, when it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, when this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, when this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array's elements, when this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's members, when this is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(map) => Some(map),
            _ => None,
        }
    }
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What was wrong.
    pub reason: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document. Trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first malformed byte.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            reason: reason.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            // Combine surrogate pairs; lone surrogates map
                            // to U+FFFD rather than failing the document.
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((unit - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(unit).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so bytes
                    // are valid UTF-8 already).
                    let rest = &self.bytes[self.pos..];
                    let len = match rest[0] {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let taken = &rest[..len.min(rest.len())];
                    out.push_str(std::str::from_utf8(taken).map_err(|_| self.err("bad UTF-8"))?);
                    self.pos += taken.len();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let unit = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-3.5e2").unwrap(), Value::Num(-350.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".to_owned()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(|c| c.as_str()), Some("x"));
        let arr = v.get("a").and_then(|a| a.as_array()).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b"), Some(&Value::Null));
    }

    #[test]
    fn unescapes_strings() {
        assert_eq!(
            parse(r#""a\"b\\c\ndA""#).unwrap(),
            Value::Str("a\"b\\c\ndA".to_owned())
        );
        // Surrogate pair → astral char.
        assert_eq!(
            parse(r#""😀""#).unwrap(),
            Value::Str("\u{1F600}".to_owned())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        let e = parse("nul").unwrap_err();
        assert!(e.to_string().contains("null"), "{e}");
    }

    #[test]
    fn as_u64_is_exact_only() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
    }
}
