//! Query EXPLAIN profiles: per-stage accounting for one query execution.
//!
//! Where [`crate::trace`] answers "what happened on this thread" with a
//! free-form span tree, this module answers the narrower EXPLAIN question:
//! *for one query, where did the time and the work go?* Each query path
//! declares a static [`QueryPlan`] naming its stages (candidate scan,
//! graph traversal, text-index lookup, rank/merge, …). When profiling is
//! enabled, [`begin`] opens a profile against the query's own
//! [`ClockHandle`] — so deadline tests drive profile timings with a mock
//! clock — and each [`stage`] guard records wall time, rows in/out,
//! node/edge touches, and the truncation point into a [`Profile`] tree
//! that renders as an aligned text table ([`Profile::render_table`]) or
//! JSON ([`Profile::to_json`]) for `browserprov query <sub> --explain`.
//!
//! Profiling is off by default and costs one relaxed atomic load per
//! [`begin`]/[`stage`] call when disabled. Collection is thread-local;
//! nested queries (personalize wraps contextual search) attach as child
//! profiles.

use crate::clock::ClockHandle;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns profile collection on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether profiles are currently being collected.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The static shape of one query path: its name and the ordered stages it
/// may execute. Declared once per query function; stages the execution
/// never entered still appear in the rendered plan (with zero work), so a
/// reader sees what *could* have run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryPlan {
    /// Query path name (e.g. `context`, `lineage`).
    pub query: &'static str,
    /// Ordered stage names.
    pub stages: &'static [&'static str],
}

/// Measured work of one executed stage.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageProfile {
    /// Stage name (one of the plan's stages).
    pub name: &'static str,
    /// Wall time in microseconds, measured on the query's clock.
    pub wall_us: u64,
    /// Items the stage consumed (seeds, candidates, …).
    pub rows_in: u64,
    /// Items the stage produced.
    pub rows_out: u64,
    /// Graph nodes the stage touched.
    pub nodes_touched: u64,
    /// Graph edges the stage touched.
    pub edges_touched: u64,
    /// `true` if the deadline (or another budget limit) cut this stage
    /// short.
    pub truncated: bool,
}

/// One finished query profile: per-stage accounting plus the deadline
/// story, with nested child profiles for queries that wrap other queries.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Query path name, from the plan.
    pub query: &'static str,
    /// The plan's declared stages (executed or not).
    pub planned: Vec<&'static str>,
    /// Total query wall time in microseconds.
    pub total_us: u64,
    /// Deadline budget in microseconds, when the query had one.
    pub budget_us: Option<u64>,
    /// `true` if any limit truncated the work.
    pub truncated: bool,
    /// The stage at which truncation struck, when it did.
    pub truncation_stage: Option<&'static str>,
    /// Caller's estimate of items left unprocessed at truncation.
    pub remaining_estimate: Option<u64>,
    /// Executed stages, in execution order.
    pub stages: Vec<StageProfile>,
    /// Profiles of nested queries begun while this one was open.
    pub children: Vec<Profile>,
}

impl Profile {
    /// Share of the deadline budget consumed, when a budget was set.
    pub fn budget_used_pct(&self) -> Option<f64> {
        self.budget_us.map(|b| {
            if b == 0 {
                100.0
            } else {
                self.total_us as f64 / b as f64 * 100.0
            }
        })
    }

    /// Sum of executed stage wall times in microseconds.
    pub fn stages_total_us(&self) -> u64 {
        self.stages.iter().map(|s| s.wall_us).sum()
    }

    /// Renders the profile as an aligned text table. Stage times plus the
    /// `(other)` remainder row sum exactly to the reported total.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let _ = write!(
            out,
            "{pad}query.{}  total {}",
            self.query,
            us(self.total_us)
        );
        match (self.budget_us, self.budget_used_pct()) {
            (Some(b), Some(pct)) => {
                let _ = write!(out, "  budget {} ({pct:.1}% used)", us(b));
            }
            _ => {
                let _ = write!(out, "  budget none");
            }
        }
        if self.truncated {
            let _ = write!(out, "  TRUNCATED");
            if let Some(stage) = self.truncation_stage {
                let _ = write!(out, " at {stage}");
            }
            if let Some(rem) = self.remaining_estimate {
                let _ = write!(out, " (~{rem} items remaining)");
            }
        }
        out.push('\n');
        let _ = writeln!(
            out,
            "{pad}{:<14} {:>10} {:>6} {:>9} {:>9} {:>9} {:>9}  flags",
            "stage", "time", "%", "rows in", "rows out", "nodes", "edges"
        );
        let mut accounted = 0u64;
        let render_stage = |out: &mut String, s: &StageProfile| {
            let share = if self.total_us == 0 {
                0.0
            } else {
                s.wall_us as f64 / self.total_us as f64 * 100.0
            };
            let _ = writeln!(
                out,
                "{pad}{:<14} {:>10} {:>5.1}% {:>9} {:>9} {:>9} {:>9}  {}",
                s.name,
                us(s.wall_us),
                share,
                s.rows_in,
                s.rows_out,
                s.nodes_touched,
                s.edges_touched,
                if s.truncated { "truncated" } else { "" }
            );
        };
        for s in &self.stages {
            accounted += s.wall_us;
            render_stage(out, s);
        }
        // Planned stages the execution never entered.
        for &name in &self.planned {
            if !self.stages.iter().any(|s| s.name == name) {
                let _ = writeln!(
                    out,
                    "{pad}{:<14} {:>10} {:>6} {:>9} {:>9} {:>9} {:>9}  skipped",
                    name, "-", "-", "-", "-", "-", "-"
                );
            }
        }
        let other = self.total_us.saturating_sub(accounted);
        let share = if self.total_us == 0 {
            0.0
        } else {
            other as f64 / self.total_us as f64 * 100.0
        };
        let _ = writeln!(
            out,
            "{pad}{:<14} {:>10} {:>5.1}% {:>9} {:>9} {:>9} {:>9}  ",
            "(other)",
            us(other),
            share,
            "-",
            "-",
            "-",
            "-"
        );
        for child in &self.children {
            self_render_child(child, out, indent + 1);
        }
    }

    /// Serializes the profile (and its children) as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.json_into(&mut out);
        out.push('\n');
        out
    }

    fn json_into(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"query\": \"{}\", \"total_us\": {}, \"budget_us\": ",
            self.query, self.total_us
        );
        match self.budget_us {
            Some(b) => {
                let _ = write!(out, "{b}");
            }
            None => out.push_str("null"),
        }
        let _ = write!(out, ", \"truncated\": {}", self.truncated);
        let _ = write!(out, ", \"truncation_stage\": ");
        match self.truncation_stage {
            Some(s) => {
                let _ = write!(out, "\"{s}\"");
            }
            None => out.push_str("null"),
        }
        let _ = write!(out, ", \"remaining_estimate\": ");
        match self.remaining_estimate {
            Some(r) => {
                let _ = write!(out, "{r}");
            }
            None => out.push_str("null"),
        }
        out.push_str(", \"stages\": [");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"name\": \"{}\", \"wall_us\": {}, \"rows_in\": {}, \"rows_out\": {}, \
                 \"nodes_touched\": {}, \"edges_touched\": {}, \"truncated\": {}}}",
                s.name,
                s.wall_us,
                s.rows_in,
                s.rows_out,
                s.nodes_touched,
                s.edges_touched,
                s.truncated
            );
        }
        out.push_str("], \"children\": [");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            c.json_into(out);
        }
        out.push_str("]}");
    }
}

fn self_render_child(child: &Profile, out: &mut String, indent: usize) {
    child.render_into(out, indent);
}

/// Formats a microsecond reading for the table (`832us`, `12.41ms`, `1.20s`).
fn us(v: u64) -> String {
    if v >= 1_000_000 {
        format!("{:.2}s", v as f64 / 1_000_000.0)
    } else if v >= 1_000 {
        format!("{:.2}ms", v as f64 / 1_000.0)
    } else {
        format!("{v}us")
    }
}

struct OpenProfile {
    plan: &'static QueryPlan,
    clock: ClockHandle,
    start_us: u64,
    budget_us: Option<u64>,
    truncated: bool,
    truncation_stage: Option<&'static str>,
    remaining_estimate: Option<u64>,
    stages: Vec<StageProfile>,
    children: Vec<Profile>,
}

thread_local! {
    static STACK: RefCell<Vec<OpenProfile>> = const { RefCell::new(Vec::new()) };
    static FINISHED: RefCell<Vec<Profile>> = const { RefCell::new(Vec::new()) };
}

/// Opens a profile for one execution of `plan`, timed on `clock` (the
/// query's own time source, so mock-clock tests drive profile timings) and
/// accounted against `budget`. A no-op when profiling is disabled.
#[must_use = "the profile closes when this guard drops"]
pub fn begin(
    plan: &'static QueryPlan,
    clock: &ClockHandle,
    budget: Option<Duration>,
) -> QueryGuard {
    if !enabled() {
        return QueryGuard { open: false };
    }
    STACK.with(|stack| {
        stack.borrow_mut().push(OpenProfile {
            plan,
            clock: clock.clone(),
            start_us: clock.now_micros(),
            budget_us: budget.map(|d| d.as_micros() as u64),
            truncated: false,
            truncation_stage: None,
            remaining_estimate: None,
            stages: Vec::new(),
            children: Vec::new(),
        })
    });
    QueryGuard { open: true }
}

/// Drains the finished root profiles collected on this thread.
pub fn take() -> Vec<Profile> {
    FINISHED.with(|f| std::mem::take(&mut *f.borrow_mut()))
}

/// Closes its profile on drop, attaching it to the enclosing profile or
/// the thread's finished list.
#[derive(Debug)]
pub struct QueryGuard {
    open: bool,
}

impl QueryGuard {
    /// Closes the profile, pinning `total` as the reported total (the
    /// query's own measured latency, so table and result agree exactly).
    pub fn finish_with(mut self, total: Duration) {
        self.close(Some(total.as_micros() as u64));
    }

    fn close(&mut self, total_override: Option<u64>) {
        if !self.open {
            return;
        }
        self.open = false;
        let profile = STACK.with(|stack| {
            let open = stack.borrow_mut().pop()?;
            let total_us = total_override
                .unwrap_or_else(|| open.clock.now_micros().saturating_sub(open.start_us));
            Some(Profile {
                query: open.plan.query,
                planned: open.plan.stages.to_vec(),
                total_us,
                budget_us: open.budget_us,
                truncated: open.truncated,
                truncation_stage: open.truncation_stage,
                remaining_estimate: open.remaining_estimate,
                stages: open.stages,
                children: open.children,
            })
        });
        let Some(profile) = profile else { return };
        STACK.with(|stack| {
            if let Some(parent) = stack.borrow_mut().last_mut() {
                parent.children.push(profile);
            } else {
                FINISHED.with(|f| f.borrow_mut().push(profile));
            }
        });
    }
}

impl Drop for QueryGuard {
    fn drop(&mut self) {
        self.close(None);
    }
}

/// Opens a stage of the innermost open profile. Inert when profiling is
/// disabled or no profile is open.
#[must_use = "the stage closes when this guard drops"]
pub fn stage(name: &'static str) -> StageGuard {
    if !enabled() {
        return StageGuard::inert();
    }
    let start = STACK.with(|stack| stack.borrow().last().map(|open| open.clock.now_micros()));
    match start {
        Some(start_us) => StageGuard {
            live: true,
            start_us,
            record: RefCell::new(StageProfile {
                name,
                ..StageProfile::default()
            }),
            remaining: RefCell::new(None),
        },
        None => StageGuard::inert(),
    }
}

/// Accumulates one stage's accounting; pushed into the open profile when
/// dropped.
#[derive(Debug)]
pub struct StageGuard {
    live: bool,
    start_us: u64,
    record: RefCell<StageProfile>,
    remaining: RefCell<Option<u64>>,
}

impl StageGuard {
    fn inert() -> Self {
        StageGuard {
            live: false,
            start_us: 0,
            record: RefCell::new(StageProfile::default()),
            remaining: RefCell::new(None),
        }
    }

    /// Records items consumed and produced.
    pub fn rows(&self, rows_in: usize, rows_out: usize) {
        if self.live {
            let mut r = self.record.borrow_mut();
            r.rows_in = rows_in as u64;
            r.rows_out = rows_out as u64;
        }
    }

    /// Records graph nodes and edges touched.
    pub fn touched(&self, nodes: usize, edges: usize) {
        if self.live {
            let mut r = self.record.borrow_mut();
            r.nodes_touched = nodes as u64;
            r.edges_touched = edges as u64;
        }
    }

    /// Marks this stage as the truncation point, with the caller's
    /// estimate of items left unprocessed. The profile keeps the *first*
    /// truncation it sees.
    pub fn truncated(&self, remaining_estimate: u64) {
        if self.live {
            self.record.borrow_mut().truncated = true;
            *self.remaining.borrow_mut() = Some(remaining_estimate);
        }
    }
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let mut record = self.record.borrow_mut().clone();
        let remaining = *self.remaining.borrow();
        STACK.with(|stack| {
            if let Some(open) = stack.borrow_mut().last_mut() {
                record.wall_us = open.clock.now_micros().saturating_sub(self.start_us);
                if record.truncated {
                    open.truncated = true;
                    if open.truncation_stage.is_none() {
                        open.truncation_stage = Some(record.name);
                        open.remaining_estimate = remaining;
                    }
                }
                open.stages.push(record);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockHandle;

    /// Serializes tests that flip the process-wide enable flag.
    fn with_profiling<R>(f: impl FnOnce() -> R) -> R {
        use std::sync::Mutex;
        static GATE: Mutex<()> = Mutex::new(());
        let _lock = GATE.lock().unwrap_or_else(|e| e.into_inner());
        let _ = take();
        set_enabled(true);
        let out = f();
        set_enabled(false);
        out
    }

    static PLAN: QueryPlan = QueryPlan {
        query: "testpath",
        stages: &["scan", "traverse", "rank"],
    };

    #[test]
    fn disabled_profiles_collect_nothing() {
        set_enabled(false);
        {
            let _q = begin(&PLAN, &ClockHandle::real(), None);
            let _s = stage("scan");
        }
        assert!(take().is_empty());
    }

    #[test]
    fn stage_times_come_from_the_query_clock() {
        let profiles = with_profiling(|| {
            let (clock, mock) = ClockHandle::mock();
            let q = begin(&PLAN, &clock, Some(Duration::from_millis(200)));
            {
                let s = stage("scan");
                s.rows(10, 4);
                mock.advance_micros(300);
                drop(s);
            }
            {
                let s = stage("traverse");
                s.touched(40, 55);
                mock.advance_micros(700);
                drop(s);
            }
            drop(q);
            take()
        });
        assert_eq!(profiles.len(), 1);
        let p = &profiles[0];
        assert_eq!(p.query, "testpath");
        assert_eq!(p.total_us, 1000);
        assert_eq!(p.budget_us, Some(200_000));
        assert_eq!(p.stages.len(), 2);
        assert_eq!(p.stages[0].name, "scan");
        assert_eq!(p.stages[0].wall_us, 300);
        assert_eq!(p.stages[0].rows_in, 10);
        assert_eq!(p.stages[0].rows_out, 4);
        assert_eq!(p.stages[1].wall_us, 700);
        assert_eq!(p.stages[1].nodes_touched, 40);
        assert_eq!(p.stages[1].edges_touched, 55);
        // Stage walls account for the whole total on a mock clock.
        assert_eq!(p.stages_total_us(), p.total_us);
        assert!(!p.truncated);
    }

    #[test]
    fn truncation_point_and_estimate_are_kept() {
        let profiles = with_profiling(|| {
            let (clock, mock) = ClockHandle::mock();
            let q = begin(&PLAN, &clock, Some(Duration::from_micros(100)));
            {
                let s = stage("traverse");
                mock.advance_micros(150);
                s.truncated(42);
            }
            q.finish_with(Duration::from_micros(150));
            take()
        });
        let p = &profiles[0];
        assert!(p.truncated);
        assert_eq!(p.truncation_stage, Some("traverse"));
        assert_eq!(p.remaining_estimate, Some(42));
        assert_eq!(p.total_us, 150);
        assert!(p.budget_used_pct().is_some_and(|pct| pct > 100.0));
    }

    #[test]
    fn nested_profiles_attach_as_children() {
        static INNER: QueryPlan = QueryPlan {
            query: "inner",
            stages: &["work"],
        };
        let profiles = with_profiling(|| {
            let clock = ClockHandle::real();
            let q = begin(&PLAN, &clock, None);
            {
                let inner = begin(&INNER, &clock, None);
                {
                    let _s = stage("work");
                }
                drop(inner);
            }
            drop(q);
            take()
        });
        assert_eq!(profiles.len(), 1);
        assert_eq!(profiles[0].children.len(), 1);
        assert_eq!(profiles[0].children[0].query, "inner");
        // The inner stage belongs to the inner profile, not the outer.
        assert!(profiles[0].stages.is_empty());
        assert_eq!(profiles[0].children[0].stages.len(), 1);
    }

    #[test]
    fn table_renders_all_stages_and_other_row() {
        let profiles = with_profiling(|| {
            let (clock, mock) = ClockHandle::mock();
            let q = begin(&PLAN, &clock, Some(Duration::from_millis(200)));
            {
                let s = stage("scan");
                mock.advance_micros(400);
                drop(s);
            }
            mock.advance_micros(100); // unaccounted plumbing
            drop(q);
            take()
        });
        let table = profiles[0].render_table();
        assert!(table.contains("query.testpath"), "{table}");
        assert!(table.contains("scan"), "{table}");
        assert!(table.contains("(other)"), "{table}");
        // Planned-but-skipped stages still show.
        assert!(table.contains("traverse"), "{table}");
        assert!(table.contains("skipped"), "{table}");
        assert!(table.contains("budget 200.00ms"), "{table}");
    }

    #[test]
    fn json_serialization_parses_back() {
        let profiles = with_profiling(|| {
            let (clock, mock) = ClockHandle::mock();
            let q = begin(&PLAN, &clock, Some(Duration::from_micros(50)));
            {
                let s = stage("rank");
                s.rows(7, 3);
                mock.advance_micros(80);
                s.truncated(9);
            }
            drop(q);
            take()
        });
        let text = profiles[0].to_json();
        let v = crate::json::parse(&text).expect("profile JSON parses");
        assert_eq!(v.get("query").and_then(|q| q.as_str()), Some("testpath"));
        assert_eq!(v.get("budget_us").and_then(|b| b.as_u64()), Some(50));
        assert_eq!(v.get("truncated").and_then(|t| t.as_bool()), Some(true));
        assert_eq!(
            v.get("truncation_stage").and_then(|s| s.as_str()),
            Some("rank")
        );
        assert_eq!(
            v.get("remaining_estimate").and_then(|r| r.as_u64()),
            Some(9)
        );
        let stages = v.get("stages").and_then(|s| s.as_array()).unwrap();
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].get("rows_in").and_then(|r| r.as_u64()), Some(7));
    }

    #[test]
    fn stage_outside_profile_is_inert() {
        with_profiling(|| {
            let s = stage("orphan");
            s.rows(1, 1);
            drop(s);
            assert!(take().is_empty());
        });
    }
}
