//! A dependency-free HTTP/1.1 server for observability endpoints.
//!
//! Just enough of RFC 9112 for a metrics/health surface: `GET` requests
//! parsed off a std [`TcpListener`], one response per connection
//! (`Connection: close`), thread-per-connection handling with short read
//! timeouts so a stalled scraper cannot wedge the daemon. No TLS, no
//! keep-alive, no bodies on requests — scrape endpoints need none of them,
//! and the workspace takes no external dependencies.
//!
//! The accept loop polls a shutdown flag every [`ACCEPT_POLL`] so the
//! owning daemon can stop the server promptly on SIGTERM.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often the accept loop checks the shutdown flag.
pub const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Per-connection socket read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Maximum accepted request head (request line + headers) in bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method (`GET`, …).
    pub method: String,
    /// Decoded path without the query string (`/metrics`).
    pub path: String,
    /// Raw query string after `?` (empty when absent).
    pub query: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// First value of a (lowercase) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One response to write back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `text/plain; version=0.0.4` response (the Prometheus text type).
    pub fn metrics_text(body: String) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: body.into_bytes(),
        }
    }

    /// A plain-text response with an arbitrary status.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
        }
    }

    /// The standard 404.
    pub fn not_found() -> Response {
        Response::text(404, "not found\n")
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Response",
        }
    }
}

/// Parses one request head from `reader`.
///
/// # Errors
///
/// Returns a human-readable description of the malformation.
fn parse_request(reader: &mut impl BufRead) -> Result<Request, String> {
    let mut line = String::new();
    let mut read_line = |line: &mut String, budget: &mut usize| -> Result<(), String> {
        line.clear();
        let n = reader
            .read_line(line)
            .map_err(|e| format!("read error: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-request".to_owned());
        }
        *budget = budget
            .checked_sub(n)
            .ok_or_else(|| "request head too large".to_owned())?;
        Ok(())
    };
    let mut budget = MAX_HEAD_BYTES;
    read_line(&mut line, &mut budget)?;
    let mut parts = line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| "empty request line".to_owned())?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| "request line missing target".to_owned())?;
    let version = parts
        .next()
        .ok_or_else(|| "request line missing version".to_owned())?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol {version:?}"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };
    let mut headers = Vec::new();
    loop {
        read_line(&mut line, &mut budget)?;
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    Ok(Request {
        method,
        path,
        query,
        headers,
    })
}

fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        response.reason(),
        response.content_type,
        response.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

fn handle_connection(mut stream: TcpStream, handler: &dyn Fn(&Request) -> Response) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    })
    .take(MAX_HEAD_BYTES as u64 * 2);
    let response = match parse_request(&mut reader) {
        Ok(request) if request.method == "GET" || request.method == "HEAD" => handler(&request),
        Ok(request) => Response::text(405, format!("method {} not allowed\n", request.method)),
        Err(reason) => Response::text(400, format!("bad request: {reason}\n")),
    };
    let _ = write_response(&mut stream, &response);
}

/// A handle for stopping a running [`Server`] from another thread.
#[derive(Clone, Debug)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Asks the accept loop to exit (takes effect within [`ACCEPT_POLL`]).
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// A minimal HTTP/1.1 server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            local_addr,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (reports the ephemeral port after `bind(":0")`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that stops [`Server::serve`] from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shutdown))
    }

    /// Accepts connections until shutdown, answering each request with
    /// `handler` on its own thread. Blocks the calling thread.
    pub fn serve<F>(self, handler: F)
    where
        F: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        let handler = Arc::new(handler);
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let handler = Arc::clone(&handler);
                    workers.push(std::thread::spawn(move || {
                        handle_connection(stream, handler.as_ref());
                    }));
                    workers.retain(|w| !w.is_finished());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
        // Drain in-flight connections before returning so the caller can
        // safely tear down state the handler borrows.
        for worker in workers {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Raw-socket GET against a local server; returns (status, body).
    fn get(addr: SocketAddr, target: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        let request = format!("GET {target} HTTP/1.1\r\nHost: test\r\n\r\n");
        stream.write_all(request.as_bytes()).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status: u16 = raw
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = raw.split_once("\r\n\r\n").map(|x| x.1).unwrap_or("");
        (status, body.to_owned())
    }

    fn spawn_echo_server() -> (SocketAddr, ShutdownHandle) {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let shutdown = server.shutdown_handle();
        std::thread::spawn(move || {
            server.serve(|req| match req.path.as_str() {
                "/echo" => {
                    Response::text(200, format!("{} {} {}", req.method, req.path, req.query))
                }
                "/ua" => Response::text(200, req.header("user-agent").unwrap_or("-").to_owned()),
                _ => Response::not_found(),
            });
        });
        (addr, shutdown)
    }

    #[test]
    fn serves_parses_and_routes() {
        let (addr, shutdown) = spawn_echo_server();
        let (status, body) = get(addr, "/echo?q=1");
        assert_eq!(status, 200);
        assert_eq!(body, "GET /echo q=1");
        let (status, _) = get(addr, "/missing");
        assert_eq!(status, 404);
        shutdown.shutdown();
    }

    #[test]
    fn headers_are_lowercased_and_reachable() {
        let (addr, shutdown) = spawn_echo_server();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /ua HTTP/1.1\r\nUser-Agent: bp-test\r\n\r\n")
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.ends_with("bp-test"), "{raw}");
        shutdown.shutdown();
    }

    #[test]
    fn rejects_non_get_and_garbage() {
        let (addr, shutdown) = spawn_echo_server();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"POST /echo HTTP/1.1\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");
        shutdown.shutdown();
    }

    #[test]
    fn shutdown_stops_the_accept_loop() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let shutdown = server.shutdown_handle();
        let joiner = std::thread::spawn(move || server.serve(|_| Response::not_found()));
        shutdown.shutdown();
        assert!(shutdown.is_shutdown());
        joiner.join().unwrap();
    }

    #[test]
    fn content_length_matches_body() {
        let (addr, shutdown) = spawn_echo_server();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /echo HTTP/1.1\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").unwrap();
        let declared: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(declared, body.len());
        shutdown.shutdown();
    }
}
