//! The metrics registry: named counters, gauges, and log₂ histograms.
//!
//! Handles returned by the registry are `Arc`s; hot paths resolve a metric
//! once at construction time and then touch only atomics. Counters are
//! sharded across cache-line-padded cells so concurrent writers on
//! different cores do not contend; reads sum the shards (eventually exact:
//! a quiescent counter reads the precise total).

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of independent cells a counter stripes its increments across.
const COUNTER_SHARDS: usize = 16;

/// Number of histogram buckets: one zero bucket plus one per power of two
/// up to `2^63..=u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

thread_local! {
    /// Each thread gets a sticky shard index, assigned round-robin.
    static SHARD: usize = {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        NEXT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS
    };
}

/// A monotonically increasing event count.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; COUNTER_SHARDS],
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        let idx = SHARD.with(|s| *s);
        self.shards[idx].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sum of all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// An instantaneous signed level (queue depth, resident rows, bytes held).
#[derive(Default, Debug)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Moves the level up by `n`.
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Moves the level down by `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Maps a sample to its log₂ bucket: 0 → bucket 0, otherwise
/// `floor(log2(v)) + 1`, so bucket `i ≥ 1` covers `[2^(i-1), 2^i - 1]`.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive `[lo, hi]` range of samples landing in bucket `idx`.
///
/// # Panics
///
/// Panics if `idx >= HISTOGRAM_BUCKETS`.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    assert!(idx < HISTOGRAM_BUCKETS, "bucket {idx} out of range");
    if idx == 0 {
        (0, 0)
    } else if idx == HISTOGRAM_BUCKETS - 1 {
        (1u64 << 63, u64::MAX)
    } else {
        (1u64 << (idx - 1), (1u64 << idx) - 1)
    }
}

/// A lock-free log₂-bucketed histogram of `u64` samples (typically
/// microseconds). Records are constant-time; quantiles come from a
/// [`HistogramSnapshot`].
///
/// When a [`crate::trace::Context`] is active on the recording thread,
/// each bucket also remembers the last trace ID + value that landed in
/// it — the *exemplar* that lets a dashboard jump from a latency bucket
/// to one concrete retained trace. The (id, value) pair is written with
/// two relaxed stores: a racing pair may interleave the ID of one sample
/// with the value of another, but both landed in the same bucket, so
/// either combination is a valid exemplar of that bucket.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    exemplar_ids: [AtomicU64; HISTOGRAM_BUCKETS],
    exemplar_values: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); HISTOGRAM_BUCKETS].map(|_| AtomicU64::new(0)),
            exemplar_ids: [(); HISTOGRAM_BUCKETS].map(|_| AtomicU64::new(0)),
            exemplar_values: [(); HISTOGRAM_BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample. When a trace context is active on this thread,
    /// the sample's bucket adopts it as the bucket's exemplar (trace IDs
    /// are never zero, so a zero slot means "no exemplar yet").
    pub fn record(&self, value: u64) {
        let idx = bucket_index(value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        if let Some(id) = crate::trace::current_id() {
            self.exemplar_ids[idx].store(id, Ordering::Relaxed);
            self.exemplar_values[idx].store(value, Ordering::Relaxed);
        }
    }

    /// Records a [`std::time::Duration`] in microseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros() as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy for quantile readout and exposition.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            exemplars: (0..HISTOGRAM_BUCKETS)
                .filter_map(|i| {
                    let trace_id = self.exemplar_ids[i].load(Ordering::Relaxed);
                    (trace_id != 0).then(|| BucketExemplar {
                        bucket: i,
                        trace_id,
                        value: self.exemplar_values[i].load(Ordering::Relaxed),
                    })
                })
                .collect(),
        }
    }

    /// Folds another histogram's snapshot into this one (used when merging
    /// metrics persisted by an earlier process). Exemplars are *not*
    /// merged: a trace ID from an earlier process points at a trace ring
    /// that no longer exists, so carrying it over would mint dead links.
    pub fn merge(&self, other: &HistogramSnapshot) {
        for (i, n) in other.buckets.iter().enumerate() {
            if *n > 0 {
                self.buckets[i].fetch_add(*n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count, Ordering::Relaxed);
        self.sum.fetch_add(other.sum, Ordering::Relaxed);
        self.max.fetch_max(other.max, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("p50", &s.p50())
            .field("max", &s.max)
            .finish()
    }
}

/// One bucket's exemplar: the last traced sample that landed in it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BucketExemplar {
    /// Bucket index (see [`bucket_bounds`]).
    pub bucket: usize,
    /// Trace ID of the sample (never zero).
    pub trace_id: u64,
    /// The sample value itself.
    pub value: u64,
}

/// An immutable copy of a [`Histogram`]'s state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_bounds`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
    /// Per-bucket exemplars (only buckets that have one), ascending by
    /// bucket index. Ephemeral: not persisted by the snapshot format and
    /// not carried by [`Histogram::merge`].
    pub exemplars: Vec<BucketExemplar>,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
            exemplars: Vec::new(),
        }
    }

    /// Upper-bound estimate of the `q`-quantile (0 < q ≤ 1): the upper
    /// edge of the bucket containing that rank, clamped to the observed
    /// maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Interpolated estimate of the `q`-quantile (0 < q ≤ 1): the rank is
    /// located in its log₂ bucket and positioned linearly within the
    /// bucket's `[lo, hi]` range (samples assumed uniform inside a
    /// bucket), clamped to the observed maximum. Tighter than
    /// [`HistogramSnapshot::quantile`]'s upper bound — exact for data
    /// uniform within buckets, and never off by more than one bucket
    /// width. Returns 0 when empty.
    pub fn quantile_interpolated(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count as f64).ceil().clamp(1.0, self.count as f64);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            if *n == 0 {
                continue;
            }
            let below = seen as f64;
            seen += n;
            if (seen as f64) >= rank {
                let (lo, hi) = bucket_bounds(i);
                // The observed max tightens the top bucket's upper edge
                // (for lower buckets hi < max already).
                let hi = hi.min(self.max);
                // Fraction of this bucket's samples at or below the rank.
                let frac = ((rank - below) / *n as f64).clamp(0.0, 1.0);
                let width = hi.saturating_sub(lo) as f64;
                let value = lo as f64 + frac * width;
                return (value.round() as u64).min(self.max);
            }
        }
        self.max
    }

    /// Interpolated median.
    pub fn p50(&self) -> u64 {
        self.quantile_interpolated(0.50)
    }

    /// Interpolated 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile_interpolated(0.95)
    }

    /// Interpolated 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile_interpolated(0.99)
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A point-in-time copy of every metric in a registry, sorted by name.
#[derive(Clone, Debug, Default)]
pub struct RegistrySnapshot {
    /// Counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Named metric store. Lookup takes a read lock; first use of a name takes
/// a write lock once. Callers on hot paths should resolve handles up front.
#[derive(Default, Debug)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

fn get_or_insert<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(found) = map.read().get(name) {
        return found.clone();
    }
    map.write()
        .entry(name.to_owned())
        .or_insert_with(|| Arc::new(T::default()))
        .clone()
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// Copies every metric's current value.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_shards() {
        let c = Counter::default();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::default();
        g.add(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
        g.set(-2);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn bucket_index_known_values() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_tile_the_domain() {
        assert_eq!(bucket_bounds(0), (0, 0));
        let mut expected_lo = 1u64;
        for i in 1..HISTOGRAM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lo, "bucket {i} lower bound");
            assert!(hi >= lo);
            expected_lo = hi.wrapping_add(1);
        }
        assert_eq!(bucket_bounds(HISTOGRAM_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn histogram_quantiles_bound_the_data() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 10, 100, 1000, 5000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.max, 5000);
        assert!(s.p50() >= 3, "p50 {} under-estimates", s.p50());
        assert_eq!(s.p99(), 5000, "top quantile clamps to observed max");
        assert!(s.mean() > 0.0);
    }

    /// Exact quantile of a sample set, for ground truth: the smallest
    /// value with at least ⌈q·n⌉ samples at or below it.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn interpolated_quantiles_match_uniform_distribution() {
        // 1..=1000 uniformly: within a log2 bucket the data really is
        // uniform, so interpolation should land within a hair of exact.
        let h = Histogram::default();
        let samples: Vec<u64> = (1..=1000).collect();
        for &v in &samples {
            h.record(v);
        }
        let s = h.snapshot();
        for q in [0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99] {
            let exact = exact_quantile(&samples, q);
            let est = s.quantile_interpolated(q);
            let err = est.abs_diff(exact);
            assert!(
                err <= 2,
                "q={q}: interpolated {est} vs exact {exact} (err {err})"
            );
            // The interpolated estimate never exceeds the upper bound.
            assert!(
                est <= s.quantile(q),
                "q={q}: {est} > bound {}",
                s.quantile(q)
            );
        }
    }

    #[test]
    fn interpolated_quantiles_on_skewed_distribution_stay_in_bucket() {
        // Heavily skewed: 90 fast samples at ~100, 10 slow at ~100_000.
        let h = Histogram::default();
        let mut samples = Vec::new();
        for i in 0..90u64 {
            samples.push(100 + i);
        }
        for i in 0..10u64 {
            samples.push(100_000 + 1000 * i);
        }
        for &v in &samples {
            h.record(v);
        }
        samples.sort();
        let s = h.snapshot();
        for q in [0.50, 0.95, 0.99] {
            let exact = exact_quantile(&samples, q);
            let est = s.quantile_interpolated(q);
            let (lo, hi) = bucket_bounds(bucket_index(exact));
            assert!(
                (lo..=hi).contains(&est) || est == s.max.min(hi),
                "q={q}: estimate {est} outside exact value's bucket [{lo}, {hi}]"
            );
        }
        // p50 sits in the fast mode, p99 in the slow tail.
        assert!(s.p50() < 1000, "p50 {}", s.p50());
        assert!(s.p99() >= 100_000, "p99 {}", s.p99());
    }

    #[test]
    fn interpolated_quantile_edge_cases() {
        let empty = HistogramSnapshot::empty();
        assert_eq!(empty.quantile_interpolated(0.5), 0);

        // All-zero samples: bucket 0 has zero width.
        let h = Histogram::default();
        h.record(0);
        h.record(0);
        assert_eq!(h.snapshot().quantile_interpolated(0.99), 0);

        // One sample: every quantile is that sample.
        let h = Histogram::default();
        h.record(777);
        let s = h.snapshot();
        assert_eq!(s.quantile_interpolated(0.01), s.quantile_interpolated(0.99));
        assert!(s.quantile_interpolated(0.5) <= 777);
        // Clamped to the observed max at the top.
        assert_eq!(s.quantile_interpolated(1.0), 777.min(s.max));
    }

    #[test]
    fn histogram_merge_accumulates() {
        let a = Histogram::default();
        a.record(5);
        let b = Histogram::default();
        b.record(1000);
        b.record(7);
        a.merge(&b.snapshot());
        let s = a.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 1012);
        assert_eq!(s.max, 1000);
    }

    #[test]
    fn registry_returns_same_instance_per_name() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.inc();
        assert_eq!(r.counter("x").get(), 2);
        r.gauge("g").set(3);
        r.histogram("h").record(9);
        let snap = r.snapshot();
        assert_eq!(snap.counters["x"], 2);
        assert_eq!(snap.gauges["g"], 3);
        assert_eq!(snap.histograms["h"].count, 1);
    }
}
