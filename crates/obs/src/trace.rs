//! Span-based tracing with thread-local span stacks.
//!
//! Tracing is off by default and costs one relaxed atomic load per
//! [`span`] call when disabled. When enabled, each guard pushes onto the
//! current thread's open-span stack; closing a guard pops it and attaches
//! the finished [`SpanNode`] to its parent, or to the thread's finished
//! roots when it was outermost. [`take_roots`] drains those roots for
//! rendering as an indented tree with per-stage timings.

use crate::clock::{ClockHandle, Stopwatch};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns span collection on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether spans are currently being collected.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One finished span: a named duration with nested child spans.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanNode {
    /// Stage name (e.g. `query.context/traverse`).
    pub name: &'static str,
    /// Wall time between open and close.
    pub duration: Duration,
    /// Free-form annotation attached via [`note`] while the span was open
    /// (e.g. `truncated: deadline hit, ~12 items remaining`).
    pub note: Option<String>,
    /// Spans opened (and closed) while this one was open.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Renders the span tree as indented lines with per-stage timings and
    /// each child's share of its parent.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}  {:.3?}", self.name, self.duration);
        if let Some(note) = &self.note {
            let _ = write!(out, "  [{note}]");
        }
        out.push('\n');
        render_children(&self.children, self.duration, "", &mut out);
        out
    }
}

fn render_children(children: &[SpanNode], parent: Duration, prefix: &str, out: &mut String) {
    for (i, child) in children.iter().enumerate() {
        let last = i + 1 == children.len();
        let (branch, cont) = if last {
            ("└─ ", "   ")
        } else {
            ("├─ ", "│  ")
        };
        let share = if parent.as_nanos() == 0 {
            0.0
        } else {
            child.duration.as_nanos() as f64 / parent.as_nanos() as f64 * 100.0
        };
        let _ = write!(
            out,
            "{prefix}{branch}{}  {:.3?} ({share:.1}%)",
            child.name, child.duration
        );
        if let Some(note) = &child.note {
            let _ = write!(out, "  [{note}]");
        }
        out.push('\n');
        render_children(
            &child.children,
            child.duration,
            &format!("{prefix}{cont}"),
            out,
        );
    }
}

struct OpenSpan {
    name: &'static str,
    start: Stopwatch,
    note: Option<String>,
    children: Vec<SpanNode>,
}

thread_local! {
    static STACK: RefCell<Vec<OpenSpan>> = const { RefCell::new(Vec::new()) };
    static ROOTS: RefCell<Vec<SpanNode>> = const { RefCell::new(Vec::new()) };
}

/// Opens a span named `name`. The span closes when the guard drops (or via
/// [`SpanGuard::finish_with`]). A no-op when tracing is disabled.
#[must_use = "the span closes when this guard drops"]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { open: false };
    }
    STACK.with(|stack| {
        stack.borrow_mut().push(OpenSpan {
            name,
            start: ClockHandle::real().start(),
            note: None,
            children: Vec::new(),
        })
    });
    SpanGuard { open: true }
}

/// Annotates the innermost open span on this thread (no-op when tracing is
/// disabled or no span is open). Repeated notes on the same span join with
/// `"; "`. Query paths use this to mark deadline truncation — the stage
/// span carries the truncation point and remaining-work estimate.
pub fn note(text: impl Into<String>) {
    if !enabled() {
        return;
    }
    STACK.with(|stack| {
        if let Some(open) = stack.borrow_mut().last_mut() {
            let text = text.into();
            match &mut open.note {
                Some(existing) => {
                    existing.push_str("; ");
                    existing.push_str(&text);
                }
                None => open.note = Some(text),
            }
        }
    });
}

/// Drains the finished root spans collected on this thread.
pub fn take_roots() -> Vec<SpanNode> {
    ROOTS.with(|roots| std::mem::take(&mut *roots.borrow_mut()))
}

/// Closes its span on drop, attaching it to the parent span or the
/// thread's finished roots.
#[derive(Debug)]
pub struct SpanGuard {
    open: bool,
}

impl SpanGuard {
    /// Closes the span, recording `duration` instead of the guard's own
    /// wall-clock measurement. Used when a caller has already measured the
    /// stage (e.g. a query's reported latency) and the span tree must agree
    /// with that number exactly.
    pub fn finish_with(mut self, duration: Duration) {
        self.close(Some(duration));
    }

    fn close(&mut self, duration_override: Option<Duration>) {
        if !self.open {
            return;
        }
        self.open = false;
        let node = STACK.with(|stack| {
            let open = stack.borrow_mut().pop()?;
            Some(SpanNode {
                name: open.name,
                duration: duration_override.unwrap_or_else(|| open.start.elapsed()),
                note: open.note,
                children: open.children,
            })
        });
        let Some(node) = node else { return };
        STACK.with(|stack| {
            if let Some(parent) = stack.borrow_mut().last_mut() {
                parent.children.push(node);
            } else {
                ROOTS.with(|roots| roots.borrow_mut().push(node));
            }
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the process-wide enable flag.
    fn with_tracing<R>(f: impl FnOnce() -> R) -> R {
        use std::sync::Mutex;
        static GATE: Mutex<()> = Mutex::new(());
        let _lock = GATE.lock().unwrap_or_else(|e| e.into_inner());
        let _ = take_roots();
        set_enabled(true);
        let out = f();
        set_enabled(false);
        out
    }

    #[test]
    fn disabled_spans_collect_nothing() {
        set_enabled(false);
        {
            let _a = span("a");
            let _b = span("b");
        }
        assert!(take_roots().is_empty());
    }

    #[test]
    fn nesting_builds_a_tree() {
        let roots = with_tracing(|| {
            {
                let _root = span("root");
                {
                    let _child = span("child");
                    let _grand = span("grand");
                }
                let _sibling = span("sibling");
            }
            take_roots()
        });
        assert_eq!(roots.len(), 1);
        let root = &roots[0];
        assert_eq!(root.name, "root");
        // Drop order closes "grand" before "child"; both nest under root.
        let names: Vec<_> = root.children.iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["child", "sibling"]);
        assert_eq!(root.children[0].children[0].name, "grand");
    }

    #[test]
    fn finish_with_pins_the_root_duration() {
        let roots = with_tracing(|| {
            let root = span("q");
            root.finish_with(Duration::from_micros(1234));
            take_roots()
        });
        assert_eq!(roots[0].duration, Duration::from_micros(1234));
    }

    #[test]
    fn render_shows_every_stage() {
        let roots = with_tracing(|| {
            {
                let root = span("outer");
                {
                    let _c = span("inner");
                }
                root.finish_with(Duration::from_millis(10));
            }
            take_roots()
        });
        let text = roots[0].render();
        assert!(text.contains("outer"), "{text}");
        assert!(text.contains("└─ inner"), "{text}");
        assert!(text.contains('%'), "{text}");
    }

    #[test]
    fn notes_attach_to_the_innermost_open_span() {
        let roots = with_tracing(|| {
            {
                let _root = span("outer");
                {
                    let _c = span("inner");
                    note("truncated: deadline hit");
                    note("~12 items remaining");
                }
                note("outer-level note");
            }
            take_roots()
        });
        let root = &roots[0];
        assert_eq!(root.note.as_deref(), Some("outer-level note"));
        assert_eq!(
            root.children[0].note.as_deref(),
            Some("truncated: deadline hit; ~12 items remaining")
        );
        let text = root.render();
        assert!(
            text.contains("[truncated: deadline hit; ~12 items remaining]"),
            "{text}"
        );
        assert!(text.contains("[outer-level note]"), "{text}");
    }

    #[test]
    fn note_without_open_span_is_inert() {
        with_tracing(|| {
            note("orphan");
            assert!(take_roots().is_empty());
        });
        set_enabled(false);
        note("disabled"); // must not panic
    }

    #[test]
    fn successive_roots_accumulate_until_taken() {
        let roots = with_tracing(|| {
            drop(span("one"));
            drop(span("two"));
            take_roots()
        });
        let names: Vec<_> = roots.iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["one", "two"]);
        assert!(take_roots().is_empty());
    }
}
