//! Span-based tracing with thread-local span stacks.
//!
//! Tracing is off by default and costs one relaxed atomic load per
//! [`span`] call when disabled. When enabled, each guard pushes onto the
//! current thread's open-span stack; closing a guard pops it and attaches
//! the finished [`SpanNode`] to its parent, or to the thread's finished
//! roots when it was outermost. [`take_roots`] drains those roots for
//! rendering as an indented tree with per-stage timings.

use crate::clock::{ClockHandle, Stopwatch};
use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns span collection on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether spans are currently being collected.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Head-sampling hint period: [`Context::generate`] sets `sampled_hint`
/// on a deterministic 1-in-this fraction of trace IDs. The hint lets a
/// layer opt into extra per-request work (e.g. span collection) up front;
/// the *retention* decision is the tail sampler's and happens at request
/// end with the outcome in hand.
pub const SAMPLE_HINT_EVERY: u64 = 16;

/// A request-scoped identity that flows with the work: stamped onto root
/// spans, structured log lines, flight-recorder events, and histogram
/// exemplars while active on the current thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Context {
    /// Nonzero request identifier (rendered as 16 hex digits everywhere).
    pub trace_id: u64,
    /// Head-sampling hint (deterministic 1-in-[`SAMPLE_HINT_EVERY`]).
    pub sampled_hint: bool,
}

/// Renders a trace ID the one canonical way (16 lowercase hex digits) so
/// logs, `/tracez`, exemplars, and the CLI agree byte-for-byte.
pub fn format_trace_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses [`format_trace_id`] output (also accepts plain decimal).
pub fn parse_trace_id(text: &str) -> Option<u64> {
    let text = text.trim();
    u64::from_str_radix(text, 16)
        .ok()
        .or_else(|| text.parse().ok())
}

/// splitmix64 finalizer: a cheap, well-mixed bijection on `u64`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Context {
    /// Generates a fresh context from a clock reading mixed with a
    /// process-wide counter (two concurrent entry points that read the
    /// same microsecond still get distinct IDs) and a per-process seed.
    /// The seed matters: the monotonic clock counts from *process
    /// start*, so without wall-clock + pid entropy two one-shot CLI
    /// invocations that mint their first ID at the same startup offset
    /// would collide exactly. IDs are never zero.
    pub fn generate(clock: &ClockHandle) -> Context {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        static SEED: OnceLock<u64> = OnceLock::new();
        let seed = *SEED.get_or_init(|| {
            splitmix64(crate::clock::unix_time_ms() ^ u64::from(std::process::id()).rotate_left(40))
        });
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let mut id = splitmix64(clock.now_micros().rotate_left(20) ^ n ^ seed);
        if id == 0 {
            id = 1;
        }
        Context {
            trace_id: id,
            sampled_hint: id.is_multiple_of(SAMPLE_HINT_EVERY),
        }
    }
}

thread_local! {
    static CURRENT: Cell<Option<Context>> = const { Cell::new(None) };
}

/// The context active on this thread, if any.
pub fn current() -> Option<Context> {
    CURRENT.with(Cell::get)
}

/// The active trace ID on this thread, if any.
pub fn current_id() -> Option<u64> {
    current().map(|c| c.trace_id)
}

/// Installs `context` on this thread until the guard drops (the previous
/// context, if any, is restored — contexts nest like spans do).
#[must_use = "the context deactivates when this guard drops"]
pub fn enter(context: Context) -> ContextGuard {
    let prev = CURRENT.with(|c| c.replace(Some(context)));
    ContextGuard {
        installed: Some(context),
        restore: Some(prev),
    }
}

/// Generates a fresh context from `clock` and installs it.
#[must_use = "the context deactivates when this guard drops"]
pub fn enter_new(clock: &ClockHandle) -> ContextGuard {
    enter(Context::generate(clock))
}

/// Enters a fresh context only when none is active: entry points call
/// this unconditionally, so a path invoked inside another request (e.g.
/// personalize running the contextual search) reuses the caller's ID
/// instead of minting a second one.
#[must_use = "the context deactivates when this guard drops"]
pub fn ensure(clock: &ClockHandle) -> ContextGuard {
    if current().is_some() {
        ContextGuard {
            installed: None,
            restore: None,
        }
    } else {
        enter_new(clock)
    }
}

/// Restores the previously active context on drop. A guard returned by
/// [`ensure`] under an already-active context restores nothing.
#[derive(Debug)]
pub struct ContextGuard {
    /// What this guard installed (`None` for a no-op guard).
    installed: Option<Context>,
    /// `Some(prev)` to restore on drop; `None` for a no-op guard.
    restore: Option<Option<Context>>,
}

impl ContextGuard {
    /// The context this guard installed (`None` for a no-op guard).
    pub fn context(&self) -> Option<Context> {
        self.installed
    }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.restore.take() {
            CURRENT.with(|c| c.set(prev));
        }
    }
}

/// One finished span: a named duration with nested child spans.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanNode {
    /// Stage name (e.g. `query.context/traverse`).
    pub name: &'static str,
    /// Wall time between open and close.
    pub duration: Duration,
    /// Free-form annotation attached via [`note`] while the span was open
    /// (e.g. `truncated: deadline hit, ~12 items remaining`).
    pub note: Option<String>,
    /// The request [`Context`] ID active when this span closed as a root
    /// (`None` for child spans and for roots closed outside any context).
    pub trace_id: Option<u64>,
    /// Spans opened (and closed) while this one was open.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Renders the span tree as indented lines with per-stage timings and
    /// each child's share of its parent.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}  {:.3?}", self.name, self.duration);
        if let Some(id) = self.trace_id {
            let _ = write!(out, "  trace={}", format_trace_id(id));
        }
        if let Some(note) = &self.note {
            let _ = write!(out, "  [{note}]");
        }
        out.push('\n');
        render_children(&self.children, self.duration, "", &mut out);
        out
    }
}

fn render_children(children: &[SpanNode], parent: Duration, prefix: &str, out: &mut String) {
    for (i, child) in children.iter().enumerate() {
        let last = i + 1 == children.len();
        let (branch, cont) = if last {
            ("└─ ", "   ")
        } else {
            ("├─ ", "│  ")
        };
        let share = if parent.as_nanos() == 0 {
            0.0
        } else {
            child.duration.as_nanos() as f64 / parent.as_nanos() as f64 * 100.0
        };
        let _ = write!(
            out,
            "{prefix}{branch}{}  {:.3?} ({share:.1}%)",
            child.name, child.duration
        );
        if let Some(note) = &child.note {
            let _ = write!(out, "  [{note}]");
        }
        out.push('\n');
        render_children(
            &child.children,
            child.duration,
            &format!("{prefix}{cont}"),
            out,
        );
    }
}

struct OpenSpan {
    name: &'static str,
    start: Stopwatch,
    note: Option<String>,
    children: Vec<SpanNode>,
}

thread_local! {
    static STACK: RefCell<Vec<OpenSpan>> = const { RefCell::new(Vec::new()) };
    static ROOTS: RefCell<Vec<SpanNode>> = const { RefCell::new(Vec::new()) };
}

/// Opens a span named `name`. The span closes when the guard drops (or via
/// [`SpanGuard::finish_with`]). A no-op when tracing is disabled.
#[must_use = "the span closes when this guard drops"]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { open: false };
    }
    STACK.with(|stack| {
        stack.borrow_mut().push(OpenSpan {
            name,
            start: ClockHandle::real().start(),
            note: None,
            children: Vec::new(),
        })
    });
    SpanGuard { open: true }
}

/// Annotates the innermost open span on this thread (no-op when tracing is
/// disabled or no span is open). Repeated notes on the same span join with
/// `"; "`. Query paths use this to mark deadline truncation — the stage
/// span carries the truncation point and remaining-work estimate.
pub fn note(text: impl Into<String>) {
    if !enabled() {
        return;
    }
    STACK.with(|stack| {
        if let Some(open) = stack.borrow_mut().last_mut() {
            let text = text.into();
            match &mut open.note {
                Some(existing) => {
                    existing.push_str("; ");
                    existing.push_str(&text);
                }
                None => open.note = Some(text),
            }
        }
    });
}

/// Drains the finished root spans collected on this thread.
pub fn take_roots() -> Vec<SpanNode> {
    ROOTS.with(|roots| std::mem::take(&mut *roots.borrow_mut()))
}

/// Closes its span on drop, attaching it to the parent span or the
/// thread's finished roots.
#[derive(Debug)]
pub struct SpanGuard {
    open: bool,
}

impl SpanGuard {
    /// Closes the span, recording `duration` instead of the guard's own
    /// wall-clock measurement. Used when a caller has already measured the
    /// stage (e.g. a query's reported latency) and the span tree must agree
    /// with that number exactly.
    pub fn finish_with(mut self, duration: Duration) {
        self.close(Some(duration));
    }

    fn close(&mut self, duration_override: Option<Duration>) {
        if !self.open {
            return;
        }
        self.open = false;
        let node = STACK.with(|stack| {
            let open = stack.borrow_mut().pop()?;
            Some(SpanNode {
                name: open.name,
                duration: duration_override.unwrap_or_else(|| open.start.elapsed()),
                note: open.note,
                trace_id: None,
                children: open.children,
            })
        });
        let Some(mut node) = node else { return };
        STACK.with(|stack| {
            if let Some(parent) = stack.borrow_mut().last_mut() {
                parent.children.push(node);
            } else {
                node.trace_id = current_id();
                ROOTS.with(|roots| roots.borrow_mut().push(node));
            }
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the process-wide enable flag.
    fn with_tracing<R>(f: impl FnOnce() -> R) -> R {
        use std::sync::Mutex;
        static GATE: Mutex<()> = Mutex::new(());
        let _lock = GATE.lock().unwrap_or_else(|e| e.into_inner());
        let _ = take_roots();
        set_enabled(true);
        let out = f();
        set_enabled(false);
        out
    }

    #[test]
    fn disabled_spans_collect_nothing() {
        set_enabled(false);
        {
            let _a = span("a");
            let _b = span("b");
        }
        assert!(take_roots().is_empty());
    }

    #[test]
    fn nesting_builds_a_tree() {
        let roots = with_tracing(|| {
            {
                let _root = span("root");
                {
                    let _child = span("child");
                    let _grand = span("grand");
                }
                let _sibling = span("sibling");
            }
            take_roots()
        });
        assert_eq!(roots.len(), 1);
        let root = &roots[0];
        assert_eq!(root.name, "root");
        // Drop order closes "grand" before "child"; both nest under root.
        let names: Vec<_> = root.children.iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["child", "sibling"]);
        assert_eq!(root.children[0].children[0].name, "grand");
    }

    #[test]
    fn finish_with_pins_the_root_duration() {
        let roots = with_tracing(|| {
            let root = span("q");
            root.finish_with(Duration::from_micros(1234));
            take_roots()
        });
        assert_eq!(roots[0].duration, Duration::from_micros(1234));
    }

    #[test]
    fn render_shows_every_stage() {
        let roots = with_tracing(|| {
            {
                let root = span("outer");
                {
                    let _c = span("inner");
                }
                root.finish_with(Duration::from_millis(10));
            }
            take_roots()
        });
        let text = roots[0].render();
        assert!(text.contains("outer"), "{text}");
        assert!(text.contains("└─ inner"), "{text}");
        assert!(text.contains('%'), "{text}");
    }

    #[test]
    fn notes_attach_to_the_innermost_open_span() {
        let roots = with_tracing(|| {
            {
                let _root = span("outer");
                {
                    let _c = span("inner");
                    note("truncated: deadline hit");
                    note("~12 items remaining");
                }
                note("outer-level note");
            }
            take_roots()
        });
        let root = &roots[0];
        assert_eq!(root.note.as_deref(), Some("outer-level note"));
        assert_eq!(
            root.children[0].note.as_deref(),
            Some("truncated: deadline hit; ~12 items remaining")
        );
        let text = root.render();
        assert!(
            text.contains("[truncated: deadline hit; ~12 items remaining]"),
            "{text}"
        );
        assert!(text.contains("[outer-level note]"), "{text}");
    }

    #[test]
    fn note_without_open_span_is_inert() {
        with_tracing(|| {
            note("orphan");
            assert!(take_roots().is_empty());
        });
        set_enabled(false);
        note("disabled"); // must not panic
    }

    #[test]
    fn successive_roots_accumulate_until_taken() {
        let roots = with_tracing(|| {
            drop(span("one"));
            drop(span("two"));
            take_roots()
        });
        let names: Vec<_> = roots.iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["one", "two"]);
        assert!(take_roots().is_empty());
    }

    #[test]
    fn generated_ids_are_distinct_and_nonzero() {
        let (clock, _mock) = ClockHandle::mock();
        // Even with a frozen clock the process counter keeps IDs apart.
        let a = Context::generate(&clock);
        let b = Context::generate(&clock);
        assert_ne!(a.trace_id, 0);
        assert_ne!(a.trace_id, b.trace_id);
    }

    #[test]
    fn trace_id_round_trips_through_the_canonical_format() {
        let id = 0x0123_4567_89ab_cdef;
        let text = format_trace_id(id);
        assert_eq!(text.len(), 16);
        assert_eq!(parse_trace_id(&text), Some(id));
        assert_eq!(parse_trace_id("42"), Some(0x42));
        assert_eq!(parse_trace_id("zz"), None);
    }

    #[test]
    fn contexts_nest_and_restore() {
        assert_eq!(current(), None);
        let outer = Context {
            trace_id: 7,
            sampled_hint: false,
        };
        let inner = Context {
            trace_id: 9,
            sampled_hint: true,
        };
        {
            let g1 = enter(outer);
            assert_eq!(current(), Some(outer));
            assert_eq!(g1.context(), Some(outer));
            {
                let _g2 = enter(inner);
                assert_eq!(current_id(), Some(9));
            }
            assert_eq!(current(), Some(outer), "inner guard restores outer");
        }
        assert_eq!(current(), None, "outer guard restores empty");
    }

    #[test]
    fn ensure_reuses_an_active_context() {
        let clock = ClockHandle::real();
        let g1 = ensure(&clock);
        let id = current_id().expect("ensure installed a context");
        {
            let g2 = ensure(&clock);
            assert_eq!(g2.context(), None, "nested ensure is a no-op guard");
            assert_eq!(current_id(), Some(id));
        }
        assert_eq!(current_id(), Some(id));
        drop(g1);
        assert_eq!(current(), None);
    }

    #[test]
    fn root_spans_are_stamped_with_the_active_trace_id() {
        let roots = with_tracing(|| {
            let _ctx = enter(Context {
                trace_id: 0xabcd,
                sampled_hint: false,
            });
            {
                let _root = span("stamped");
                let _child = span("child");
            }
            take_roots()
        });
        assert_eq!(roots[0].trace_id, Some(0xabcd));
        assert_eq!(roots[0].children[0].trace_id, None, "children unstamped");
        assert!(
            roots[0].render().contains("trace=000000000000abcd"),
            "{}",
            roots[0].render()
        );
    }
}
