//! Structured, leveled, JSON-lines logging.
//!
//! Library crates emit [`LogEvent`]s (level + target + message + key/value
//! fields) instead of bare `eprintln!` (bp-lint's L006 enforces that).
//! Every accepted event is:
//!
//! * appended to the process-wide [flight recorder](crate::flight) so the
//!   last ~4k events survive to a panic dump, and
//! * optionally written to stderr as one JSON line (off by default so CLI
//!   output and test harnesses stay clean; `serve` turns it on).
//!
//! Events are filtered by a `BP_LOG`-style spec (`info`,
//! `warn,bp_storage=debug`, …): a default level plus per-target-prefix
//! overrides, longest prefix wins. Timestamps come from
//! [`unix_time_ms`](crate::clock::unix_time_ms), the workspace's one
//! mockable wall-clock read, so tests pin time and assert exact lines.

use crate::clock::unix_time_ms;
use parking_lot::RwLock;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Severity of a log event, ordered `Trace < Debug < Info < Warn < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Very fine-grained flow tracing.
    Trace,
    /// Diagnostic detail useful when chasing a bug.
    Debug,
    /// Routine but notable milestones.
    Info,
    /// Degraded but handled conditions.
    Warn,
    /// Lost work or broken invariants.
    Error,
}

impl LogLevel {
    /// The canonical uppercase name (`"INFO"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            LogLevel::Trace => "TRACE",
            LogLevel::Debug => "DEBUG",
            LogLevel::Info => "INFO",
            LogLevel::Warn => "WARN",
            LogLevel::Error => "ERROR",
        }
    }

    /// Parses a case-insensitive level name.
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s.to_ascii_lowercase().as_str() {
            "trace" => Some(LogLevel::Trace),
            "debug" => Some(LogLevel::Debug),
            "info" => Some(LogLevel::Info),
            "warn" | "warning" => Some(LogLevel::Warn),
            "error" => Some(LogLevel::Error),
            _ => None,
        }
    }
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured log event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogEvent {
    /// Wall-clock milliseconds since the Unix epoch at emit time.
    pub unix_ms: u64,
    /// Severity.
    pub level: LogLevel,
    /// Dotted module-ish origin (`bp_storage::wal`, `bp_cli::serve`, …).
    pub target: String,
    /// Human-readable message.
    pub message: String,
    /// Structured key/value context.
    pub fields: Vec<(String, String)>,
}

impl LogEvent {
    /// Renders the event as one JSON object line (no trailing newline).
    ///
    /// Key order is fixed (`ts`, `level`, `target`, `msg`, then fields in
    /// emit order) so log lines diff cleanly and tests can assert exact
    /// output.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64 + self.message.len());
        let _ = write!(
            out,
            "{{\"ts\":{},\"level\":\"{}\",\"target\":\"{}\",\"msg\":\"{}\"",
            self.unix_ms,
            self.level,
            crate::expo::json_escape(&self.target),
            crate::expo::json_escape(&self.message),
        );
        for (key, value) in &self.fields {
            let _ = write!(
                out,
                ",\"{}\":\"{}\"",
                crate::expo::json_escape(key),
                crate::expo::json_escape(value)
            );
        }
        out.push('}');
        out
    }
}

/// A parsed filter spec: default level plus per-target-prefix overrides.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Filter {
    default: LogLevel,
    /// `(target_prefix, minimum_level)`, longest prefix wins.
    targets: Vec<(String, LogLevel)>,
}

impl Filter {
    fn parse(spec: &str) -> Filter {
        let mut filter = Filter {
            default: LogLevel::Info,
            targets: Vec::new(),
        };
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.split_once('=') {
                Some((target, level)) => {
                    if let Some(level) = LogLevel::parse(level.trim()) {
                        filter.targets.push((target.trim().to_owned(), level));
                    }
                }
                None => {
                    if let Some(level) = LogLevel::parse(part) {
                        filter.default = level;
                    }
                }
            }
        }
        // Longest prefix first, so lookup can take the first match.
        filter.targets.sort_by_key(|t| std::cmp::Reverse(t.0.len()));
        filter
    }

    fn min_level(&self, target: &str) -> LogLevel {
        self.targets
            .iter()
            .find(|(prefix, _)| target.starts_with(prefix.as_str()))
            .map(|(_, level)| *level)
            .unwrap_or(self.default)
    }
}

struct Logger {
    filter: RwLock<Filter>,
    stderr: AtomicBool,
}

fn logger() -> &'static Logger {
    static LOGGER: OnceLock<Logger> = OnceLock::new();
    LOGGER.get_or_init(|| {
        let spec = std::env::var("BP_LOG").unwrap_or_default();
        Logger {
            filter: RwLock::new(Filter::parse(&spec)),
            stderr: AtomicBool::new(false),
        }
    })
}

/// Replaces the active filter with one parsed from `spec`
/// (`"warn,bp_storage=debug"`). Unparseable parts are ignored; the default
/// level when none is given is `info`.
pub fn set_filter_spec(spec: &str) {
    *logger().filter.write() = Filter::parse(spec);
}

/// Turns the stderr JSON-lines sink on or off (off by default; the flight
/// recorder always receives accepted events).
pub fn set_stderr(on: bool) {
    logger().stderr.store(on, Ordering::Relaxed);
}

/// Whether an event at `level` for `target` would currently be accepted.
pub fn enabled(level: LogLevel, target: &str) -> bool {
    level >= logger().filter.read().min_level(target)
}

/// Emits one structured event (if the filter accepts it): records it in
/// the flight recorder and — when enabled — writes one JSON line to
/// stderr. When a [`crate::trace::Context`] is active on the emitting
/// thread the event gains a trailing `trace_id` field, so every log line
/// and flight-recorder entry of a request carries its identity without
/// call sites threading it by hand.
pub fn log(level: LogLevel, target: &str, message: &str, fields: &[(&str, String)]) {
    if !enabled(level, target) {
        return;
    }
    let mut event = LogEvent {
        unix_ms: unix_time_ms(),
        level,
        target: target.to_owned(),
        message: message.to_owned(),
        fields: fields
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect(),
    };
    if let Some(id) = crate::trace::current_id() {
        event
            .fields
            .push(("trace_id".to_owned(), crate::trace::format_trace_id(id)));
    }
    crate::flight::global().record_log(&event);
    if logger().stderr.load(Ordering::Relaxed) {
        // The logger's own sink: the one sanctioned raw-stderr write in a
        // library crate (bp-lint L006 exempts this file).
        eprintln!("{}", event.to_json_line());
    }
}

/// [`log`] at `Debug`.
pub fn debug(target: &str, message: &str, fields: &[(&str, String)]) {
    log(LogLevel::Debug, target, message, fields);
}

/// [`log`] at `Info`.
pub fn info(target: &str, message: &str, fields: &[(&str, String)]) {
    log(LogLevel::Info, target, message, fields);
}

/// [`log`] at `Warn`.
pub fn warn(target: &str, message: &str, fields: &[(&str, String)]) {
    log(LogLevel::Warn, target, message, fields);
}

/// [`log`] at `Error`.
pub fn error(target: &str, message: &str, fields: &[(&str, String)]) {
    log(LogLevel::Error, target, message, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(LogLevel::Trace < LogLevel::Debug);
        assert!(LogLevel::Warn < LogLevel::Error);
        assert_eq!(LogLevel::parse("WARN"), Some(LogLevel::Warn));
        assert_eq!(LogLevel::parse("warning"), Some(LogLevel::Warn));
        assert_eq!(LogLevel::parse("nope"), None);
        assert_eq!(LogLevel::Error.to_string(), "ERROR");
    }

    #[test]
    fn filter_spec_prefix_overrides() {
        let f = Filter::parse("warn,bp_storage=debug,bp_storage::wal=error");
        assert_eq!(f.default, LogLevel::Warn);
        assert_eq!(f.min_level("bp_core::capture"), LogLevel::Warn);
        assert_eq!(f.min_level("bp_storage::store"), LogLevel::Debug);
        // Longest prefix wins over the shorter bp_storage override.
        assert_eq!(f.min_level("bp_storage::wal"), LogLevel::Error);
    }

    #[test]
    fn filter_spec_garbage_is_ignored() {
        let f = Filter::parse("bogus,, x = nope ,debug");
        assert_eq!(f.default, LogLevel::Debug);
        assert!(f.targets.is_empty());
    }

    #[test]
    fn json_line_is_deterministic_under_mock_clock() {
        crate::clock::set_mock_unix_time_ms(Some(1_700_000_000_000));
        let event = LogEvent {
            unix_ms: unix_time_ms(),
            level: LogLevel::Warn,
            target: "bp_test".into(),
            message: "quo\"ted\nline".into(),
            fields: vec![("k".into(), "v\\w".into())],
        };
        crate::clock::set_mock_unix_time_ms(None);
        assert_eq!(
            event.to_json_line(),
            "{\"ts\":1700000000000,\"level\":\"WARN\",\"target\":\"bp_test\",\
             \"msg\":\"quo\\\"ted\\nline\",\"k\":\"v\\\\w\"}"
        );
        // The rendered line parses back as JSON.
        let doc = crate::json::parse(&event.to_json_line()).expect("log line parses");
        assert_eq!(doc.get("level").and_then(|v| v.as_str()), Some("WARN"));
        assert_eq!(doc.get("k").and_then(|v| v.as_str()), Some("v\\w"));
    }

    #[test]
    fn accepted_events_reach_the_flight_recorder() {
        let before = crate::flight::global().total_recorded();
        log(
            LogLevel::Error,
            "bp_log_test",
            "recorded",
            &[("n", "1".to_owned())],
        );
        assert!(crate::flight::global().total_recorded() > before);
    }

    #[test]
    fn active_context_stamps_log_and_flight_entries() {
        let _ctx = crate::trace::enter(crate::trace::Context {
            trace_id: 0x1dea,
            sampled_hint: false,
        });
        log(
            LogLevel::Error,
            "bp_log_test_ctx",
            "stamped",
            &[("k", "v".to_owned())],
        );
        let entry = crate::flight::global()
            .snapshot()
            .into_iter()
            .rev()
            .find(|e| e.event.target == "bp_log_test_ctx")
            .expect("event retained");
        assert_eq!(
            entry
                .event
                .fields
                .last()
                .map(|(k, v)| (k.as_str(), v.as_str())),
            Some(("trace_id", "0000000000001dea"))
        );
        // The caller's own fields survive ahead of the stamp.
        assert_eq!(entry.event.fields[0].0, "k");
    }

    #[test]
    fn filtered_events_are_dropped() {
        set_filter_spec("error,bp_log_test_quiet=error");
        let before = crate::flight::global().total_recorded();
        debug("bp_log_test_quiet", "dropped", &[]);
        assert_eq!(crate::flight::global().total_recorded(), before);
        assert!(!enabled(LogLevel::Info, "bp_log_test_quiet"));
        set_filter_spec("info");
        assert!(enabled(LogLevel::Info, "bp_log_test_quiet"));
    }
}
