//! Fixed-capacity ring-buffer journal of notable runtime events.
//!
//! The journal keeps the most recent N events of operational interest —
//! WAL recoveries, snapshot compactions, query deadline misses, privacy
//! redactions — so `browserprov stats` can show *what happened recently*,
//! not just aggregate counts. Old events fall off the front; a drop count
//! records how many were discarded.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt;

/// Severity of a journal event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// Routine but notable (compaction completed, recovery clean).
    Info,
    /// Degraded but handled (torn WAL tail truncated, deadline bounded).
    Warn,
    /// Lost work or broken invariants.
    Error,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::Info => "INFO",
            Level::Warn => "WARN",
            Level::Error => "ERROR",
        })
    }
}

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalEvent {
    /// Monotone sequence number (never reused, survives eviction).
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch at record time.
    pub unix_ms: u64,
    /// Severity.
    pub level: Level,
    /// Human-readable description.
    pub message: String,
}

#[derive(Debug, Default)]
struct Inner {
    next_seq: u64,
    dropped: u64,
    events: VecDeque<JournalEvent>,
}

/// A bounded, thread-safe event log.
#[derive(Debug)]
pub struct Journal {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl Default for Journal {
    fn default() -> Self {
        Journal::new(256)
    }
}

impl Journal {
    /// A journal holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Journal {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Records one event, evicting the oldest if full.
    pub fn record(&self, level: Level, message: impl Into<String>) {
        let unix_ms = crate::clock::unix_time_ms();
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(JournalEvent {
            seq,
            unix_ms,
            level,
            message: message.into(),
        });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<JournalEvent> {
        self.inner.lock().events.iter().cloned().collect()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// Events evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Renders the retained events as `seq [LEVEL] message` lines.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let inner = self.inner.lock();
        if inner.dropped > 0 {
            let _ = writeln!(out, "({} earlier events dropped)", inner.dropped);
        }
        for e in &inner.events {
            let _ = writeln!(out, "#{:<5} [{}] {}", e.seq, e.level, e.message);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let j = Journal::new(8);
        j.record(Level::Info, "first");
        j.record(Level::Warn, "second");
        let events = j.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].message, "first");
        assert_eq!(events[1].level, Level::Warn);
        assert!(events[0].seq < events[1].seq);
    }

    #[test]
    fn evicts_oldest_at_capacity() {
        let j = Journal::new(3);
        for i in 0..5 {
            j.record(Level::Info, format!("e{i}"));
        }
        let events = j.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].message, "e2");
        assert_eq!(j.dropped(), 2);
        assert_eq!(j.total_recorded(), 5);
    }

    #[test]
    fn render_mentions_drops_and_levels() {
        let j = Journal::new(1);
        j.record(Level::Info, "gone");
        j.record(Level::Error, "kept");
        let text = j.render();
        assert!(text.contains("1 earlier events dropped"), "{text}");
        assert!(text.contains("[ERROR] kept"), "{text}");
        assert!(!text.contains("gone\n"), "{text}");
    }
}
