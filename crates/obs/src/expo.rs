//! Exposition and persistence of metric snapshots.
//!
//! Three renderings of a [`RegistrySnapshot`]:
//!
//! * **Prometheus text** — `# TYPE` headers, cumulative `_bucket{le=…}`
//!   histogram series, `_sum`/`_count`; names sanitized to the Prometheus
//!   charset.
//! * **JSON** — a single object with `counters`/`gauges`/`histograms`
//!   keys, histograms carrying count/sum/max and p50/p95/p99 readouts.
//! * **Snapshot text** — a line-oriented format that round-trips exactly
//!   (`import_snapshot` merges it into a live registry), used to carry the
//!   capture-session metrics of `browserprov generate` forward into a
//!   later `browserprov stats` invocation.

use crate::metrics::{HistogramSnapshot, MetricsRegistry, RegistrySnapshot, HISTOGRAM_BUCKETS};
use std::fmt::Write as _;

/// Maps a metric name onto the Prometheus charset (`[a-zA-Z0-9_:]`).
/// Metric names must not *start* with a digit, so a leading digit gets an
/// underscore prefix.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    if name.starts_with(|c: char| c.is_ascii_digit()) {
        out.push('_');
    }
    out.extend(name.chars().map(|c| {
        if c.is_ascii_alphanumeric() || c == ':' {
            c
        } else {
            '_'
        }
    }));
    out
}

/// Escapes a label *value* per the Prometheus text exposition format:
/// backslash, double-quote, and line-feed are the only characters with
/// escape sequences (`\\`, `\"`, `\n`); everything else — including other
/// control characters and full UTF-8 — passes through verbatim. Dropping
/// or mangling any of the three would make hostile label values (paths
/// with quotes, messages with newlines) parse as different series or break
/// the line orientation of the format.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders one labeled sample line (`name{k="v",…} value`), sanitizing the
/// metric/label names and escaping the label values. Used for info-style
/// series such as `bp_build_info{version="…",profile="…"} 1`, whose label
/// values (filesystem paths) can contain arbitrary bytes.
pub fn render_labeled_sample(name: &str, labels: &[(&str, &str)], value: i64) -> String {
    let mut out = sanitize(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (label, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}=\"{}\"", sanitize(label), escape_label_value(v));
        }
        out.push('}');
    }
    let _ = writeln!(out, " {value}");
    out
}

/// Renders the snapshot in the Prometheus text exposition format.
pub fn render_prometheus(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snap.gauges {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, hist) in &snap.histograms {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, n) in hist.buckets.iter().enumerate() {
            cumulative += n;
            // Only emit boundaries up to the data; +Inf closes the series.
            if cumulative > 0 && *n > 0 {
                let le = crate::metrics::bucket_bounds(i).1;
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count);
        let _ = writeln!(out, "{name}_sum {}", hist.sum);
        let _ = writeln!(out, "{name}_count {}", hist.count);
        // Interpolated percentile readouts as plain series, so dashboards
        // get p50/p95/p99 without a quantile-capable backend.
        let _ = writeln!(out, "{name}_p50 {}", hist.p50());
        let _ = writeln!(out, "{name}_p95 {}", hist.p95());
        let _ = writeln!(out, "{name}_p99 {}", hist.p99());
        // Exemplars as comment annotations: the classic text format has no
        // exemplar syntax (that's OpenMetrics), and comments keep every
        // scraper happy while still carrying bucket → trace-ID links.
        for ex in &hist.exemplars {
            let le = crate::metrics::bucket_bounds(ex.bucket).1;
            let _ = writeln!(
                out,
                "# EXEMPLAR {name}_bucket{{le=\"{le}\"}} trace_id={} value={}",
                crate::trace::format_trace_id(ex.trace_id),
                ex.value
            );
        }
    }
    out
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Version of the JSON exposition schema ([`render_json`]). Bump on any
/// breaking change to the document's shape so external tooling can gate.
pub const JSON_SCHEMA_VERSION: u64 = 1;

/// Renders the snapshot as a JSON object with a **stable, documented
/// schema** external tooling can depend on:
///
/// ```json
/// {
///   "schema_version": 1,
///   "counters":   { "<name>": <u64>, ... },
///   "gauges":     { "<name>": <i64>, ... },
///   "histograms": { "<name>": {"count": u64, "sum": u64, "max": u64,
///                               "p50": u64, "p95": u64, "p99": u64}, ... }
/// }
/// ```
///
/// Metric names are sorted lexicographically within each section;
/// percentiles are interpolated
/// ([`HistogramSnapshot::quantile_interpolated`]) in microseconds for
/// latency histograms.
pub fn render_json(snap: &RegistrySnapshot) -> String {
    let mut out = format!("{{\n  \"schema_version\": {JSON_SCHEMA_VERSION},\n  \"counters\": {{");
    let mut first = true;
    for (name, value) in &snap.counters {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{}\": {value}", json_escape(name));
    }
    out.push_str("\n  },\n  \"gauges\": {");
    first = true;
    for (name, value) in &snap.gauges {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{}\": {value}", json_escape(name));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    first = true;
    for (name, hist) in &snap.histograms {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}",
            json_escape(name),
            hist.count,
            hist.sum,
            hist.max,
            hist.p50(),
            hist.p95(),
            hist.p99()
        );
        // The exemplars key appears exactly when the histogram has any:
        // `le` is the bucket's inclusive upper bound, `trace_id` the
        // canonical 16-hex-digit form `/tracez?id=` accepts.
        if !hist.exemplars.is_empty() {
            out.push_str(", \"exemplars\": [");
            for (i, ex) in hist.exemplars.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"le\": {}, \"trace_id\": \"{}\", \"value\": {}}}",
                    crate::metrics::bucket_bounds(ex.bucket).1,
                    crate::trace::format_trace_id(ex.trace_id),
                    ex.value
                );
            }
            out.push(']');
        }
        out.push('}');
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Version header of the snapshot persistence format.
const SNAPSHOT_HEADER: &str = "# bp-obs snapshot v1";

/// Serializes the snapshot in the line-oriented persistence format.
pub fn export_snapshot(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{SNAPSHOT_HEADER}");
    for (name, value) in &snap.counters {
        let _ = writeln!(out, "counter {name} {value}");
    }
    for (name, value) in &snap.gauges {
        let _ = writeln!(out, "gauge {name} {value}");
    }
    for (name, hist) in &snap.histograms {
        let _ = write!(out, "hist {name} {} {} {}", hist.count, hist.sum, hist.max);
        for (i, n) in hist.buckets.iter().enumerate() {
            if *n > 0 {
                let _ = write!(out, " {i}:{n}");
            }
        }
        out.push('\n');
    }
    out
}

/// A malformed snapshot line encountered by [`import_snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotParseError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl std::fmt::Display for SnapshotParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for SnapshotParseError {}

/// Merges a persisted snapshot into `registry`: counters and histograms
/// accumulate, gauges take the persisted level.
///
/// # Errors
///
/// Returns the first malformed line. Metrics parsed before the error have
/// already been merged.
pub fn import_snapshot(registry: &MetricsRegistry, text: &str) -> Result<(), SnapshotParseError> {
    let err = |line: usize, reason: &str| SnapshotParseError {
        line,
        reason: reason.to_owned(),
    };
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let kind = parts.next().unwrap_or_default();
        let name = parts
            .next()
            .ok_or_else(|| err(line_no, "missing metric name"))?;
        match kind {
            "counter" => {
                let value: u64 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| err(line_no, "bad counter value"))?;
                registry.counter(name).add(value);
            }
            "gauge" => {
                let value: i64 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| err(line_no, "bad gauge value"))?;
                registry.gauge(name).set(value);
            }
            "hist" => {
                let mut snap = HistogramSnapshot::empty();
                snap.count = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| err(line_no, "bad histogram count"))?;
                snap.sum = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| err(line_no, "bad histogram sum"))?;
                snap.max = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| err(line_no, "bad histogram max"))?;
                for pair in parts {
                    let (bucket, count) = pair
                        .split_once(':')
                        .ok_or_else(|| err(line_no, "bad bucket pair"))?;
                    let bucket: usize = bucket
                        .parse()
                        .map_err(|_| err(line_no, "bad bucket index"))?;
                    if bucket >= HISTOGRAM_BUCKETS {
                        return Err(err(line_no, "bucket index out of range"));
                    }
                    snap.buckets[bucket] = count
                        .parse()
                        .map_err(|_| err(line_no, "bad bucket count"))?;
                }
                registry.histogram(name).merge(&snap);
            }
            other => return Err(err(line_no, &format!("unknown record kind {other:?}"))),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> MetricsRegistry {
        let r = MetricsRegistry::new();
        r.counter("capture.events_total").add(42);
        r.gauge("capture.queue_depth").set(3);
        let h = r.histogram("query.context.latency_us");
        h.record(150);
        h.record(900);
        r
    }

    #[test]
    fn prometheus_text_has_types_and_series() {
        let text = render_prometheus(&sample_registry().snapshot());
        assert!(
            text.contains("# TYPE capture_events_total counter"),
            "{text}"
        );
        assert!(text.contains("capture_events_total 42"), "{text}");
        assert!(text.contains("# TYPE capture_queue_depth gauge"), "{text}");
        assert!(
            text.contains("query_context_latency_us_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("query_context_latency_us_sum 1050"), "{text}");
    }

    #[test]
    fn json_contains_quantiles() {
        let text = render_json(&sample_registry().snapshot());
        assert!(text.contains("\"schema_version\": 1"), "{text}");
        assert!(text.contains("\"capture.events_total\": 42"), "{text}");
        assert!(text.contains("\"p99\""), "{text}");
        assert!(text.contains("\"max\": 900"), "{text}");
    }

    #[test]
    fn prometheus_text_has_percentile_series() {
        let text = render_prometheus(&sample_registry().snapshot());
        assert!(text.contains("query_context_latency_us_p50 "), "{text}");
        assert!(text.contains("query_context_latency_us_p95 "), "{text}");
        assert!(text.contains("query_context_latency_us_p99 "), "{text}");
    }

    /// The satellite contract: `stats --metrics-json` output is a stable,
    /// parseable document. Render → parse → every metric's value round
    /// trips, the schema version gates, and keys come out sorted.
    #[test]
    fn json_exposition_round_trips_through_parser() {
        let registry = sample_registry();
        registry.counter("a.first").add(1);
        registry.counter("z.last").add(2);
        registry.gauge("negative.level").set(-17);
        let snap = registry.snapshot();
        let text = render_json(&snap);

        let doc = crate::json::parse(&text).expect("exposition JSON parses");
        assert_eq!(
            doc.get("schema_version").and_then(|v| v.as_u64()),
            Some(JSON_SCHEMA_VERSION)
        );
        let counters = doc.get("counters").and_then(|c| c.as_object()).unwrap();
        assert_eq!(counters.len(), snap.counters.len());
        for (name, value) in &snap.counters {
            assert_eq!(counters[name].as_u64(), Some(*value), "counter {name}");
        }
        let gauges = doc.get("gauges").and_then(|g| g.as_object()).unwrap();
        assert_eq!(gauges["negative.level"].as_f64(), Some(-17.0));
        let hists = doc.get("histograms").and_then(|h| h.as_object()).unwrap();
        for (name, hist) in &snap.histograms {
            let entry = &hists[name];
            assert_eq!(
                entry.get("count").and_then(|v| v.as_u64()),
                Some(hist.count)
            );
            assert_eq!(entry.get("sum").and_then(|v| v.as_u64()), Some(hist.sum));
            assert_eq!(entry.get("max").and_then(|v| v.as_u64()), Some(hist.max));
            for p in ["p50", "p95", "p99"] {
                assert!(
                    entry.get(p).and_then(|v| v.as_u64()).is_some(),
                    "{name}.{p}"
                );
            }
        }
        // Keys appear in sorted order in the rendered document itself.
        let a = text.find("\"a.first\"").unwrap();
        let c = text.find("\"capture.events_total\"").unwrap();
        let z = text.find("\"z.last\"").unwrap();
        assert!(a < c && c < z, "counter keys must render sorted");
    }

    #[test]
    fn snapshot_roundtrips_through_import() {
        let source = sample_registry();
        let exported = export_snapshot(&source.snapshot());

        let target = MetricsRegistry::new();
        target.counter("capture.events_total").add(8);
        import_snapshot(&target, &exported).unwrap();

        let merged = target.snapshot();
        assert_eq!(merged.counters["capture.events_total"], 50);
        assert_eq!(merged.gauges["capture.queue_depth"], 3);
        let hist = &merged.histograms["query.context.latency_us"];
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum, 1050);
        assert_eq!(hist.max, 900);
    }

    #[test]
    fn import_rejects_garbage_with_line_numbers() {
        let registry = MetricsRegistry::new();
        let bad = "# bp-obs snapshot v1\ncounter ok 5\nwat is this\n";
        let e = import_snapshot(&registry, bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.reason.contains("unknown record kind"), "{e}");
        // The line before the error still merged.
        assert_eq!(registry.counter("ok").get(), 5);
    }

    #[test]
    fn json_escaping_handles_control_chars() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn label_values_escape_exactly_the_spec_set() {
        assert_eq!(escape_label_value(r"C:\tmp"), r"C:\\tmp");
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        // Tabs, carriage returns, and UTF-8 pass through verbatim.
        assert_eq!(escape_label_value("a\tb\rc é"), "a\tb\rc é");
    }

    #[test]
    fn labeled_samples_render_and_never_break_line_orientation() {
        let line = render_labeled_sample(
            "bp_build_info",
            &[("version", "0.1.0"), ("profile", "/tmp/a\nb\"c\\d")],
            1,
        );
        assert_eq!(
            line,
            "bp_build_info{version=\"0.1.0\",profile=\"/tmp/a\\nb\\\"c\\\\d\"} 1\n"
        );
        // Exactly one newline: the terminator. Hostile values cannot
        // smuggle extra sample lines into the exposition.
        assert_eq!(line.matches('\n').count(), 1);
        let bare = render_labeled_sample("bp_up", &[], 1);
        assert_eq!(bare, "bp_up 1\n");
    }

    #[test]
    fn sanitize_prefixes_leading_digits() {
        assert_eq!(sanitize("2xx.responses"), "_2xx_responses");
        assert_eq!(sanitize("ok.name"), "ok_name");
    }

    #[test]
    fn exemplars_render_in_both_expositions() {
        let r = MetricsRegistry::new();
        let h = r.histogram("query.context.latency_us");
        {
            let _ctx = crate::trace::enter(crate::trace::Context {
                trace_id: 0xbeef,
                sampled_hint: false,
            });
            h.record(900); // bucket [512, 1023], le 1023
        }
        h.record(150); // untraced: no exemplar for this bucket

        let snap = r.snapshot();
        let hist = &snap.histograms["query.context.latency_us"];
        assert_eq!(hist.exemplars.len(), 1);
        assert_eq!(hist.exemplars[0].trace_id, 0xbeef);
        assert_eq!(hist.exemplars[0].value, 900);

        let text = render_prometheus(&snap);
        assert!(
            text.contains(
                "# EXEMPLAR query_context_latency_us_bucket{le=\"1023\"} \
                 trace_id=000000000000beef value=900"
            ),
            "{text}"
        );

        let json = render_json(&snap);
        assert!(
            json.contains("\"exemplars\": [{\"le\": 1023, \"trace_id\": \"000000000000beef\", \"value\": 900}]"),
            "{json}"
        );
        assert!(crate::json::parse(&json).is_ok(), "{json}");
    }

    #[test]
    fn exemplars_do_not_leak_through_snapshot_persistence() {
        let r = MetricsRegistry::new();
        {
            let _ctx = crate::trace::enter(crate::trace::Context {
                trace_id: 0xfeed,
                sampled_hint: false,
            });
            r.histogram("h").record(40);
        }
        let exported = export_snapshot(&r.snapshot());
        assert!(!exported.contains("feed"), "{exported}");
        let target = MetricsRegistry::new();
        import_snapshot(&target, &exported).unwrap();
        let merged = target.snapshot();
        assert!(merged.histograms["h"].exemplars.is_empty());
        assert_eq!(merged.histograms["h"].count, 1);
    }
}
