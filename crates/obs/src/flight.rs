//! The flight recorder: a fixed-size ring of the last ~4k log/span events.
//!
//! Post-mortem debugging of a long-running `serve` daemon needs the events
//! *leading up to* a failure, not just aggregate counters. The recorder
//! keeps the most recent [`FLIGHT_CAPACITY`] entries in memory at all
//! times and renders them oldest-first on demand: the `/debug/flightz`
//! endpoint returns the dump, `SIGUSR1` writes it to disk, and
//! [`install_panic_hook`] writes it on any panic (then chains to the
//! previous hook).
//!
//! Writers claim a slot with one lock-free `fetch_add` ticket; the slot
//! body sits behind a tiny per-slot latch (bp-obs forbids `unsafe`, so a
//! raw seqlock over uninitialized cells is off the table). A stale writer
//! that laps the ring can never overwrite a newer entry: slots keep the
//! highest ticket they have seen. Entries are therefore never torn and
//! drain in strict sequence order.

use crate::log::{LogEvent, LogLevel};
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Capacity of the process-wide recorder (entries; a power of two).
pub const FLIGHT_CAPACITY: usize = 4096;

/// One retained entry: a sequence number plus the structured event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightEntry {
    /// Monotone ticket (0-based, never reused; gaps never occur).
    pub seq: u64,
    /// The recorded event.
    pub event: LogEvent,
}

struct Slot {
    /// `ticket + 1` of the entry held; 0 while empty.
    stamp: AtomicU64,
    entry: Mutex<Option<FlightEntry>>,
}

/// A bounded, concurrent, oldest-evicting event ring.
pub struct FlightRecorder {
    mask: u64,
    next: AtomicU64,
    slots: Vec<Slot>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.next.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder holding the most recent `capacity` entries (rounded up
    /// to a power of two, minimum 2).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(2).next_power_of_two();
        FlightRecorder {
            mask: (capacity - 1) as u64,
            next: AtomicU64::new(0),
            slots: (0..capacity)
                .map(|_| Slot {
                    stamp: AtomicU64::new(0),
                    entry: Mutex::new(None),
                })
                .collect(),
        }
    }

    /// Records one event, evicting the oldest entry once full.
    pub fn record_log(&self, event: &LogEvent) {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket & self.mask) as usize];
        let mut entry = slot.entry.lock();
        // Two writers one lap apart can race to the same slot; the newer
        // ticket wins regardless of lock acquisition order.
        if slot.stamp.load(Ordering::Relaxed) < ticket + 1 {
            slot.stamp.store(ticket + 1, Ordering::Relaxed);
            *entry = Some(FlightEntry {
                seq: ticket,
                event: event.clone(),
            });
        }
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// The retained entries, oldest first (strictly increasing `seq`).
    pub fn snapshot(&self) -> Vec<FlightEntry> {
        let mut entries: Vec<FlightEntry> = self
            .slots
            .iter()
            .filter_map(|slot| slot.entry.lock().clone())
            .collect();
        entries.sort_by_key(|e| e.seq);
        entries
    }

    /// Renders the dump: a header line with totals, then one JSON line per
    /// retained entry, oldest first. This is the `/debug/flightz` body and
    /// the on-disk dump format (see README "Running as a service").
    pub fn render(&self) -> String {
        let entries = self.snapshot();
        let total = self.total_recorded();
        let mut out = format!(
            "# bp-flight dump v1: {} retained of {} recorded ({} evicted)\n",
            entries.len(),
            total,
            total.saturating_sub(entries.len() as u64),
        );
        for entry in &entries {
            let _ = writeln!(out, "{}", entry.event.to_json_line());
        }
        out
    }

    /// Writes [`FlightRecorder::render`] to `path` (best-effort).
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn dump_to(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

/// The process-wide recorder every accepted log event lands in.
pub fn global() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| FlightRecorder::new(FLIGHT_CAPACITY))
}

/// Installs a panic hook that records the panic as an `ERROR` event,
/// dumps the global recorder to `dump_path`, then chains to the previously
/// installed hook (so default backtrace printing still happens). Worker
/// threads that panic therefore leave a complete flight dump behind even
/// though the process survives.
pub fn install_panic_hook(dump_path: std::path::PathBuf) {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let message = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| info.payload().downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_owned());
        let location = info
            .location()
            .map(|l| format!("{}:{}", l.file(), l.line()))
            .unwrap_or_else(|| "unknown".to_owned());
        global().record_log(&LogEvent {
            unix_ms: crate::clock::unix_time_ms(),
            level: LogLevel::Error,
            target: "panic".to_owned(),
            message,
            fields: vec![("location".to_owned(), location)],
        });
        let _ = global().dump_to(&dump_path);
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(n: u64) -> LogEvent {
        LogEvent {
            unix_ms: n,
            level: LogLevel::Info,
            target: "t".into(),
            message: format!("m{n}"),
            fields: Vec::new(),
        }
    }

    #[test]
    fn retains_the_newest_entries_in_order() {
        let ring = FlightRecorder::new(4);
        for i in 0..10 {
            ring.record_log(&event(i));
        }
        let entries = ring.snapshot();
        assert_eq!(entries.len(), 4);
        let seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(entries[0].event.message, "m6");
        assert_eq!(ring.total_recorded(), 10);
    }

    #[test]
    fn render_reports_eviction_and_json_lines() {
        let ring = FlightRecorder::new(2);
        ring.record_log(&event(0));
        ring.record_log(&event(1));
        ring.record_log(&event(2));
        let text = ring.render();
        assert!(
            text.starts_with("# bp-flight dump v1: 2 retained of 3 recorded (1 evicted)"),
            "{text}"
        );
        assert!(text.contains("\"msg\":\"m2\""), "{text}");
        assert!(!text.contains("\"msg\":\"m0\""), "{text}");
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let ring = FlightRecorder::new(5);
        assert_eq!(ring.slots.len(), 8);
        let ring = FlightRecorder::new(0);
        assert_eq!(ring.slots.len(), 2);
    }

    #[test]
    fn dump_to_writes_the_render() {
        let ring = FlightRecorder::new(4);
        ring.record_log(&event(7));
        let path = std::env::temp_dir().join(format!(
            "bp-flight-test-{}-{:?}.dump",
            std::process::id(),
            std::thread::current().id()
        ));
        ring.dump_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("bp-flight dump v1"), "{text}");
        assert!(text.contains("m7"), "{text}");
        let _ = std::fs::remove_file(&path);
    }
}
