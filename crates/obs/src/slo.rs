//! An in-process SLO engine: error budgets and multi-window burn rates.
//!
//! The paper's operational claim is a 200 ms interactive bound on
//! provenance queries. This module tracks that bound as a *service level
//! objective* — "≥ 99% of deadline-classified queries hit the deadline" —
//! and evaluates Google-SRE-style multi-window burn-rate rules over it,
//! entirely in-process (no external alerting stack):
//!
//! * every finished query records one good/bad sample into per-second
//!   buckets ([`SloEngine::record`]);
//! * a periodic [`SloEngine::evaluate`] computes the burn rate — observed
//!   miss fraction divided by the error budget — over a short (5 m) and a
//!   long (1 h) window, publishes both as `bp_slo_burn_rate.*` gauges (in
//!   thousandths, since gauges are integers), and fires a latched alert on
//!   the rising edge of the fast-burn rule (both windows ≥ threshold).
//!
//! A burn rate of 1.0 (gauge value 1000) means the error budget is being
//! consumed exactly as fast as it accrues; 14.4 — the classic fast-burn
//! page threshold — exhausts a 30-day budget in ~2 days. Time comes from a
//! [`ClockHandle`], so tests drive whole windows with a mock clock and
//! assert the rule trips exactly once per burn episode (the latch resets
//! only after the rule clears). See EXPERIMENTS.md E9.

use crate::clock::ClockHandle;
use crate::log;
use crate::{Level, Obs};
use parking_lot::Mutex;
use std::time::Duration;

/// Configuration for one [`SloEngine`].
#[derive(Clone, Debug)]
pub struct SloConfig {
    /// Fraction of samples that must be good (default `0.99`).
    pub objective: f64,
    /// Short evaluation window (default 5 minutes).
    pub short_window: Duration,
    /// Long evaluation window (default 1 hour).
    pub long_window: Duration,
    /// Burn-rate threshold of the fast rule (default `14.4`).
    pub fast_burn_threshold: f64,
    /// Minimum samples in the short window before the rule may fire
    /// (default 10) — a single early miss is noise, not an incident.
    pub min_samples: u64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            objective: 0.99,
            short_window: Duration::from_secs(5 * 60),
            long_window: Duration::from_secs(60 * 60),
            fast_burn_threshold: 14.4,
            min_samples: 10,
        }
    }
}

/// One evaluation's readout.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloStatus {
    /// Burn rate over the short window.
    pub short_burn: f64,
    /// Burn rate over the long window.
    pub long_burn: f64,
    /// Samples inside the short window.
    pub short_samples: u64,
    /// Whether the fast-burn rule is currently firing (latched).
    pub firing: bool,
    /// Alerts fired since the engine started.
    pub alerts: u64,
}

/// One per-second sample bucket.
#[derive(Clone, Copy, Debug, Default)]
struct Bucket {
    second: u64,
    good: u64,
    bad: u64,
}

struct Inner {
    buckets: Vec<Bucket>,
    firing: bool,
    alerts: u64,
}

/// The engine. Cheap to record into (one mutex over a fixed array); meant
/// to be evaluated on a ~1 s cadence by the owning daemon.
pub struct SloEngine {
    obs: Obs,
    clock: ClockHandle,
    config: SloConfig,
    short_gauge: &'static str,
    long_gauge: &'static str,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for SloEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloEngine")
            .field("config", &self.config)
            .finish()
    }
}

/// Renders a window length for gauge names (`300s` → `5m`, `3600s` → `1h`).
fn window_label(window: Duration) -> String {
    let secs = window.as_secs().max(1);
    if secs.is_multiple_of(3600) {
        format!("{}h", secs / 3600)
    } else if secs.is_multiple_of(60) {
        format!("{}m", secs / 60)
    } else {
        format!("{secs}s")
    }
}

impl SloEngine {
    /// Builds an engine reporting into `obs`, timed by `clock`.
    pub fn new(obs: Obs, clock: ClockHandle, config: SloConfig) -> SloEngine {
        // Gauge names are interned once so evaluate() stays allocation-free
        // on the registry side; the leak is two short strings per engine.
        let short_gauge: &'static str =
            Box::leak(format!("bp_slo_burn_rate.{}", window_label(config.short_window)).into());
        let long_gauge: &'static str =
            Box::leak(format!("bp_slo_burn_rate.{}", window_label(config.long_window)).into());
        let capacity = config.long_window.as_secs().max(60) as usize;
        SloEngine {
            obs,
            clock,
            config,
            short_gauge,
            long_gauge,
            inner: Mutex::new(Inner {
                buckets: vec![Bucket::default(); capacity],
                firing: false,
                alerts: 0,
            }),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Records one sample: `good` means the query met its deadline.
    pub fn record(&self, good: bool) {
        let second = self.clock.now_micros() / 1_000_000;
        let mut inner = self.inner.lock();
        let len = inner.buckets.len() as u64;
        let bucket = &mut inner.buckets[(second % len) as usize];
        if bucket.second != second {
            *bucket = Bucket {
                second,
                good: 0,
                bad: 0,
            };
        }
        if good {
            bucket.good += 1;
        } else {
            bucket.bad += 1;
        }
        self.obs.counter("bp_slo_samples_total").inc();
        if !good {
            self.obs.counter("bp_slo_misses_total").inc();
        }
    }

    /// Sums `(good, bad)` over the trailing `window` ending at `now_sec`.
    fn window_totals(inner: &Inner, now_sec: u64, window: Duration) -> (u64, u64) {
        let span = window.as_secs().max(1);
        let oldest = now_sec.saturating_sub(span - 1);
        let mut good = 0;
        let mut bad = 0;
        for bucket in &inner.buckets {
            if bucket.second >= oldest && bucket.second <= now_sec && (bucket.good | bucket.bad) > 0
            {
                good += bucket.good;
                bad += bucket.bad;
            }
        }
        (good, bad)
    }

    fn burn(&self, good: u64, bad: u64) -> f64 {
        let total = good + bad;
        if total == 0 {
            return 0.0;
        }
        let budget = (1.0 - self.config.objective).max(1e-9);
        (bad as f64 / total as f64) / budget
    }

    /// Evaluates both windows, publishes the burn gauges, and fires the
    /// fast-burn alert on its rising edge (journal + log event +
    /// `bp_slo_alerts_total`). Returns the readout.
    pub fn evaluate(&self) -> SloStatus {
        let now_sec = self.clock.now_micros() / 1_000_000;
        let mut inner = self.inner.lock();
        let (short_good, short_bad) =
            Self::window_totals(&inner, now_sec, self.config.short_window);
        let (long_good, long_bad) = Self::window_totals(&inner, now_sec, self.config.long_window);
        let short_burn = self.burn(short_good, short_bad);
        let long_burn = self.burn(long_good, long_bad);
        let short_samples = short_good + short_bad;

        self.obs
            .gauge(self.short_gauge)
            .set((short_burn * 1000.0) as i64);
        self.obs
            .gauge(self.long_gauge)
            .set((long_burn * 1000.0) as i64);

        let condition = short_samples >= self.config.min_samples
            && short_burn >= self.config.fast_burn_threshold
            && long_burn >= self.config.fast_burn_threshold;
        if condition && !inner.firing {
            inner.firing = true;
            inner.alerts += 1;
            self.obs.counter("bp_slo_alerts_total").inc();
            let message = format!(
                "SLO fast burn: burn rate {short_burn:.1}x over {} / {long_burn:.1}x over {} \
                 (threshold {}x) — the {}% objective is burning its error budget",
                window_label(self.config.short_window),
                window_label(self.config.long_window),
                self.config.fast_burn_threshold,
                self.config.objective * 100.0,
            );
            self.obs.journal().record(Level::Error, message.clone());
            // Name names: the tail sampler always retains deadline-missed
            // traces, so the alert line links straight to the worst
            // offenders an operator should pull up via `/tracez?id=`.
            let worst = crate::sampler::global()
                .worst_offenders(3)
                .into_iter()
                .map(|(id, _)| crate::trace::format_trace_id(id))
                .collect::<Vec<_>>()
                .join(",");
            let mut fields = vec![
                ("short_burn", format!("{short_burn:.3}")),
                ("long_burn", format!("{long_burn:.3}")),
            ];
            if !worst.is_empty() {
                fields.push(("worst_traces", worst));
            }
            log::error("bp_obs::slo", &message, &fields);
        } else if !condition && inner.firing {
            inner.firing = false;
            log::info(
                "bp_obs::slo",
                "SLO fast burn cleared",
                &[("short_burn", format!("{short_burn:.3}"))],
            );
        }
        SloStatus {
            short_burn,
            long_burn,
            short_samples,
            firing: inner.firing,
            alerts: inner.alerts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> (SloEngine, std::sync::Arc<crate::MockClock>, Obs) {
        let (clock, mock) = ClockHandle::mock();
        let obs = Obs::isolated();
        (
            SloEngine::new(obs.clone(), clock, SloConfig::default()),
            mock,
            obs,
        )
    }

    #[test]
    fn window_labels() {
        assert_eq!(window_label(Duration::from_secs(300)), "5m");
        assert_eq!(window_label(Duration::from_secs(3600)), "1h");
        assert_eq!(window_label(Duration::from_secs(90)), "90s");
    }

    #[test]
    fn healthy_traffic_never_fires() {
        let (engine, mock, obs) = engine();
        for _ in 0..300 {
            mock.advance(Duration::from_secs(1));
            for _ in 0..5 {
                engine.record(true);
            }
            let status = engine.evaluate();
            assert!(!status.firing);
        }
        assert_eq!(obs.counter("bp_slo_alerts_total").get(), 0);
        assert_eq!(obs.gauge("bp_slo_burn_rate.5m").get(), 0);
    }

    #[test]
    fn sustained_misses_trip_the_fast_rule_exactly_once() {
        let (engine, mock, obs) = engine();
        // 60 s of pure misses: burn = (1.0 miss fraction) / 0.01 budget =
        // 100x in both windows — far past 14.4.
        let mut alerts_seen = 0;
        for _ in 0..60 {
            mock.advance(Duration::from_secs(1));
            engine.record(false);
            let status = engine.evaluate();
            if status.firing {
                alerts_seen = status.alerts;
            }
        }
        assert_eq!(alerts_seen, 1, "latch must fire exactly once");
        assert_eq!(obs.counter("bp_slo_alerts_total").get(), 1);
        assert!(obs.gauge("bp_slo_burn_rate.5m").get() >= 14_400);
        assert!(obs.gauge("bp_slo_burn_rate.1h").get() >= 14_400);
        // The alert reached the journal and the flight recorder.
        let journal = obs.journal().events();
        assert!(
            journal.iter().any(|e| e.message.contains("SLO fast burn")),
            "{journal:?}"
        );
    }

    #[test]
    fn latch_resets_after_recovery_and_can_refire() {
        let (engine, mock, obs) = engine();
        for _ in 0..30 {
            mock.advance(Duration::from_secs(1));
            engine.record(false);
            engine.evaluate();
        }
        assert_eq!(obs.counter("bp_slo_alerts_total").get(), 1);
        // Long quiet recovery: both windows age the misses out.
        mock.advance(Duration::from_secs(2 * 3600));
        for _ in 0..60 {
            mock.advance(Duration::from_secs(1));
            engine.record(true);
            let status = engine.evaluate();
            assert!(!status.firing, "rule must clear after recovery");
        }
        // A second burn episode fires a second alert.
        for _ in 0..30 {
            mock.advance(Duration::from_secs(1));
            engine.record(false);
            engine.evaluate();
        }
        assert_eq!(obs.counter("bp_slo_alerts_total").get(), 2);
    }

    #[test]
    fn fast_burn_alert_names_the_worst_retained_traces() {
        // Seed the process-global tail sampler with a deadline-missed
        // trace, then trip the latch: the alert's log event must carry a
        // `worst_traces` field naming that trace ID.
        let miss_id: u64 = 0x5105_u64 << 32 | 0xfeed;
        crate::sampler::global().offer(crate::sampler::TraceRecord {
            trace_id: miss_id,
            path: "query.slo_test",
            elapsed_us: 987_654,
            outcome: crate::sampler::TraceOutcome::DeadlineMiss,
            unix_ms: 1,
            tree: None,
        });
        let (engine, mock, _obs) = engine();
        for _ in 0..30 {
            mock.advance(Duration::from_secs(1));
            engine.record(false);
            engine.evaluate();
        }
        let hex = crate::trace::format_trace_id(miss_id);
        let entry = crate::flight::global()
            .snapshot()
            .into_iter()
            .rev()
            .find(|e| {
                e.event.target == "bp_obs::slo"
                    && e.event
                        .fields
                        .iter()
                        .any(|(k, v)| k == "worst_traces" && v.contains(&hex))
            });
        assert!(entry.is_some(), "alert line should name trace {hex}");
    }

    #[test]
    fn min_samples_suppresses_early_noise() {
        let (engine, mock, _obs) = engine();
        mock.advance(Duration::from_secs(1));
        engine.record(false);
        let status = engine.evaluate();
        assert!(status.short_burn > 14.4, "one miss is a 100x burn rate");
        assert!(!status.firing, "but too few samples to page on");
    }
}
