//! Tail-based trace sampling: keep the traces worth keeping.
//!
//! Head sampling decides before the work runs and therefore cannot
//! prefer the interesting requests; this sampler decides *after* the
//! root span closes, with the outcome in hand. Every deadline-missed,
//! truncated, or errored request is retained unconditionally; of the
//! unremarkable rest a deterministic 1-in-N survives (the trace ID is
//! already a splitmix64-mixed value, so `id % N` is an unbiased coin
//! that every layer can re-derive without coordination). Retained
//! traces live in a bounded ring — old entries are evicted, never the
//! decision counters — and are searchable by latency floor, path, and
//! exact ID for the `/tracez` endpoint.
//!
//! Accounting: `bp_trace_sampler.kept` / `.dropped` count decisions,
//! `bp_trace_sampler.evicted` counts retained traces later pushed out
//! of the ring.

use crate::trace;
use crate::{Counter, Obs};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};

/// Retained-trace ring capacity of [`global`].
pub const DEFAULT_CAPACITY: usize = 256;

/// Keep one in this many unremarkable traces (deterministic on the ID).
pub const DEFAULT_KEEP_ONE_IN: u64 = 16;

/// How a request ended, from the sampler's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Finished inside its deadline, untruncated.
    Ok,
    /// Blew through its latency deadline.
    DeadlineMiss,
    /// Returned early with partial results (budget truncation).
    Truncated,
    /// Failed outright.
    Error,
}

impl TraceOutcome {
    /// Stable lowercase label (used in `/tracez` text and JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            TraceOutcome::Ok => "ok",
            TraceOutcome::DeadlineMiss => "deadline_miss",
            TraceOutcome::Truncated => "truncated",
            TraceOutcome::Error => "error",
        }
    }

    /// Whether the tail rule retains this outcome unconditionally.
    fn always_keep(self) -> bool {
        !matches!(self, TraceOutcome::Ok)
    }
}

/// One finished request as offered to (and retained by) the sampler.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// The request's trace ID (see [`trace::Context`]).
    pub trace_id: u64,
    /// Entry-point name (`context`, `lineage`, `ql`, …).
    pub path: &'static str,
    /// End-to-end latency in microseconds.
    pub elapsed_us: u64,
    /// How the request ended.
    pub outcome: TraceOutcome,
    /// Wall-clock arrival time (stamped by [`TailSampler::offer`]).
    pub unix_ms: u64,
    /// Rendered span tree, attached later when span collection was on
    /// for this request (see [`TailSampler::attach_tree`]).
    pub tree: Option<String>,
}

impl TraceRecord {
    /// One summary line: `id  path  elapsed  outcome`.
    pub fn render_line(&self) -> String {
        format!(
            "{}  {:<12}  {:>10}us  {}",
            trace::format_trace_id(self.trace_id),
            self.path,
            self.elapsed_us,
            self.outcome.as_str()
        )
    }

    /// The record as one JSON object (tree included when attached).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"trace_id\":\"{}\",\"path\":\"{}\",\"elapsed_us\":{},\"outcome\":\"{}\",\"unix_ms\":{}",
            trace::format_trace_id(self.trace_id),
            self.path,
            self.elapsed_us,
            self.outcome.as_str(),
            self.unix_ms
        );
        if let Some(tree) = &self.tree {
            let _ = write!(out, ",\"tree\":\"{}\"", crate::expo::json_escape(tree));
        }
        out.push('}');
        out
    }
}

/// The tail sampler: outcome-aware retention over a bounded ring.
#[derive(Debug)]
pub struct TailSampler {
    keep_one_in: u64,
    capacity: usize,
    kept: Arc<Counter>,
    dropped: Arc<Counter>,
    evicted: Arc<Counter>,
    ring: Mutex<VecDeque<TraceRecord>>,
}

impl TailSampler {
    /// A sampler reporting into `obs`, keeping 1-in-`keep_one_in` of
    /// unremarkable traces in a ring of `capacity` entries.
    pub fn new(obs: &Obs, keep_one_in: u64, capacity: usize) -> TailSampler {
        TailSampler {
            keep_one_in: keep_one_in.max(1),
            capacity: capacity.max(1),
            kept: obs.counter("bp_trace_sampler.kept"),
            dropped: obs.counter("bp_trace_sampler.dropped"),
            evicted: obs.counter("bp_trace_sampler.evicted"),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// The tail decision for one finished request. Returns whether the
    /// record was retained. Deadline misses, truncations, and errors are
    /// always kept; of the rest, exactly the IDs with
    /// `trace_id % keep_one_in == 0` survive.
    pub fn offer(&self, mut record: TraceRecord) -> bool {
        let keep = record.outcome.always_keep() || record.trace_id.is_multiple_of(self.keep_one_in);
        if !keep {
            self.dropped.inc();
            return false;
        }
        if record.unix_ms == 0 {
            record.unix_ms = crate::clock::unix_time_ms();
        }
        let mut ring = self.ring.lock();
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.evicted.inc();
        }
        ring.push_back(record);
        drop(ring);
        self.kept.inc();
        true
    }

    /// Attaches a rendered span tree to a retained trace. A no-op when
    /// the ID was dropped or already evicted — tree attachment is
    /// opportunistic (span collection is periodic under `serve`).
    pub fn attach_tree(&self, trace_id: u64, tree: String) {
        let mut ring = self.ring.lock();
        if let Some(record) = ring.iter_mut().rev().find(|r| r.trace_id == trace_id) {
            record.tree = Some(tree);
        }
    }

    /// All retained traces, oldest first.
    pub fn retained(&self) -> Vec<TraceRecord> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Retained traces matching every given filter, oldest first:
    /// latency at least `min_us`, path containing `path`, exact `id`.
    pub fn search(
        &self,
        min_us: Option<u64>,
        path: Option<&str>,
        id: Option<u64>,
    ) -> Vec<TraceRecord> {
        self.ring
            .lock()
            .iter()
            .filter(|r| min_us.is_none_or(|m| r.elapsed_us >= m))
            .filter(|r| path.is_none_or(|p| r.path.contains(p)))
            .filter(|r| id.is_none_or(|i| r.trace_id == i))
            .cloned()
            .collect()
    }

    /// The slowest retained deadline-missing traces, worst first, as
    /// `(trace_id, elapsed_us)` pairs — the SLO fast-burn alert cites
    /// these so an operator can jump straight to `/tracez?id=`.
    pub fn worst_offenders(&self, n: usize) -> Vec<(u64, u64)> {
        let mut misses: Vec<(u64, u64)> = self
            .ring
            .lock()
            .iter()
            .filter(|r| r.outcome == TraceOutcome::DeadlineMiss)
            .map(|r| (r.trace_id, r.elapsed_us))
            .collect();
        misses.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        misses.truncate(n);
        misses
    }
}

/// The process-wide sampler every query path's tail decision lands in
/// (counters report into [`Obs::global`]).
pub fn global() -> &'static TailSampler {
    static GLOBAL: OnceLock<TailSampler> = OnceLock::new();
    GLOBAL.get_or_init(|| TailSampler::new(&Obs::global(), DEFAULT_KEEP_ONE_IN, DEFAULT_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, elapsed_us: u64, outcome: TraceOutcome) -> TraceRecord {
        TraceRecord {
            trace_id: id,
            path: "context",
            elapsed_us,
            outcome,
            unix_ms: 1,
            tree: None,
        }
    }

    #[test]
    fn keeps_every_interesting_outcome_and_one_in_n_of_the_rest() {
        let obs = Obs::isolated();
        let sampler = TailSampler::new(&obs, 16, 64);
        // IDs 1..=48: exactly 16 and 32 and 48 are divisible by 16.
        for id in 1..=48 {
            sampler.offer(record(id, 100, TraceOutcome::Ok));
        }
        assert!(sampler.offer(record(1001, 300_000, TraceOutcome::DeadlineMiss)));
        assert!(sampler.offer(record(1002, 900, TraceOutcome::Truncated)));
        assert!(sampler.offer(record(1003, 50, TraceOutcome::Error)));
        assert_eq!(obs.counter("bp_trace_sampler.kept").get(), 3 + 3);
        assert_eq!(obs.counter("bp_trace_sampler.dropped").get(), 45);
        assert_eq!(obs.counter("bp_trace_sampler.evicted").get(), 0);
        let kept: Vec<u64> = sampler.retained().iter().map(|r| r.trace_id).collect();
        assert_eq!(kept, vec![16, 32, 48, 1001, 1002, 1003]);
    }

    #[test]
    fn decision_is_deterministic_in_the_trace_id() {
        let a = TailSampler::new(&Obs::isolated(), 4, 8);
        let b = TailSampler::new(&Obs::isolated(), 4, 8);
        for id in 1..=40 {
            assert_eq!(
                a.offer(record(id, 10, TraceOutcome::Ok)),
                b.offer(record(id, 10, TraceOutcome::Ok)),
                "id {id} sampled differently across instances"
            );
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_evictions() {
        let obs = Obs::isolated();
        let sampler = TailSampler::new(&obs, 1, 4);
        for id in 1..=10 {
            sampler.offer(record(id, id * 10, TraceOutcome::Ok));
        }
        let kept: Vec<u64> = sampler.retained().iter().map(|r| r.trace_id).collect();
        assert_eq!(kept, vec![7, 8, 9, 10]);
        assert_eq!(obs.counter("bp_trace_sampler.kept").get(), 10);
        assert_eq!(obs.counter("bp_trace_sampler.evicted").get(), 6);
    }

    #[test]
    fn search_filters_compose() {
        let sampler = TailSampler::new(&Obs::isolated(), 1, 16);
        sampler.offer(TraceRecord {
            path: "lineage",
            ..record(1, 50, TraceOutcome::Ok)
        });
        sampler.offer(record(2, 250_000, TraceOutcome::DeadlineMiss));
        sampler.offer(record(3, 400_000, TraceOutcome::DeadlineMiss));
        let slow = sampler.search(Some(200_000), None, None);
        assert_eq!(slow.len(), 2);
        let by_path = sampler.search(None, Some("line"), None);
        assert_eq!(by_path.len(), 1);
        assert_eq!(by_path[0].trace_id, 1);
        let by_id = sampler.search(None, None, Some(3));
        assert_eq!(by_id.len(), 1);
        assert_eq!(by_id[0].elapsed_us, 400_000);
        assert!(sampler.search(Some(1), Some("lineage"), Some(2)).is_empty());
    }

    #[test]
    fn worst_offenders_are_misses_sorted_by_latency() {
        let sampler = TailSampler::new(&Obs::isolated(), 1, 16);
        sampler.offer(record(1, 999_999, TraceOutcome::Truncated));
        sampler.offer(record(2, 210_000, TraceOutcome::DeadlineMiss));
        sampler.offer(record(3, 500_000, TraceOutcome::DeadlineMiss));
        sampler.offer(record(4, 300_000, TraceOutcome::DeadlineMiss));
        assert_eq!(sampler.worst_offenders(2), vec![(3, 500_000), (4, 300_000)]);
    }

    #[test]
    fn attach_tree_targets_the_retained_record() {
        let sampler = TailSampler::new(&Obs::isolated(), 1, 16);
        sampler.offer(record(7, 100, TraceOutcome::Ok));
        sampler.attach_tree(7, "query.context  1ms\n".to_owned());
        sampler.attach_tree(999, "orphan\n".to_owned()); // no-op
        let retained = sampler.retained();
        assert_eq!(retained[0].tree.as_deref(), Some("query.context  1ms\n"));
        let json = retained[0].to_json();
        assert!(json.contains("\"tree\":\"query.context"), "{json}");
        assert!(crate::json::parse(&json).is_ok(), "{json}");
    }
}
