//! Tokenization of page titles, URLs, and synthetic page content.
//!
//! History search is first of all *textual* search over "the search term in
//! both its title and URL" (§2.1); the tokenizer therefore understands URL
//! punctuation (slashes, dots, query separators) as word breaks in addition
//! to ordinary whitespace.

/// Splits text into lowercase alphanumeric tokens.
///
/// Any non-alphanumeric character is a separator, so URLs tokenize
/// naturally: `http://films.example/kane?ref=rosebud` yields
/// `["http", "films", "example", "kane", "ref", "rosebud"]`.
///
/// # Examples
///
/// ```
/// use bp_text::tokenize;
/// assert_eq!(tokenize("Citizen Kane (1941)"), vec!["citizen", "kane", "1941"]);
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            // Lowercasing can emit combining marks that are not themselves
            // alphanumeric (e.g. 'İ' → "i\u{307}"); keep tokens pure.
            current.extend(c.to_lowercase().filter(|lc| lc.is_alphanumeric()));
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Tokenizes and drops stopwords and very short tokens; the standard
/// pipeline for indexing and querying.
///
/// # Examples
///
/// ```
/// use bp_text::significant_tokens;
/// let toks = significant_tokens("the rosebud of a sled");
/// assert_eq!(toks, vec!["rosebud", "sled"]);
/// ```
pub fn significant_tokens(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| t.len() >= 3 && !crate::stopwords::is_stopword(t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_whitespace_and_punctuation() {
        assert_eq!(tokenize("a b,c.d"), vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn lowercases() {
        assert_eq!(tokenize("RoseBud"), vec!["rosebud"]);
    }

    #[test]
    fn url_tokenization() {
        assert_eq!(
            tokenize("http://films.example/kane?ref=rosebud"),
            vec!["http", "films", "example", "kane", "ref", "rosebud"]
        );
    }

    #[test]
    fn empty_and_symbol_only_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! --- ???").is_empty());
    }

    #[test]
    fn digits_are_tokens() {
        assert_eq!(tokenize("room 101"), vec!["room", "101"]);
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(tokenize("Überraschung"), vec!["überraschung"]);
    }

    #[test]
    fn significant_drops_stopwords_and_short_tokens() {
        let toks = significant_tokens("The quick ox at a web");
        assert_eq!(toks, vec!["quick", "web"]);
    }
}
