//! A light suffix-stripping stemmer.
//!
//! Personalized web search (§2.2) must recognize that a user who visits
//! "gardening" pages is interested in a "garden" — matching inflected forms
//! is enough for that; a full Porter stemmer is not required. This stemmer
//! strips common English inflectional suffixes conservatively (never below
//! three characters) so distinct stems rarely collide.

/// Stems a lowercase token by stripping common inflectional suffixes.
///
/// The algorithm applies at most one suffix rule, longest first:
/// `-ational → -ate`, `-iness → -y`, `-fulness`, `-ings`, `-ing`, `-edly`,
/// `-eds`, `-ed`, `-ies → -y`, `-es`, `-s`, `-ly`. A rule only fires if the
/// remaining stem keeps at least three characters.
///
/// # Examples
///
/// ```
/// use bp_text::stem;
/// assert_eq!(stem("gardening"), "garden");
/// assert_eq!(stem("flowers"), "flower");
/// assert_eq!(stem("tickets"), "ticket");
/// assert_eq!(stem("wine"), "wine");
/// ```
pub fn stem(token: &str) -> String {
    let t = token;
    // (suffix, replacement)
    const RULES: &[(&str, &str)] = &[
        ("ational", "ate"),
        ("fulness", "ful"),
        ("iveness", "ive"),
        ("ization", "ize"),
        ("iness", "y"),
        ("ings", ""),
        ("edly", ""),
        ("ing", ""),
        ("ies", "y"),
        ("ed", ""),
        ("es", ""),
        ("ly", ""),
        ("s", ""),
    ];
    for (suffix, replacement) in RULES {
        if let Some(base) = t.strip_suffix(suffix) {
            if base.chars().count() >= 3 {
                let mut out = base.to_owned();
                out.push_str(replacement);
                // Undouble a trailing doubled consonant left by -ing/-ed
                // stripping ("stopping" -> "stopp" -> "stop").
                if replacement.is_empty() {
                    let chars: Vec<char> = out.chars().collect();
                    if chars.len() >= 4 {
                        let last = chars[chars.len() - 1];
                        let prev = chars[chars.len() - 2];
                        if last == prev && !"aeiou".contains(last) && last != 's' {
                            out.pop();
                        }
                    }
                }
                return out;
            }
        }
    }
    t.to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plural_stripping() {
        assert_eq!(stem("flowers"), "flower");
        assert_eq!(stem("roses"), "ros"); // -es rule; acceptable collision space
        assert_eq!(stem("tickets"), "ticket");
    }

    #[test]
    fn ing_and_ed() {
        assert_eq!(stem("gardening"), "garden");
        assert_eq!(stem("visited"), "visit");
        assert_eq!(stem("shopping"), "shop");
        assert_eq!(stem("stopping"), "stop");
    }

    #[test]
    fn ies_to_y() {
        assert_eq!(stem("wineries"), "winery");
        assert_eq!(stem("movies"), "movy"); // consistent, if not pretty
    }

    #[test]
    fn short_tokens_untouched() {
        assert_eq!(stem("as"), "as");
        assert_eq!(stem("ing"), "ing");
        assert_eq!(stem("bed"), "bed");
    }

    #[test]
    fn unsuffixed_tokens_untouched() {
        assert_eq!(stem("wine"), "wine");
        assert_eq!(stem("rosebud"), "rosebud");
    }

    #[test]
    fn stemming_is_idempotent_on_common_vocab() {
        for w in ["garden", "flower", "ticket", "wine", "visit", "shop"] {
            assert_eq!(stem(&stem(w)), stem(w));
        }
    }

    #[test]
    fn related_forms_share_a_stem() {
        assert_eq!(stem("gardening"), stem("gardens"));
        assert_eq!(stem("flowering"), stem("flowers"));
    }

    #[test]
    fn ss_not_undoubled() {
        // "glasses" -> "glass"; trailing double-s is legitimate.
        assert_eq!(stem("glasses"), "glass");
    }
}
