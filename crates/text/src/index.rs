//! An incremental inverted index over history documents.
//!
//! "A browser with textual history search will return the web search page
//! for rosebud, because that page contains the search term in both its
//! title and URL" (§2.1). This index is that textual layer: the contextual
//! algorithms of `bp-query` use its hits as *seeds* and re-rank by
//! provenance neighborhood.

use crate::tokenize::significant_tokens;
use std::collections::HashMap;

/// A document identifier — opaque to the index; `bp-query` uses graph node
/// indexes.
pub type DocId = u32;

/// One posting: a document and the term's frequency within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// The document containing the term.
    pub doc: DocId,
    /// Number of occurrences of the term in the document.
    pub term_frequency: u32,
}

/// An inverted index with incremental document addition.
///
/// Terms are stemmed ([`crate::stem`]) at both index and query time.
///
/// # Examples
///
/// ```
/// use bp_text::InvertedIndex;
/// let mut idx = InvertedIndex::new();
/// idx.add_document(0, "rosebud sled Citizen Kane");
/// idx.add_document(1, "rosebud flowers gardening");
/// let hits = idx.search("rosebud");
/// assert_eq!(hits.len(), 2);
/// let flower_hits = idx.search("flower");
/// assert_eq!(flower_hits.len(), 1);
/// assert_eq!(flower_hits[0].0, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    postings: HashMap<String, Vec<Posting>>,
    doc_lengths: HashMap<DocId, u32>,
    total_docs: usize,
    total_postings: usize,
}

impl InvertedIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed documents.
    pub fn doc_count(&self) -> usize {
        self.total_docs
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.postings.len()
    }

    /// Number of postings ((term, document) pairs) across all lists.
    pub fn posting_count(&self) -> usize {
        self.total_postings
    }

    /// Indexes `text` under `doc`. Calling again for the same `doc` *adds*
    /// text to it (e.g. URL first, then title when it loads).
    pub fn add_document(&mut self, doc: DocId, text: &str) {
        let tokens = significant_tokens(text);
        if tokens.is_empty() {
            return;
        }
        if !self.doc_lengths.contains_key(&doc) {
            self.total_docs += 1;
        }
        let mut counts: HashMap<String, u32> = HashMap::new();
        for token in tokens {
            *counts.entry(crate::stem::stem(&token)).or_insert(0) += 1;
        }
        let mut added = 0;
        for (term, count) in counts {
            added += count;
            let list = self.postings.entry(term).or_default();
            // Documents are added in nondecreasing id order in the common
            // case (history node ids grow monotonically), so the matching
            // or insertion point is almost always the tail; fall back to a
            // binary search for out-of-order additions. Keeping lists
            // sorted makes this O(1) amortized instead of O(list).
            match list.last_mut() {
                Some(last) if last.doc == doc => last.term_frequency += count,
                Some(last) if last.doc < doc => {
                    list.push(Posting {
                        doc,
                        term_frequency: count,
                    });
                    self.total_postings += 1;
                }
                None => {
                    list.push(Posting {
                        doc,
                        term_frequency: count,
                    });
                    self.total_postings += 1;
                }
                Some(_) => match list.binary_search_by_key(&doc, |p| p.doc) {
                    Ok(i) => list[i].term_frequency += count,
                    Err(i) => {
                        list.insert(
                            i,
                            Posting {
                                doc,
                                term_frequency: count,
                            },
                        );
                        self.total_postings += 1;
                    }
                },
            }
        }
        *self.doc_lengths.entry(doc).or_insert(0) += added;
    }

    /// Length (significant token count) of a document, 0 if unknown.
    pub fn doc_length(&self, doc: DocId) -> u32 {
        self.doc_lengths.get(&doc).copied().unwrap_or(0)
    }

    /// Number of documents containing `term` (already stemmed).
    pub fn document_frequency(&self, term: &str) -> usize {
        self.postings.get(term).map_or(0, Vec::len)
    }

    /// Raw postings for a stemmed term.
    pub fn postings(&self, term: &str) -> &[Posting] {
        self.postings.get(term).map_or(&[], Vec::as_slice)
    }

    /// Searches for `query`, scoring by TF-IDF summed across query terms.
    /// Returns `(doc, score)` pairs sorted by descending score (ties by
    /// ascending doc id, for determinism).
    pub fn search(&self, query: &str) -> Vec<(DocId, f64)> {
        let mut scores: HashMap<DocId, f64> = HashMap::new();
        for token in significant_tokens(query) {
            let term = crate::stem::stem(&token);
            let df = self.document_frequency(&term);
            if df == 0 {
                continue;
            }
            let idf = crate::score::idf(self.total_docs, df);
            for p in self.postings(&term) {
                let tf = crate::score::tf_weight(p.term_frequency);
                *scores.entry(p.doc).or_insert(0.0) += tf * idf;
            }
        }
        let mut out: Vec<(DocId, f64)> = scores.into_iter().collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        out
    }

    /// BM25 search: like [`search`](Self::search) but with saturating term
    /// frequency and document-length normalization, so long pages (big
    /// titles + long URLs) cannot win purely by repeating a term.
    /// `k1` controls TF saturation (typical 1.2), `b` the strength of
    /// length normalization (typical 0.75).
    pub fn search_bm25(&self, query: &str, k1: f64, b: f64) -> Vec<(DocId, f64)> {
        let total_len: u64 = self.doc_lengths.values().map(|&l| u64::from(l)).sum();
        let avg_len = if self.total_docs == 0 {
            1.0
        } else {
            (total_len as f64 / self.total_docs as f64).max(1.0)
        };
        let mut scores: HashMap<DocId, f64> = HashMap::new();
        for token in significant_tokens(query) {
            let term = crate::stem::stem(&token);
            let df = self.document_frequency(&term);
            if df == 0 {
                continue;
            }
            let idf = crate::score::idf(self.total_docs, df);
            for p in self.postings(&term) {
                let tf = f64::from(p.term_frequency);
                let len = f64::from(self.doc_length(p.doc)).max(1.0);
                let norm = k1 * (1.0 - b + b * len / avg_len);
                *scores.entry(p.doc).or_insert(0.0) += idf * tf * (k1 + 1.0) / (tf + norm);
            }
        }
        let mut out: Vec<(DocId, f64)> = scores.into_iter().collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        out
    }

    /// Iterates all indexed terms (stemmed) with their document frequency.
    pub fn terms(&self) -> impl Iterator<Item = (&str, usize)> {
        self.postings.iter().map(|(t, l)| (t.as_str(), l.len()))
    }

    /// Removes every posting for `doc` (e.g. when the corresponding
    /// history object is redacted). Returns `true` if the document was
    /// indexed. O(total terms) — redaction is rare; no per-document term
    /// list is maintained for it.
    pub fn remove_document(&mut self, doc: DocId) -> bool {
        if self.doc_lengths.remove(&doc).is_none() {
            return false;
        }
        self.total_docs -= 1;
        let mut removed = 0usize;
        self.postings.retain(|_, list| {
            let before = list.len();
            list.retain(|p| p.doc != doc);
            removed += before - list.len();
            !list.is_empty()
        });
        self.total_postings -= removed;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InvertedIndex {
        let mut idx = InvertedIndex::new();
        idx.add_document(0, "rosebud sled mystery citizen kane film");
        idx.add_document(1, "rosebud flower gardening spring planting");
        idx.add_document(2, "wine tasting napa valley vineyard");
        idx.add_document(3, "cheap plane tickets flights travel");
        idx
    }

    #[test]
    fn counts() {
        let idx = sample();
        assert_eq!(idx.doc_count(), 4);
        assert!(idx.term_count() > 10);
    }

    #[test]
    fn search_finds_matching_docs() {
        let idx = sample();
        let hits = idx.search("rosebud");
        let docs: Vec<DocId> = hits.iter().map(|(d, _)| *d).collect();
        assert_eq!(docs.len(), 2);
        assert!(docs.contains(&0) && docs.contains(&1));
    }

    #[test]
    fn search_is_stemmed_both_ways() {
        let idx = sample();
        assert_eq!(idx.search("flowers")[0].0, 1);
        assert_eq!(idx.search("garden")[0].0, 1, "gardening stems to garden");
        assert_eq!(idx.search("ticket")[0].0, 3);
    }

    #[test]
    fn search_no_hits() {
        let idx = sample();
        assert!(idx.search("submarine").is_empty());
        assert!(idx.search("").is_empty());
        assert!(idx.search("the of and").is_empty(), "stopwords-only query");
    }

    #[test]
    fn rare_terms_outscore_common_ones() {
        let mut idx = InvertedIndex::new();
        for d in 0..10 {
            idx.add_document(d, "wine wine wine common");
        }
        idx.add_document(10, "wine burgundy");
        // "burgundy" appears once in one doc; a two-term query should rank
        // doc 10 first because burgundy's idf dominates.
        let hits = idx.search("wine burgundy");
        assert_eq!(hits[0].0, 10);
    }

    #[test]
    fn incremental_addition_merges() {
        let mut idx = InvertedIndex::new();
        idx.add_document(0, "wine");
        idx.add_document(0, "wine vineyard");
        assert_eq!(idx.doc_count(), 1);
        assert_eq!(idx.postings("wine")[0].term_frequency, 2);
        assert_eq!(idx.doc_length(0), 3);
    }

    #[test]
    fn empty_text_is_a_noop() {
        let mut idx = InvertedIndex::new();
        idx.add_document(0, "");
        idx.add_document(1, "of the and");
        assert_eq!(idx.doc_count(), 0);
    }

    #[test]
    fn results_are_deterministic() {
        let idx = sample();
        assert_eq!(idx.search("rosebud"), idx.search("rosebud"));
    }

    #[test]
    fn bm25_normalizes_document_length() {
        let mut idx = InvertedIndex::new();
        // Short doc mentions wine once; long doc repeats it among filler.
        idx.add_document(0, "wine cellar");
        idx.add_document(
            1,
            "wine wine wine wine plus lots and lots and lots of filler words \
             about completely unrelated matters stretching the document out \
             considerably beyond reasonable length for ranking purposes",
        );
        // Plain TF-IDF rewards raw repetition...
        let tfidf = idx.search("wine");
        assert_eq!(tfidf[0].0, 1);
        // ...BM25 saturates TF and penalizes length: the compact doc wins.
        let bm25 = idx.search_bm25("wine", 1.2, 0.75);
        assert_eq!(bm25[0].0, 0, "{bm25:?}");
        // Both find both documents.
        assert_eq!(bm25.len(), 2);
        // With b = 0 (no length normalization) repetition wins again.
        let no_norm = idx.search_bm25("wine", 1.2, 0.0);
        assert_eq!(no_norm[0].0, 1, "{no_norm:?}");
    }

    #[test]
    fn bm25_handles_empty_index_and_query() {
        let idx = InvertedIndex::new();
        assert!(idx.search_bm25("wine", 1.2, 0.75).is_empty());
        let idx2 = sample();
        assert!(idx2.search_bm25("", 1.2, 0.75).is_empty());
        assert!(idx2.search_bm25("absentterm", 1.2, 0.75).is_empty());
    }

    #[test]
    fn remove_document_erases_all_traces() {
        let mut idx = sample();
        assert!(idx.remove_document(0));
        assert_eq!(idx.doc_count(), 3);
        assert!(idx.search("kane").is_empty(), "doc 0's unique terms gone");
        // Shared term "rosebud" still finds doc 1.
        let hits = idx.search("rosebud");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 1);
        assert_eq!(idx.doc_length(0), 0);
        // Removing again reports absence.
        assert!(!idx.remove_document(0));
        assert!(!idx.remove_document(99));
    }

    #[test]
    fn remove_document_drops_empty_terms() {
        let mut idx = InvertedIndex::new();
        idx.add_document(0, "unique");
        let terms_before = idx.term_count();
        idx.remove_document(0);
        assert_eq!(idx.term_count(), terms_before - 1);
    }

    #[test]
    fn document_frequency_and_postings() {
        let idx = sample();
        assert_eq!(idx.document_frequency("rosebud"), 2);
        assert_eq!(idx.document_frequency("nonexistent"), 0);
        assert!(idx.postings("nonexistent").is_empty());
    }
}
