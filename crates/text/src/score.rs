//! Ranking functions: TF weighting, IDF, cosine similarity, and
//! term-frequency profiles for query expansion.
//!
//! "Personalizing Web Search performs term frequency analysis on the
//! results of a contextual history search to find terms in user history
//! associated with the search term" (§4). [`TermProfile`] is that analysis.

use std::collections::HashMap;

/// Sub-linear term-frequency weight: `1 + ln(tf)` for `tf ≥ 1`, else 0.
///
/// # Examples
///
/// ```
/// use bp_text::tf_weight;
/// assert_eq!(tf_weight(0), 0.0);
/// assert_eq!(tf_weight(1), 1.0);
/// assert!(tf_weight(10) < 10.0);
/// ```
pub fn tf_weight(tf: u32) -> f64 {
    if tf == 0 {
        0.0
    } else {
        1.0 + (tf as f64).ln()
    }
}

/// Smoothed inverse document frequency: `ln(1 + N / df)`.
///
/// Smoothing keeps the value positive even for terms present in every
/// document, so scores stay comparable on tiny histories.
///
/// # Examples
///
/// ```
/// use bp_text::idf;
/// assert!(idf(100, 1) > idf(100, 50));
/// assert!(idf(10, 10) > 0.0);
/// ```
pub fn idf(total_docs: usize, document_frequency: usize) -> f64 {
    if document_frequency == 0 {
        return 0.0;
    }
    (1.0 + total_docs as f64 / document_frequency as f64).ln()
}

/// Cosine similarity between two sparse term-weight vectors.
///
/// Returns 0.0 when either vector is empty or zero.
pub fn cosine(a: &HashMap<String, f64>, b: &HashMap<String, f64>) -> f64 {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let dot: f64 = small
        .iter()
        .filter_map(|(t, &w)| large.get(t).map(|&v| w * v))
        .sum();
    let na: f64 = a.values().map(|w| w * w).sum::<f64>().sqrt();
    let nb: f64 = b.values().map(|w| w * w).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// A weighted bag of (stemmed) terms accumulated from weighted documents.
///
/// Used by personalized web search: documents in the contextual
/// neighborhood of the query contribute their terms, weighted by their
/// contextual relevance; the profile's top terms — minus the query's own —
/// become client-side expansion terms.
///
/// # Examples
///
/// ```
/// use bp_text::TermProfile;
/// let mut p = TermProfile::new();
/// p.add_text("rosebud flowers gardening", 1.0);
/// p.add_text("flowers spring", 0.5);
/// let top = p.top_terms(1, &["rosebud".into()]);
/// assert_eq!(top[0].0, "flower");
/// ```
#[derive(Debug, Clone, Default)]
pub struct TermProfile {
    weights: HashMap<String, f64>,
}

impl TermProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds every significant term of `text`, each weighted by `weight`.
    pub fn add_text(&mut self, text: &str, weight: f64) {
        for token in crate::tokenize::significant_tokens(text) {
            *self.weights.entry(crate::stem::stem(&token)).or_insert(0.0) += weight;
        }
    }

    /// Adds one already-stemmed term with an explicit weight.
    pub fn add_term(&mut self, term: impl Into<String>, weight: f64) {
        *self.weights.entry(term.into()).or_insert(0.0) += weight;
    }

    /// Total weight of a stemmed term.
    pub fn weight_of(&self, term: &str) -> f64 {
        self.weights.get(term).copied().unwrap_or(0.0)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` if no terms have been added.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The `k` heaviest terms, excluding any whose stem appears in
    /// `exclude` (callers pass the original query terms). Deterministic:
    /// ties break lexicographically.
    pub fn top_terms(&self, k: usize, exclude: &[String]) -> Vec<(String, f64)> {
        let excluded: Vec<String> = exclude.iter().map(|t| crate::stem::stem(t)).collect();
        let mut v: Vec<(String, f64)> = self
            .weights
            .iter()
            .filter(|(t, _)| !excluded.contains(t))
            .map(|(t, &w)| (t.clone(), w))
            .collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        v.truncate(k);
        v
    }

    /// Immutable view of the sparse vector (for cosine comparisons).
    pub fn as_map(&self) -> &HashMap<String, f64> {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tf_weight_is_sublinear_and_monotone() {
        assert_eq!(tf_weight(0), 0.0);
        assert_eq!(tf_weight(1), 1.0);
        assert!(tf_weight(2) > tf_weight(1));
        assert!(tf_weight(101) - tf_weight(100) < tf_weight(2) - tf_weight(1));
    }

    #[test]
    fn idf_prefers_rare_terms() {
        assert!(idf(1000, 1) > idf(1000, 100));
        assert_eq!(idf(1000, 0), 0.0);
        assert!(idf(5, 5) > 0.0, "smoothing keeps ubiquitous terms positive");
    }

    #[test]
    fn cosine_identical_vectors_is_one() {
        let mut a = HashMap::new();
        a.insert("wine".to_owned(), 2.0);
        a.insert("tasting".to_owned(), 1.0);
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_disjoint_vectors_is_zero() {
        let mut a = HashMap::new();
        a.insert("wine".to_owned(), 1.0);
        let mut b = HashMap::new();
        b.insert("plane".to_owned(), 1.0);
        assert_eq!(cosine(&a, &b), 0.0);
        assert_eq!(cosine(&a, &HashMap::new()), 0.0);
    }

    #[test]
    fn cosine_is_symmetric() {
        let mut a = HashMap::new();
        a.insert("x".to_owned(), 1.0);
        a.insert("y".to_owned(), 2.0);
        let mut b = HashMap::new();
        b.insert("y".to_owned(), 3.0);
        b.insert("z".to_owned(), 1.0);
        assert!((cosine(&a, &b) - cosine(&b, &a)).abs() < 1e-15);
    }

    #[test]
    fn profile_accumulates_weighted_text() {
        let mut p = TermProfile::new();
        p.add_text("flower garden", 1.0);
        p.add_text("flower", 0.5);
        assert!((p.weight_of("flower") - 1.5).abs() < 1e-12);
        assert!((p.weight_of("garden") - 1.0).abs() < 1e-12);
        assert_eq!(p.weight_of("absent"), 0.0);
    }

    #[test]
    fn top_terms_excludes_query_stems() {
        let mut p = TermProfile::new();
        p.add_text("rosebud rosebud flowers", 1.0);
        let top = p.top_terms(5, &["rosebuds".to_owned()]);
        assert!(
            top.iter().all(|(t, _)| t != "rosebud"),
            "query stem excluded"
        );
        assert_eq!(top[0].0, "flower");
    }

    #[test]
    fn top_terms_truncates_and_orders() {
        let mut p = TermProfile::new();
        p.add_term("a", 3.0);
        p.add_term("b", 2.0);
        p.add_term("c", 1.0);
        let top = p.top_terms(2, &[]);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, "a");
        assert_eq!(top[1].0, "b");
    }

    #[test]
    fn ties_break_lexicographically() {
        let mut p = TermProfile::new();
        p.add_term("zeta", 1.0);
        p.add_term("alpha", 1.0);
        let top = p.top_terms(2, &[]);
        assert_eq!(top[0].0, "alpha");
    }

    #[test]
    fn stopword_scaffolding_never_enters_profiles() {
        let mut p = TermProfile::new();
        p.add_text("http://www.example.com/index.html wine", 1.0);
        assert_eq!(p.len(), 1, "only 'wine' survives: {:?}", p.as_map());
        assert!(p.weight_of("wine") > 0.0);
    }
}
