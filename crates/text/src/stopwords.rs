//! English + web-navigation stopwords.
//!
//! Besides the usual English function words, history text is saturated with
//! URL scaffolding ("http", "www", "com", "html") that carries no retrieval
//! signal; filtering it keeps term-frequency analysis (§4, "Personalizing
//! Web Search") focused on the user's actual vocabulary.

/// Sorted list of stopwords; binary-searched by [`is_stopword`].
static STOPWORDS: &[&str] = &[
    "about", "after", "all", "also", "and", "any", "are", "because", "been", "before", "but",
    "can", "com", "could", "did", "does", "example", "for", "from", "had", "has", "have", "her",
    "here", "him", "his", "how", "htm", "html", "http", "https", "index", "into", "its", "just",
    "more", "most", "net", "not", "now", "off", "only", "org", "other", "our", "out", "over",
    "page", "php", "she", "should", "site", "some", "such", "than", "that", "the", "their", "them",
    "then", "there", "these", "they", "this", "those", "through", "under", "very", "was", "were",
    "what", "when", "where", "which", "while", "who", "why", "will", "with", "would", "www", "you",
    "your",
];

/// Returns `true` if `token` (already lowercased) is a stopword.
///
/// # Examples
///
/// ```
/// use bp_text::is_stopword;
/// assert!(is_stopword("the"));
/// assert!(is_stopword("http"));
/// assert!(!is_stopword("rosebud"));
/// ```
pub fn is_stopword(token: &str) -> bool {
    STOPWORDS.binary_search(&token).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_deduped() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted, STOPWORDS,
            "STOPWORDS must stay sorted for binary search"
        );
    }

    #[test]
    fn common_words_are_stopwords() {
        for w in ["the", "and", "with", "http", "www", "com", "html"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_are_not() {
        for w in ["rosebud", "wine", "flower", "kane", "gardening"] {
            assert!(!is_stopword(w), "{w} should not be a stopword");
        }
    }

    #[test]
    fn case_sensitive_by_contract() {
        // Callers lowercase first; uppercase input is simply not found.
        assert!(!is_stopword("The"));
    }
}
