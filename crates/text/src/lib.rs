//! # bp-text — textual retrieval substrate for browser provenance
//!
//! The paper's contextual algorithms start from a plain *textual* search
//! ("the algorithm performs a textual search and then reorders results by
//! the relevance of their provenance neighbors", §2.1 citing Shah et al.)
//! and its personalization runs "term frequency analysis" over contextual
//! results (§4). This crate provides those textual pieces, built from
//! scratch:
//!
//! - [`tokenize`] / [`significant_tokens`] — URL-aware tokenization;
//! - [`is_stopword`] — English + web-scaffolding stopwords;
//! - [`stem`] — a light inflectional stemmer;
//! - [`InvertedIndex`] — an incremental inverted index with TF-IDF search;
//! - [`TermProfile`], [`tf_weight`], [`idf`], [`cosine`] — scoring and the
//!   term-frequency profiles used for client-side query expansion.
//!
//! # Example
//!
//! ```
//! use bp_text::InvertedIndex;
//! let mut idx = InvertedIndex::new();
//! idx.add_document(0, "Citizen Kane rosebud http://films.example/kane");
//! let hits = idx.search("rosebud");
//! assert_eq!(hits[0].0, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod index;
mod score;
mod stem;
mod stopwords;
mod tokenize;

pub use index::{DocId, InvertedIndex, Posting};
pub use score::{cosine, idf, tf_weight, TermProfile};
pub use stem::stem;
pub use stopwords::is_stopword;
pub use tokenize::{significant_tokens, tokenize};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Tokenization output is always lowercase alphanumeric.
        #[test]
        fn tokens_are_lowercase_alphanumeric(text in ".{0,200}") {
            for token in tokenize(&text) {
                prop_assert!(!token.is_empty());
                prop_assert!(token.chars().all(|c| c.is_alphanumeric()));
                prop_assert_eq!(token.to_lowercase(), token.clone());
            }
        }

        /// Tokenizing is insensitive to surrounding separators.
        #[test]
        fn separator_padding_is_irrelevant(word in "[a-z]{1,12}") {
            let padded = format!("  ,{word}! ");
            prop_assert_eq!(tokenize(&padded), tokenize(&word));
        }

        /// Stemming stabilizes: applying it twice equals applying it three
        /// times.
        #[test]
        fn stemming_contracts_and_stabilizes(word in "[a-z]{1,16}") {
            let s1 = stem(&word);
            prop_assert!(s1.len() <= word.len() + 2);
            let s2 = stem(&s1);
            let s3 = stem(&s2);
            prop_assert_eq!(s2, s3);
        }

        /// Every indexed significant term is findable again by search.
        #[test]
        fn indexed_terms_are_searchable(words in prop::collection::vec("[a-z]{3,10}", 1..20)) {
            let mut idx = InvertedIndex::new();
            let text = words.join(" ");
            idx.add_document(7, &text);
            for w in &words {
                if is_stopword(w) {
                    continue;
                }
                let hits = idx.search(w);
                prop_assert!(
                    hits.iter().any(|(d, _)| *d == 7),
                    "word {} indexed under doc 7 must be found", w
                );
            }
        }

        /// Search scores are positive and sorted descending.
        #[test]
        fn search_scores_sorted(words in prop::collection::vec("[a-z]{3,10}", 1..30)) {
            let mut idx = InvertedIndex::new();
            for (i, w) in words.iter().enumerate() {
                idx.add_document(i as u32, w);
            }
            let hits = idx.search(&words.join(" "));
            for pair in hits.windows(2) {
                prop_assert!(pair[0].1 >= pair[1].1);
            }
            for (_, s) in hits {
                prop_assert!(s > 0.0);
            }
        }

        /// Cosine similarity stays within [0, 1] for nonnegative vectors.
        #[test]
        fn cosine_bounded(pairs in prop::collection::vec(("[a-z]{1,6}", 0.0f64..10.0), 0..20),
                          pairs2 in prop::collection::vec(("[a-z]{1,6}", 0.0f64..10.0), 0..20)) {
            let a: std::collections::HashMap<String, f64> = pairs.into_iter().collect();
            let b: std::collections::HashMap<String, f64> = pairs2.into_iter().collect();
            let c = cosine(&a, &b);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&c));
        }
    }
}
