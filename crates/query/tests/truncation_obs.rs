//! Deadline-truncation observability, one test per query path.
//!
//! Each test drives a query into truncation with a mock clock (auto-tick:
//! every clock reading advances time, so deadlines expire deterministically
//! without sleeps) and asserts both observability channels report it:
//! the trace span tree carries a truncation note, and the EXPLAIN
//! [`bp_obs::profile::Profile`] carries the truncation stage and a
//! remaining-work estimate.

use bp_core::{BrowserEvent, CaptureConfig, EventKind, NavigationCause, ProvenanceBrowser, TabId};
use bp_graph::traverse::Budget;
use bp_graph::Timestamp;
use bp_obs::profile::Profile;
use bp_obs::trace::SpanNode;
use bp_obs::{profile, trace, ClockHandle, MockClock};
use bp_query::{
    describe_origin, find_download, first_recognizable_ancestor, personalize_query,
    textual_history_search, time_contextual_search, ContextualConfig, DescribeConfig,
    LineageConfig, PersonalizeConfig, TimeContextConfig,
};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

struct TempBrowser {
    browser: ProvenanceBrowser,
    dir: PathBuf,
}
impl TempBrowser {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "bp-trunc-obs-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempBrowser {
            browser: ProvenanceBrowser::open(&dir, CaptureConfig::default()).unwrap(),
            dir,
        }
    }
}
impl Drop for TempBrowser {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn t(s: i64) -> Timestamp {
    Timestamp::from_secs(s)
}

/// A small history every path can query: a rosebud search chain, a wine +
/// plane-tickets overlap, and a download chain.
fn history(tag: &str) -> TempBrowser {
    let mut tb = TempBrowser::new(tag);
    let b = &mut tb.browser;
    b.ingest(&BrowserEvent::tab_opened(t(0), TabId(0), None))
        .unwrap();
    b.ingest(&BrowserEvent::navigate(
        t(1),
        TabId(0),
        "http://se/?q=rosebud",
        Some("rosebud - Search"),
        NavigationCause::SearchQuery {
            query: "rosebud".to_owned(),
        },
    ))
    .unwrap();
    b.ingest(&BrowserEvent::navigate(
        t(2),
        TabId(0),
        "http://films/kane",
        Some("Citizen Kane rosebud wine"),
        NavigationCause::Link,
    ))
    .unwrap();
    b.ingest(&BrowserEvent::navigate(
        t(3),
        TabId(0),
        "http://travel/plane-tickets",
        Some("cheap plane tickets"),
        NavigationCause::Typed,
    ))
    .unwrap();
    b.ingest(&BrowserEvent::new(
        t(4),
        EventKind::Download {
            tab: TabId(0),
            path: "/dl/thing.bin".to_owned(),
            bytes: 1,
        },
    ))
    .unwrap();
    tb
}

/// Serializes tests (the profile/trace enable flags are process-global)
/// and collects both channels.
fn with_obs<R>(f: impl FnOnce() -> R) -> (R, Vec<Profile>, Vec<SpanNode>) {
    static GATE: Mutex<()> = Mutex::new(());
    let _lock = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let _ = profile::take();
    let _ = trace::take_roots();
    profile::set_enabled(true);
    trace::set_enabled(true);
    let out = f();
    trace::set_enabled(false);
    profile::set_enabled(false);
    (out, profile::take(), trace::take_roots())
}

/// A ticking mock clock: deadlines measured against it expire after a few
/// readings.
fn ticking(us_per_read: u64) -> (ClockHandle, Arc<MockClock>) {
    let (clock, mock) = ClockHandle::mock();
    mock.set_auto_tick_micros(us_per_read);
    (clock, mock)
}

/// Collects every note in a span tree (depth-first).
fn notes(span: &SpanNode, out: &mut Vec<String>) {
    if let Some(n) = &span.note {
        out.push(n.clone());
    }
    for child in &span.children {
        notes(child, out);
    }
}

fn all_notes(roots: &[SpanNode]) -> Vec<String> {
    let mut out = Vec::new();
    for r in roots {
        notes(r, &mut out);
    }
    out
}

/// Asserts the two channels agree: the profile truncated at `stage` with a
/// remaining-work estimate, and some span carries a truncation note.
fn assert_truncation(profiles: &[Profile], roots: &[SpanNode], stage: &str) {
    assert_eq!(profiles.len(), 1, "one root profile per query");
    let p = &profiles[0];
    assert!(p.truncated, "profile must record truncation");
    assert_eq!(p.truncation_stage, Some(stage), "truncation stage");
    let remaining = p
        .remaining_estimate
        .expect("profile carries a remaining-work estimate");
    let ns = all_notes(roots);
    let note = ns
        .iter()
        .find(|n| n.contains("truncated"))
        .unwrap_or_else(|| panic!("some span must carry a truncation note, got {ns:?}"));
    assert!(
        note.contains(&format!("~{remaining}")),
        "span note {note:?} must carry the same estimate (~{remaining})"
    );
}

#[test]
fn context_truncation_is_observable() {
    let tb = history("context");
    let (clock, _mock) = ticking(50);
    let config = ContextualConfig {
        budget: Budget::new()
            .with_deadline(Duration::ZERO)
            .with_clock(clock.clone()),
        clock,
        ..ContextualConfig::default()
    };
    let (result, profiles, roots) =
        with_obs(|| bp_query::contextual_history_search(&tb.browser, "rosebud", &config));
    assert!(result.truncated);
    // The ticking clock expires the zero deadline at the expansion's first
    // check, before the blend loop ever runs.
    assert_truncation(&profiles, &roots, "expand");
    assert!(profiles[0].remaining_estimate.unwrap() > 0);
    assert_eq!(profiles[0].budget_us, Some(0));
}

#[test]
fn ppr_truncation_is_observable() {
    let tb = history("ppr");
    let (clock, _mock) = ticking(50);
    // No budget clock: PPR itself runs to a fixed point; only the blend
    // loop's deadline (measured on the query clock) trips.
    let config = ContextualConfig {
        budget: Budget::new().with_deadline(Duration::ZERO),
        clock,
        ..ContextualConfig::default()
    };
    let (result, profiles, roots) = with_obs(|| {
        bp_query::contextual_history_search_ppr(
            &tb.browser,
            "rosebud",
            &config,
            &bp_graph::pagerank::PageRankConfig::default(),
        )
    });
    assert!(result.truncated);
    assert_truncation(&profiles, &roots, "blend");
}

#[test]
fn textual_baseline_never_truncates() {
    let tb = history("textual");
    let (clock, _mock) = ticking(50);
    // Even with a deadline configured, the baseline runs unbounded — that
    // is its documented contract; the profile reflects it.
    let config = ContextualConfig {
        budget: Budget::new().with_deadline(Duration::ZERO),
        clock,
        ..ContextualConfig::default()
    };
    let (result, profiles, _roots) =
        with_obs(|| textual_history_search(&tb.browser, "rosebud", &config));
    assert!(!result.truncated);
    assert_eq!(profiles.len(), 1);
    let p = &profiles[0];
    assert!(!p.truncated);
    assert_eq!(p.truncation_stage, None);
    assert_eq!(p.budget_us, None, "the baseline is unbounded by design");
    let stages: Vec<&str> = p.stages.iter().map(|s| s.name).collect();
    assert_eq!(stages, vec!["text_search", "rank"]);
}

#[test]
fn personalize_truncation_is_observable() {
    let tb = history("personalize");
    let (clock, _mock) = ticking(50);
    let config = PersonalizeConfig {
        contextual: ContextualConfig {
            budget: Budget::new()
                .with_deadline(Duration::ZERO)
                .with_clock(clock.clone()),
            clock,
            ..ContextualConfig::default()
        },
        ..PersonalizeConfig::default()
    };
    let ((), profiles, roots) = with_obs(|| {
        let _ = personalize_query(&tb.browser, "rosebud", &config);
    });
    // The inner contextual search is the stage that hit its budget; its
    // own profile attaches as a child with the precise cut point.
    assert_truncation(&profiles, &roots, "contextual");
    let p = &profiles[0];
    assert_eq!(p.children.len(), 1, "inner contextual profile is a child");
    assert_eq!(p.children[0].query, "context");
    assert!(p.children[0].truncated);
    assert_eq!(p.children[0].truncation_stage, Some("expand"));
}

#[test]
fn timectx_truncation_is_observable() {
    let tb = history("timectx");
    let (clock, _mock) = ticking(50);
    let config = TimeContextConfig {
        budget: Budget::new().with_deadline(Duration::ZERO),
        clock,
        ..TimeContextConfig::default()
    };
    let (result, profiles, roots) =
        with_obs(|| time_contextual_search(&tb.browser, "wine", "plane tickets", &config));
    assert!(result.truncated);
    assert_truncation(&profiles, &roots, "associate");
    // Every subject hit was left unchecked: the estimate covers them all.
    assert!(profiles[0].remaining_estimate.unwrap() > 0);
}

#[test]
fn lineage_truncation_is_observable() {
    let tb = history("lineage");
    let (clock, _mock) = ticking(50);
    let dl = find_download(&tb.browser, "/dl/thing.bin").unwrap();
    let config = LineageConfig {
        budget: Budget::new()
            .with_deadline(Duration::ZERO)
            .with_clock(clock.clone()),
        clock,
        ..LineageConfig::default()
    };
    let (answer, profiles, roots) =
        with_obs(|| first_recognizable_ancestor(&tb.browser, dl, &config));
    assert!(answer.is_none(), "nothing reachable under a zero budget");
    assert_truncation(&profiles, &roots, "ancestor_bfs");
    assert!(profiles[0].remaining_estimate.unwrap() > 0);
}

#[test]
fn describe_truncation_is_observable() {
    let tb = history("describe");
    let (clock, _mock) = ticking(50);
    let config = DescribeConfig {
        budget: Budget::new().with_deadline(Duration::ZERO),
        clock,
        ..DescribeConfig::default()
    };
    let (story, profiles, roots) =
        with_obs(|| describe_origin(&tb.browser, "/dl/thing.bin", &config));
    let story = story.expect("the key resolves even when narration truncates");
    assert!(story.contains("(chain continues)"), "{story}");
    assert_truncation(&profiles, &roots, "narrate");
    // Nothing was narrated, so the whole step budget remains.
    assert_eq!(
        profiles[0].remaining_estimate,
        Some(config.max_steps as u64)
    );
}
