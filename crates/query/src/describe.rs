//! Provenance narratives: "Where did all this stuff come from?"
//!
//! The paper opens with the two questions file systems taught users to
//! ask: "Where did my stuff go?" and "Where did all this stuff come
//! from?" (§1). [`describe_origin`] answers the second one in prose: given
//! any history object, it walks the derivation chain and renders each hop
//! as the user action that caused it — the §2.4 "sequence of actions"
//! made readable.

use bp_core::ProvenanceBrowser;
use bp_graph::traverse::Budget;
use bp_graph::{EdgeId, EdgeKind, NodeId, NodeKind};
use bp_obs::profile::{self, QueryPlan};
use bp_obs::{trace, ClockHandle};
use std::fmt::Write as _;

/// EXPLAIN plan for [`describe_origin`].
static DESCRIBE_PLAN: QueryPlan = QueryPlan {
    query: "describe",
    stages: &["resolve", "narrate"],
};

/// Options for [`describe_origin`].
#[derive(Debug, Clone)]
pub struct DescribeConfig {
    /// Maximum hops narrated.
    pub max_steps: usize,
    /// Traversal budget (its deadline bounds the narration walk).
    pub budget: Budget,
    /// Time source for the reported latency (mockable in tests).
    pub clock: ClockHandle,
}

impl Default for DescribeConfig {
    fn default() -> Self {
        DescribeConfig {
            max_steps: 12,
            budget: Budget::new(),
            clock: ClockHandle::real(),
        }
    }
}

/// Human verb for an edge kind, phrased from effect to cause.
fn verb(kind: EdgeKind) -> &'static str {
    match kind {
        EdgeKind::Link => "reached by clicking a link on",
        EdgeKind::TypedLocation => "reached by typing its address while on",
        EdgeKind::BookmarkClick => "opened from the bookmark",
        EdgeKind::Redirect => "reached via a redirect from",
        EdgeKind::Embed => "loaded as embedded content of",
        EdgeKind::FormSubmit => "produced by submitting the form",
        EdgeKind::SearchResult => "found through the web search",
        EdgeKind::DownloadFrom => "downloaded from",
        EdgeKind::NewTab => "opened in a new tab from",
        EdgeKind::Reload => "a reload of",
        EdgeKind::BackForward => "revisited (back/forward) from",
        EdgeKind::VersionOf => "a later visit of",
        EdgeKind::InstanceOf => "a visit of the page",
        EdgeKind::TemporalOverlap => "open at the same time as",
        EdgeKind::BookmarkCreated => "bookmarked while viewing",
    }
}

fn label(browser: &ProvenanceBrowser, node: NodeId) -> String {
    match browser.graph().node(node) {
        Ok(n) => {
            let what = match n.kind() {
                NodeKind::SearchTerm => format!("the search \"{}\"", n.key()),
                NodeKind::Download => format!("the file {}", n.key()),
                NodeKind::Bookmark => format!("the bookmark for {}", n.key()),
                NodeKind::FormEntry => format!("the form entry ({})", n.key()),
                NodeKind::Tab => "a new tab".to_owned(),
                _ => n.key().to_owned(),
            };
            match n.attrs().get_str("title") {
                Some(title) => format!("{what} (\"{title}\")"),
                None => what,
            }
        }
        Err(_) => node.to_string(),
    }
}

/// Picks the most narratively useful derivation edge of a node: user
/// actions outrank automatic bookkeeping, and temporal overlap is never a
/// derivation.
///
/// A hub node's in-degree is unbounded (a page revisited thousands of
/// times has that many parent edges), so the scan is deadline-checked and
/// returns the best edge found so far when time runs out.
fn narrative_parent(
    browser: &ProvenanceBrowser,
    node: NodeId,
    deadline: &crate::slo::Deadline,
) -> Option<(EdgeId, NodeId, EdgeKind)> {
    let graph = browser.graph();
    let mut best: Option<(EdgeId, NodeId, EdgeKind)> = None;
    for (eid, parent) in graph.parents(node) {
        if deadline.expired() {
            break;
        }
        let kind = graph.edge(eid).ok()?.kind();
        if !kind.is_causal() {
            continue;
        }
        let rank = |k: EdgeKind| match k {
            k if k.is_user_action() => 0,
            EdgeKind::Redirect | EdgeKind::Embed => 1,
            EdgeKind::VersionOf => 3,
            _ => 2,
        };
        match &best {
            Some((_, _, current)) if rank(*current) <= rank(kind) => {}
            _ => best = Some((eid, parent, kind)),
        }
    }
    best
}

/// Narrates how the newest object with `key` came to be, one line per
/// derivation hop, oldest cause last.
///
/// Returns `None` if nothing in history carries `key`.
pub fn describe_origin(
    browser: &ProvenanceBrowser,
    key: &str,
    config: &DescribeConfig,
) -> Option<String> {
    let _ctx = trace::ensure(&config.clock);
    let span = trace::span("query.describe");
    let prof = profile::begin(&DESCRIBE_PLAN, &config.clock, config.budget.deadline());
    let deadline = crate::slo::Deadline::start(&config.clock, config.budget.deadline());
    let resolved = {
        let pstage = profile::stage("resolve");
        let found = browser.store().keys().get(key).last().copied();
        pstage.rows(1, usize::from(found.is_some()));
        found
    };
    let Some(start) = resolved else {
        let elapsed = deadline.elapsed();
        span.finish_with(elapsed);
        prof.finish_with(elapsed);
        return None;
    };
    let pstage = profile::stage("narrate");
    let mut out = String::new();
    let _ = writeln!(out, "{}", label(browser, start));
    let mut current = start;
    let mut steps = 0;
    let mut bounded = false;
    while steps < config.max_steps {
        if deadline.expired() {
            bounded = true;
            let remaining = (config.max_steps - steps) as u64;
            pstage.truncated(remaining);
            trace::note(format!(
                "truncated: deadline hit, ~{remaining} hops unnarrated"
            ));
            break;
        }
        let Some((_, parent, kind)) = narrative_parent(browser, current, &deadline) else {
            break;
        };
        // Skip the instance_of hop's page object in the narrative: the
        // chain continues from the visit's real cause if one exists.
        let _ = writeln!(out, "  … {} {}", verb(kind), label(browser, parent));
        current = parent;
        steps += 1;
    }
    // When the deadline bounded the walk we already know hops went
    // unnarrated (and the expired deadline would cut the re-scan short
    // anyway); only the step-cap case needs to probe for a further parent.
    if bounded
        || (steps == config.max_steps && narrative_parent(browser, current, &deadline).is_some())
    {
        let _ = writeln!(out, "  … (chain continues)");
    }
    pstage.rows(1, steps);
    pstage.touched(steps + 1, steps);
    drop(pstage);
    let elapsed = deadline.elapsed();
    crate::slo::observe(
        browser.obs(),
        "describe",
        "query.describe.latency_us",
        elapsed,
        deadline.budget(),
        bounded,
    );
    span.finish_with(elapsed);
    prof.finish_with(elapsed);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::{BrowserEvent, CaptureConfig, EventKind, NavigationCause, TabId};
    use bp_graph::Timestamp;
    use std::path::PathBuf;

    struct TempBrowser {
        browser: ProvenanceBrowser,
        dir: PathBuf,
    }
    impl TempBrowser {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "bp-query-desc-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            TempBrowser {
                browser: ProvenanceBrowser::open(&dir, CaptureConfig::default()).unwrap(),
                dir,
            }
        }
    }
    impl Drop for TempBrowser {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }

    fn t(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn narrates_a_download_chain() {
        let mut tb = TempBrowser::new("chain");
        let b = &mut tb.browser;
        b.ingest(&BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        b.ingest(&BrowserEvent::navigate(
            t(1),
            TabId(0),
            "http://se/?q=codec",
            Some("codec — search"),
            NavigationCause::SearchQuery {
                query: "codec".to_owned(),
            },
        ))
        .unwrap();
        b.ingest(&BrowserEvent::navigate(
            t(2),
            TabId(0),
            "http://host/get",
            Some("Free Codecs"),
            NavigationCause::Link,
        ))
        .unwrap();
        b.ingest(&BrowserEvent::new(
            t(3),
            EventKind::Download {
                tab: TabId(0),
                path: "/dl/codec.exe".to_owned(),
                bytes: 1,
            },
        ))
        .unwrap();

        let story = describe_origin(&tb.browser, "/dl/codec.exe", &DescribeConfig::default())
            .expect("the download is in history");
        assert!(story.starts_with("the file /dl/codec.exe"), "{story}");
        assert!(story.contains("downloaded from"), "{story}");
        assert!(story.contains("http://host/get"), "{story}");
        assert!(story.contains("clicking a link on"), "{story}");
        assert!(story.contains("found through the web search"), "{story}");
        assert!(story.contains("the search \"codec\""), "{story}");
    }

    #[test]
    fn unknown_keys_yield_none() {
        let tb = TempBrowser::new("none");
        assert!(describe_origin(&tb.browser, "/nope", &DescribeConfig::default()).is_none());
    }

    #[test]
    fn step_cap_truncates_with_a_marker() {
        let mut tb = TempBrowser::new("cap");
        let b = &mut tb.browser;
        b.ingest(&BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        for i in 0..20 {
            b.ingest(&BrowserEvent::navigate(
                t(i + 1),
                TabId(0),
                format!("http://p{i}/"),
                None,
                NavigationCause::Link,
            ))
            .unwrap();
        }
        let config = DescribeConfig {
            max_steps: 3,
            ..DescribeConfig::default()
        };
        let story = describe_origin(&tb.browser, "http://p19/", &config).unwrap();
        assert!(story.contains("(chain continues)"), "{story}");
        assert_eq!(story.lines().count(), 1 + 3 + 1);
    }

    #[test]
    fn user_actions_outrank_bookkeeping_in_the_narrative() {
        let mut tb = TempBrowser::new("rank");
        let b = &mut tb.browser;
        b.ingest(&BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        b.ingest(&BrowserEvent::navigate(
            t(1),
            TabId(0),
            "http://a/",
            None,
            NavigationCause::Typed,
        ))
        .unwrap();
        b.ingest(&BrowserEvent::navigate(
            t(2),
            TabId(0),
            "http://b/",
            None,
            NavigationCause::Link,
        ))
        .unwrap();
        // The b-visit has both instance_of (page object) and Link parents;
        // the narrative must choose the Link.
        let story = describe_origin(&tb.browser, "http://b/", &DescribeConfig::default()).unwrap();
        let first_hop = story.lines().nth(1).unwrap();
        assert!(first_hop.contains("clicking a link on"), "{story}");
    }
}
