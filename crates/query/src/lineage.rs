//! §2.4 — Download lineage.
//!
//! "What the user really wants is, starting from a known location, the
//! sequence of actions that resulted in the download — that is, the
//! lineage of the download. In a provenance-aware browser, the solution is
//! a path query: 'Find the first ancestor of this file that the user is
//! likely to recognize.'" And the mirror query: "'Find all descendants of
//! this page that are downloads.'" Both are here, as "a breadth-first
//! search over a node's ancestors" (§4) and its reverse.

use bp_core::ProvenanceBrowser;
use bp_graph::traverse::{self, Budget, Direction, Path};
use bp_graph::{NodeId, NodeKind};
use bp_obs::profile::{self, QueryPlan};
use bp_obs::{trace, ClockHandle};
use std::time::Duration;

/// EXPLAIN plan for [`first_recognizable_ancestor`].
static LINEAGE_PLAN: QueryPlan = QueryPlan {
    query: "lineage",
    stages: &["ancestor_bfs"],
};

/// Tuning for lineage queries.
#[derive(Debug, Clone)]
pub struct LineageConfig {
    /// Visit count at or above which a page counts as "likely to
    /// recognize" (§2.4 suggests defining recognizability "in terms of
    /// history, e.g., the number of visits").
    pub recognizable_visits: u32,
    /// Traversal budget.
    pub budget: Budget,
    /// Time source for the reported latency (mockable in tests).
    pub clock: ClockHandle,
}

impl Default for LineageConfig {
    fn default() -> Self {
        LineageConfig {
            recognizable_visits: 3,
            budget: Budget::new(),
            clock: ClockHandle::real(),
        }
    }
}

/// The answer to a "how did I get this file?" query.
#[derive(Debug, Clone, PartialEq)]
pub struct LineageAnswer {
    /// The recognizable ancestor's node.
    pub ancestor: NodeId,
    /// Its URL.
    pub url: String,
    /// How many times the user had visited it.
    pub visit_count: u32,
    /// The hop-by-hop path from the download back to it.
    pub path: Path,
    /// Wall-clock the query took.
    pub elapsed: Duration,
}

/// Finds the download node for a file path, newest first.
pub fn find_download(browser: &ProvenanceBrowser, path: &str) -> Option<NodeId> {
    browser.store().keys().get(path).last().copied()
}

/// §2.4's path query: the nearest causal ancestor of `download` whose URL
/// the user has visited at least `recognizable_visits` times.
///
/// Returns `None` when nothing in the lineage clears the bar within the
/// budget — the honest answer for a download that arrived out of nowhere.
pub fn first_recognizable_ancestor(
    browser: &ProvenanceBrowser,
    download: NodeId,
    config: &LineageConfig,
) -> Option<LineageAnswer> {
    let _ctx = trace::ensure(&config.clock);
    let span = trace::span("query.lineage");
    let prof = profile::begin(&LINEAGE_PLAN, &config.clock, config.budget.deadline());
    let deadline = crate::slo::Deadline::start(&config.clock, config.budget.deadline());
    let graph = browser.graph();
    let (found, truncated) = {
        let _stage = trace::span("ancestor_bfs");
        let pstage = profile::stage("ancestor_bfs");
        let search = traverse::first_ancestor_where_observed(
            graph,
            download,
            |node| {
                graph.node(node).is_ok_and(|n| {
                    n.kind() == NodeKind::PageVisit
                        && browser.visit_count(n.key()) >= config.recognizable_visits
                })
            },
            &config.budget,
        );
        pstage.touched(search.nodes_touched, search.edges_touched);
        pstage.rows(1, usize::from(search.path.is_some()));
        if search.truncated {
            let remaining = graph.node_count().saturating_sub(search.nodes_touched) as u64;
            pstage.truncated(remaining);
            trace::note(format!(
                "truncated: budget hit, ~{remaining} ancestors unexplored"
            ));
        }
        let found = search.path.and_then(|path| {
            let ancestor = path.target();
            let url = graph.node(ancestor).ok()?.key().to_owned();
            Some((ancestor, url, path))
        });
        (found, search.truncated)
    };
    let elapsed = deadline.elapsed();
    crate::slo::observe(
        browser.obs(),
        "lineage",
        "query.lineage.latency_us",
        elapsed,
        deadline.budget(),
        truncated,
    );
    span.finish_with(elapsed);
    prof.finish_with(elapsed);
    let (ancestor, url, path) = found?;
    Some(LineageAnswer {
        ancestor,
        visit_count: browser.visit_count(&url),
        url,
        path,
        elapsed,
    })
}

/// The full causal lineage of a node (every ancestor, BFS order), with
/// URLs for display. The §2.4 "sequence of actions that resulted in the
/// download".
pub fn full_lineage(
    browser: &ProvenanceBrowser,
    node: NodeId,
    budget: &Budget,
) -> (Vec<(NodeId, String)>, bool) {
    let graph = browser.graph();
    let traversal = traverse::bfs(
        graph,
        node,
        Direction::Ancestors,
        bp_graph::EdgeKind::is_causal,
        budget,
    );
    let out = traversal
        .reached
        .iter()
        .filter_map(|r| {
            graph
                .node(r.node)
                .ok()
                .map(|n| (r.node, n.key().to_owned()))
        })
        .collect();
    (out, traversal.truncated)
}

/// §2.4's descendant query: every download that descends from any visit
/// of `url` — "if the user decides a page is untrusted, she may then want
/// to find all downloads descending from that page and check them for
/// viruses."
pub fn downloads_descending_from(
    browser: &ProvenanceBrowser,
    url: &str,
    budget: &Budget,
) -> Vec<(NodeId, String)> {
    let graph = browser.graph();
    let mut out: Vec<(NodeId, String)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    // Each inner BFS honors the budget, but a URL with many visits runs
    // one BFS per visit — the deadline bounds the whole query, not one
    // walk at a time.
    let deadline = crate::slo::Deadline::start(&ClockHandle::real(), budget.deadline());
    for &start in browser.store().keys().get(url) {
        if deadline.expired() {
            break;
        }
        let traversal = traverse::bfs(
            graph,
            start,
            Direction::Descendants,
            bp_graph::EdgeKind::is_causal,
            budget,
        );
        for r in &traversal.reached {
            if !seen.insert(r.node) {
                continue;
            }
            if let Ok(n) = graph.node(r.node) {
                if n.kind() == NodeKind::Download {
                    out.push((r.node, n.key().to_owned()));
                }
            }
        }
    }
    out.sort_by_key(|a| a.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::{BrowserEvent, CaptureConfig, EventKind, NavigationCause, TabId};
    use bp_graph::Timestamp;
    use std::path::PathBuf;

    struct TempBrowser {
        browser: ProvenanceBrowser,
        dir: PathBuf,
    }
    impl TempBrowser {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "bp-query-lin-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            TempBrowser {
                browser: ProvenanceBrowser::open(&dir, CaptureConfig::default()).unwrap(),
                dir,
            }
        }
    }
    impl Drop for TempBrowser {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }

    fn t(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    /// The §2.4 drive-by: familiar forum (visited 5×) → shortener →
    /// unfamiliar host → malware download; the host later serves another
    /// download.
    fn driveby(tag: &str) -> (TempBrowser, String) {
        let mut tb = TempBrowser::new(tag);
        let b = &mut tb.browser;
        b.ingest(&BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        for i in 0..5 {
            b.ingest(&BrowserEvent::navigate(
                t(1 + i),
                TabId(0),
                "http://forum/",
                Some("Codec Forum"),
                NavigationCause::Typed,
            ))
            .unwrap();
        }
        b.ingest(&BrowserEvent::navigate(
            t(10),
            TabId(0),
            "http://short/x",
            None,
            NavigationCause::Link,
        ))
        .unwrap();
        b.ingest(&BrowserEvent::navigate(
            t(11),
            TabId(0),
            "http://sketchy-host/get",
            Some("FREE CODECS"),
            NavigationCause::Redirect { status: 302 },
        ))
        .unwrap();
        b.ingest(&BrowserEvent::new(
            t(12),
            EventKind::Download {
                tab: TabId(0),
                path: "/dl/malware.exe".to_owned(),
                bytes: 666,
            },
        ))
        .unwrap();
        b.ingest(&BrowserEvent::new(
            t(13),
            EventKind::Download {
                tab: TabId(0),
                path: "/dl/toolbar.exe".to_owned(),
                bytes: 999,
            },
        ))
        .unwrap();
        (tb, "/dl/malware.exe".to_owned())
    }

    #[test]
    fn finds_the_download_node() {
        let (tb, path) = driveby("find");
        assert!(find_download(&tb.browser, &path).is_some());
        assert!(find_download(&tb.browser, "/nope").is_none());
    }

    #[test]
    fn first_recognizable_ancestor_is_the_forum() {
        let (tb, path) = driveby("recognizable");
        let dl = find_download(&tb.browser, &path).unwrap();
        let answer =
            first_recognizable_ancestor(&tb.browser, dl, &LineageConfig::default()).unwrap();
        assert_eq!(answer.url, "http://forum/");
        assert!(answer.visit_count >= 3);
        // The path walks download → host → shortener → forum.
        assert!(answer.path.hops() >= 3);
        assert_eq!(answer.path.nodes.first(), Some(&dl));
    }

    #[test]
    fn unrecognizable_history_returns_none() {
        let (tb, path) = driveby("none");
        let dl = find_download(&tb.browser, &path).unwrap();
        let config = LineageConfig {
            recognizable_visits: 100,
            ..LineageConfig::default()
        };
        assert!(first_recognizable_ancestor(&tb.browser, dl, &config).is_none());
    }

    #[test]
    fn full_lineage_reaches_the_forum() {
        let (tb, path) = driveby("full");
        let dl = find_download(&tb.browser, &path).unwrap();
        let (lineage, truncated) = full_lineage(&tb.browser, dl, &Budget::new());
        assert!(!truncated);
        let urls: Vec<&str> = lineage.iter().map(|(_, u)| u.as_str()).collect();
        assert!(urls.contains(&"http://forum/"));
        assert!(urls.contains(&"http://sketchy-host/get"));
        assert!(urls.contains(&"http://short/x"));
    }

    #[test]
    fn descendants_of_untrusted_page_lists_all_its_downloads() {
        let (tb, _) = driveby("descendants");
        let downloads =
            downloads_descending_from(&tb.browser, "http://sketchy-host/get", &Budget::new());
        let paths: Vec<&str> = downloads.iter().map(|(_, p)| p.as_str()).collect();
        assert_eq!(paths, vec!["/dl/malware.exe", "/dl/toolbar.exe"]);
        // The forum itself also transitively led to them.
        let from_forum = downloads_descending_from(&tb.browser, "http://forum/", &Budget::new());
        assert_eq!(from_forum.len(), 2);
        // An unknown URL yields nothing.
        assert!(downloads_descending_from(&tb.browser, "http://x/", &Budget::new()).is_empty());
    }

    #[test]
    fn budget_bounds_the_walk() {
        let (tb, path) = driveby("budget");
        let dl = find_download(&tb.browser, &path).unwrap();
        let config = LineageConfig {
            budget: Budget::new().with_max_nodes(2),
            ..LineageConfig::default()
        };
        // The forum is >2 nodes away, so the bounded query gives up.
        assert!(first_recognizable_ancestor(&tb.browser, dl, &config).is_none());
        let (lineage, truncated) = full_lineage(&tb.browser, dl, &Budget::new().with_max_nodes(2));
        assert!(truncated);
        assert!(lineage.len() <= 2);
    }
}
