//! §2.4 — Download lineage.
//!
//! "What the user really wants is, starting from a known location, the
//! sequence of actions that resulted in the download — that is, the
//! lineage of the download. In a provenance-aware browser, the solution is
//! a path query: 'Find the first ancestor of this file that the user is
//! likely to recognize.'" And the mirror query: "'Find all descendants of
//! this page that are downloads.'" Both are here, as "a breadth-first
//! search over a node's ancestors" (§4) and its reverse.

use bp_core::ProvenanceBrowser;
use bp_graph::frozen::FrozenGraph;
use bp_graph::traverse::{self, AncestorSearch, Budget, Direction, Path};
use bp_graph::{NodeId, NodeKind, ProvenanceGraph};
use bp_obs::profile::{self, QueryPlan};
use bp_obs::{trace, ClockHandle};
use std::time::Duration;

/// EXPLAIN plan for [`first_recognizable_ancestor`].
static LINEAGE_PLAN: QueryPlan = QueryPlan {
    query: "lineage",
    stages: &["frozen.snapshot", "ancestor_bfs"],
};

/// Tuning for lineage queries.
#[derive(Debug, Clone)]
pub struct LineageConfig {
    /// Visit count at or above which a page counts as "likely to
    /// recognize" (§2.4 suggests defining recognizability "in terms of
    /// history, e.g., the number of visits").
    pub recognizable_visits: u32,
    /// Traversal budget.
    pub budget: Budget,
    /// Time source for the reported latency (mockable in tests).
    pub clock: ClockHandle,
}

impl Default for LineageConfig {
    fn default() -> Self {
        LineageConfig {
            recognizable_visits: 3,
            budget: Budget::new(),
            clock: ClockHandle::real(),
        }
    }
}

/// The answer to a "how did I get this file?" query.
#[derive(Debug, Clone, PartialEq)]
pub struct LineageAnswer {
    /// The recognizable ancestor's node.
    pub ancestor: NodeId,
    /// Its URL.
    pub url: String,
    /// How many times the user had visited it.
    pub visit_count: u32,
    /// The hop-by-hop path from the download back to it.
    pub path: Path,
    /// Wall-clock the query took.
    pub elapsed: Duration,
}

/// Finds the download node for a file path, newest first.
pub fn find_download(browser: &ProvenanceBrowser, path: &str) -> Option<NodeId> {
    browser.store().keys().get(path).last().copied()
}

/// BFS over a [`FrozenGraph`]'s causal out-rows: the CSR twin of
/// [`traverse::first_ancestor_where_observed`], with identical visit
/// order, budget semantics, and work accounting. Walking contiguous CSR
/// rows replaces the live graph's per-hop edge-arena lookups, so the
/// steady-state lineage query stops pointer-chasing.
///
/// Returns `None` — caller must fall back to the live traversal — when
/// the snapshot is stale (`frozen.epoch() != graph.epoch()`) or `start`
/// postdates the snapshot. The live `graph` is only consulted to resolve
/// path [`bp_graph::EdgeId`]s after the walk, which is sound because a
/// matching epoch means both views are the same graph.
pub fn frozen_ancestor_search(
    graph: &ProvenanceGraph,
    frozen: &FrozenGraph,
    start: NodeId,
    mut pred: impl FnMut(NodeId) -> bool,
    budget: &Budget,
) -> Option<AncestorSearch> {
    if frozen.epoch() != graph.epoch() || start.as_usize() >= frozen.node_count() {
        return None;
    }
    let clock = budget.deadline().map(|d| {
        let handle = budget.clock().cloned().unwrap_or_else(ClockHandle::real);
        (handle.start(), d)
    });
    // (node, depth, BFS-predecessor): the predecessor stands in for the
    // live traversal's `via` edge — the discovering edge is recovered
    // from the live graph only for the final path.
    let mut reached: Vec<(u32, usize, Option<u32>)> = Vec::new();
    let mut seen = vec![false; frozen.node_count()];
    let mut queue = std::collections::VecDeque::new();
    seen[start.as_usize()] = true;
    queue.push_back((start.index(), 0usize, None));
    let mut truncated = false;
    // Mirror the live BFS's check order exactly (max_nodes, then
    // deadline, then record, then depth) so both paths truncate at the
    // same node for the same budget.
    while let Some((node, depth, pred_node)) = queue.pop_front() {
        if let Some(max) = budget.max_nodes() {
            if reached.len() >= max {
                truncated = true;
                break;
            }
        }
        if let Some((ref t0, limit)) = clock {
            if t0.elapsed() >= limit {
                truncated = true;
                break;
            }
        }
        reached.push((node, depth, pred_node));
        if let Some(max_depth) = budget.max_depth() {
            if depth >= max_depth {
                continue;
            }
        }
        for (target, kind) in frozen.out_edges_of(node) {
            if !kind.is_causal() {
                continue;
            }
            if !seen[target as usize] {
                seen[target as usize] = true;
                queue.push_back((target, depth + 1, Some(node)));
            }
        }
    }
    let edges_touched = reached.iter().filter(|r| r.2.is_some()).count();
    // "First ancestor" is a proper ancestor: skip the start node.
    let hit = reached
        .iter()
        .skip(1)
        .find(|&&(node, _, _)| pred(NodeId::new(node)))
        .map(|&(node, _, _)| node);
    let path = hit.map(|target| {
        let pred_of: std::collections::HashMap<u32, Option<u32>> =
            reached.iter().map(|&(n, _, p)| (n, p)).collect();
        let mut nodes = vec![NodeId::new(target)];
        let mut edges = Vec::new();
        let mut cur = target;
        while let Some(Some(p)) = pred_of.get(&cur).copied() {
            // The BFS discovered `cur` from `p` through p's first causal
            // out-edge targeting it — recover that edge id from the live
            // graph's identically-ordered adjacency.
            let eid = graph
                .out_edges(NodeId::new(p))
                .iter()
                .copied()
                .find(|&eid| {
                    graph
                        .edge(eid)
                        .is_ok_and(|e| e.kind().is_causal() && e.dst() == NodeId::new(cur))
                });
            match eid {
                Some(eid) => edges.push(eid),
                // Epochs matched, so every discovered hop exists live;
                // stop rebuilding rather than abort.
                None => break,
            }
            nodes.push(NodeId::new(p));
            cur = p;
        }
        nodes.reverse();
        edges.reverse();
        Path { nodes, edges }
    });
    Some(AncestorSearch {
        path,
        nodes_touched: reached.len(),
        edges_touched,
        truncated,
    })
}

/// §2.4's path query: the nearest causal ancestor of `download` whose URL
/// the user has visited at least `recognizable_visits` times.
///
/// The walk runs over the browser's [`FrozenGraph`] CSR snapshot when one
/// is current, falling back to the live-graph traversal otherwise; both
/// produce identical answers (see [`frozen_ancestor_search`]).
///
/// Returns `None` when nothing in the lineage clears the bar within the
/// budget — the honest answer for a download that arrived out of nowhere.
pub fn first_recognizable_ancestor(
    browser: &ProvenanceBrowser,
    download: NodeId,
    config: &LineageConfig,
) -> Option<LineageAnswer> {
    let _ctx = trace::ensure(&config.clock);
    let span = trace::span("query.lineage");
    let prof = profile::begin(&LINEAGE_PLAN, &config.clock, config.budget.deadline());
    let deadline = crate::slo::Deadline::start(&config.clock, config.budget.deadline());
    let graph = browser.graph();
    let frozen = {
        let fstage = profile::stage("frozen.snapshot");
        let frozen = browser.frozen();
        fstage.touched(frozen.node_count(), frozen.edge_count());
        frozen
    };
    let (found, truncated) = {
        let _stage = trace::span("ancestor_bfs");
        let pstage = profile::stage("ancestor_bfs");
        let recognizable = |node: NodeId| {
            graph.node(node).is_ok_and(|n| {
                n.kind() == NodeKind::PageVisit
                    && browser.visit_count(n.key()) >= config.recognizable_visits
            })
        };
        let search =
            match frozen_ancestor_search(graph, &frozen, download, recognizable, &config.budget) {
                Some(search) => search,
                None => traverse::first_ancestor_where_observed(
                    graph,
                    download,
                    recognizable,
                    &config.budget,
                ),
            };
        pstage.touched(search.nodes_touched, search.edges_touched);
        pstage.rows(1, usize::from(search.path.is_some()));
        if search.truncated {
            let remaining = graph.node_count().saturating_sub(search.nodes_touched) as u64;
            pstage.truncated(remaining);
            trace::note(format!(
                "truncated: budget hit, ~{remaining} ancestors unexplored"
            ));
        }
        let found = search.path.and_then(|path| {
            let ancestor = path.target();
            let url = graph.node(ancestor).ok()?.key().to_owned();
            Some((ancestor, url, path))
        });
        (found, search.truncated)
    };
    let elapsed = deadline.elapsed();
    crate::slo::observe(
        browser.obs(),
        "lineage",
        "query.lineage.latency_us",
        elapsed,
        deadline.budget(),
        truncated,
    );
    span.finish_with(elapsed);
    prof.finish_with(elapsed);
    let (ancestor, url, path) = found?;
    Some(LineageAnswer {
        ancestor,
        visit_count: browser.visit_count(&url),
        url,
        path,
        elapsed,
    })
}

/// The full causal lineage of a node (every ancestor, BFS order), with
/// URLs for display. The §2.4 "sequence of actions that resulted in the
/// download".
pub fn full_lineage(
    browser: &ProvenanceBrowser,
    node: NodeId,
    budget: &Budget,
) -> (Vec<(NodeId, String)>, bool) {
    let graph = browser.graph();
    let traversal = traverse::bfs(
        graph,
        node,
        Direction::Ancestors,
        bp_graph::EdgeKind::is_causal,
        budget,
    );
    let out = traversal
        .reached
        .iter()
        .filter_map(|r| {
            graph
                .node(r.node)
                .ok()
                .map(|n| (r.node, n.key().to_owned()))
        })
        .collect();
    (out, traversal.truncated)
}

/// §2.4's descendant query: every download that descends from any visit
/// of `url` — "if the user decides a page is untrusted, she may then want
/// to find all downloads descending from that page and check them for
/// viruses."
pub fn downloads_descending_from(
    browser: &ProvenanceBrowser,
    url: &str,
    budget: &Budget,
) -> Vec<(NodeId, String)> {
    let graph = browser.graph();
    let mut out: Vec<(NodeId, String)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    // Each inner BFS honors the budget, but a URL with many visits runs
    // one BFS per visit — the deadline bounds the whole query, not one
    // walk at a time.
    let deadline = crate::slo::Deadline::start(&ClockHandle::real(), budget.deadline());
    for &start in browser.store().keys().get(url) {
        if deadline.expired() {
            break;
        }
        let traversal = traverse::bfs(
            graph,
            start,
            Direction::Descendants,
            bp_graph::EdgeKind::is_causal,
            budget,
        );
        for r in &traversal.reached {
            if !seen.insert(r.node) {
                continue;
            }
            if let Ok(n) = graph.node(r.node) {
                if n.kind() == NodeKind::Download {
                    out.push((r.node, n.key().to_owned()));
                }
            }
        }
    }
    out.sort_by_key(|a| a.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::{BrowserEvent, CaptureConfig, EventKind, NavigationCause, TabId};
    use bp_graph::Timestamp;
    use std::path::PathBuf;

    struct TempBrowser {
        browser: ProvenanceBrowser,
        dir: PathBuf,
    }
    impl TempBrowser {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "bp-query-lin-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            TempBrowser {
                browser: ProvenanceBrowser::open(&dir, CaptureConfig::default()).unwrap(),
                dir,
            }
        }
    }
    impl Drop for TempBrowser {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }

    fn t(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    /// The §2.4 drive-by: familiar forum (visited 5×) → shortener →
    /// unfamiliar host → malware download; the host later serves another
    /// download.
    fn driveby(tag: &str) -> (TempBrowser, String) {
        let mut tb = TempBrowser::new(tag);
        let b = &mut tb.browser;
        b.ingest(&BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        for i in 0..5 {
            b.ingest(&BrowserEvent::navigate(
                t(1 + i),
                TabId(0),
                "http://forum/",
                Some("Codec Forum"),
                NavigationCause::Typed,
            ))
            .unwrap();
        }
        b.ingest(&BrowserEvent::navigate(
            t(10),
            TabId(0),
            "http://short/x",
            None,
            NavigationCause::Link,
        ))
        .unwrap();
        b.ingest(&BrowserEvent::navigate(
            t(11),
            TabId(0),
            "http://sketchy-host/get",
            Some("FREE CODECS"),
            NavigationCause::Redirect { status: 302 },
        ))
        .unwrap();
        b.ingest(&BrowserEvent::new(
            t(12),
            EventKind::Download {
                tab: TabId(0),
                path: "/dl/malware.exe".to_owned(),
                bytes: 666,
            },
        ))
        .unwrap();
        b.ingest(&BrowserEvent::new(
            t(13),
            EventKind::Download {
                tab: TabId(0),
                path: "/dl/toolbar.exe".to_owned(),
                bytes: 999,
            },
        ))
        .unwrap();
        (tb, "/dl/malware.exe".to_owned())
    }

    #[test]
    fn finds_the_download_node() {
        let (tb, path) = driveby("find");
        assert!(find_download(&tb.browser, &path).is_some());
        assert!(find_download(&tb.browser, "/nope").is_none());
    }

    #[test]
    fn first_recognizable_ancestor_is_the_forum() {
        let (tb, path) = driveby("recognizable");
        let dl = find_download(&tb.browser, &path).unwrap();
        let answer =
            first_recognizable_ancestor(&tb.browser, dl, &LineageConfig::default()).unwrap();
        assert_eq!(answer.url, "http://forum/");
        assert!(answer.visit_count >= 3);
        // The path walks download → host → shortener → forum.
        assert!(answer.path.hops() >= 3);
        assert_eq!(answer.path.nodes.first(), Some(&dl));
    }

    #[test]
    fn unrecognizable_history_returns_none() {
        let (tb, path) = driveby("none");
        let dl = find_download(&tb.browser, &path).unwrap();
        let config = LineageConfig {
            recognizable_visits: 100,
            ..LineageConfig::default()
        };
        assert!(first_recognizable_ancestor(&tb.browser, dl, &config).is_none());
    }

    #[test]
    fn full_lineage_reaches_the_forum() {
        let (tb, path) = driveby("full");
        let dl = find_download(&tb.browser, &path).unwrap();
        let (lineage, truncated) = full_lineage(&tb.browser, dl, &Budget::new());
        assert!(!truncated);
        let urls: Vec<&str> = lineage.iter().map(|(_, u)| u.as_str()).collect();
        assert!(urls.contains(&"http://forum/"));
        assert!(urls.contains(&"http://sketchy-host/get"));
        assert!(urls.contains(&"http://short/x"));
    }

    #[test]
    fn descendants_of_untrusted_page_lists_all_its_downloads() {
        let (tb, _) = driveby("descendants");
        let downloads =
            downloads_descending_from(&tb.browser, "http://sketchy-host/get", &Budget::new());
        let paths: Vec<&str> = downloads.iter().map(|(_, p)| p.as_str()).collect();
        assert_eq!(paths, vec!["/dl/malware.exe", "/dl/toolbar.exe"]);
        // The forum itself also transitively led to them.
        let from_forum = downloads_descending_from(&tb.browser, "http://forum/", &Budget::new());
        assert_eq!(from_forum.len(), 2);
        // An unknown URL yields nothing.
        assert!(downloads_descending_from(&tb.browser, "http://x/", &Budget::new()).is_empty());
    }

    #[test]
    fn frozen_search_matches_live_exactly() {
        let (tb, path) = driveby("frozenlive");
        let b = &tb.browser;
        let dl = find_download(b, &path).unwrap();
        let graph = b.graph();
        let frozen = b.frozen();
        let pred = |node: NodeId| {
            graph
                .node(node)
                .is_ok_and(|n| n.kind() == NodeKind::PageVisit && b.visit_count(n.key()) >= 3)
        };
        for budget in [
            Budget::new(),
            Budget::new().with_max_nodes(2),
            Budget::new().with_max_depth(1),
        ] {
            let from_frozen =
                frozen_ancestor_search(graph, &frozen, dl, pred, &budget).expect("fresh snapshot");
            let live = traverse::first_ancestor_where_observed(graph, dl, pred, &budget);
            assert_eq!(from_frozen.path, live.path, "budget {budget:?}");
            assert_eq!(from_frozen.nodes_touched, live.nodes_touched);
            assert_eq!(from_frozen.edges_touched, live.edges_touched);
            assert_eq!(from_frozen.truncated, live.truncated);
        }
    }

    #[test]
    fn stale_snapshot_falls_back_to_the_live_walk() {
        let (mut tb, path) = driveby("stale");
        let dl = find_download(&tb.browser, &path).unwrap();
        let frozen = tb.browser.frozen();
        // Mutate after the snapshot: its epoch is now behind the graph's.
        tb.browser
            .ingest(&BrowserEvent::navigate(
                t(20),
                TabId(0),
                "http://later/",
                None,
                NavigationCause::Typed,
            ))
            .unwrap();
        let graph = tb.browser.graph();
        assert_ne!(frozen.epoch(), graph.epoch());
        assert!(
            frozen_ancestor_search(graph, &frozen, dl, |_| true, &Budget::new()).is_none(),
            "stale epoch must refuse, signalling live fallback"
        );
        // The query entry point still answers correctly through the
        // rebuilt-or-live path.
        let answer =
            first_recognizable_ancestor(&tb.browser, dl, &LineageConfig::default()).unwrap();
        assert_eq!(answer.url, "http://forum/");
    }

    #[test]
    fn budget_bounds_the_walk() {
        let (tb, path) = driveby("budget");
        let dl = find_download(&tb.browser, &path).unwrap();
        let config = LineageConfig {
            budget: Budget::new().with_max_nodes(2),
            ..LineageConfig::default()
        };
        // The forum is >2 nodes away, so the bounded query gives up.
        assert!(first_recognizable_ancestor(&tb.browser, dl, &config).is_none());
        let (lineage, truncated) = full_lineage(&tb.browser, dl, &Budget::new().with_max_nodes(2));
        assert!(truncated);
        assert!(lineage.len() <= 2);
    }
}
