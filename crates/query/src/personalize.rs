//! §2.2 — Personalizing web search, client-side.
//!
//! "Personalizing Web Search performs term frequency analysis on the
//! results of a contextual history search to find terms in user history
//! associated with the search term" (§4). The discovered terms are added
//! to the outgoing query *locally*: "the search engine would only see a
//! search for 'rosebud flower'; it would not know anything about the
//! user's history" (§2.2).

use crate::context::{contextual_history_search, ContextualConfig};
use bp_core::ProvenanceBrowser;
use bp_obs::profile::{self, QueryPlan};
use bp_obs::trace;
use bp_text::TermProfile;

/// EXPLAIN plan for [`personalize_query`]. The inner contextual search
/// attaches its own profile as a child of this one.
static PERSONALIZE_PLAN: QueryPlan = QueryPlan {
    query: "personalize",
    stages: &["contextual", "term_profile"],
};

/// Tuning for query expansion.
#[derive(Debug, Clone)]
pub struct PersonalizeConfig {
    /// How many expansion terms to add.
    pub expansion_terms: usize,
    /// Underlying contextual search configuration.
    pub contextual: ContextualConfig,
    /// Minimum profile weight for a term to qualify (filters one-off
    /// noise).
    pub min_term_weight: f64,
}

impl Default for PersonalizeConfig {
    fn default() -> Self {
        PersonalizeConfig {
            expansion_terms: 2,
            contextual: ContextualConfig {
                max_results: 50,
                ..ContextualConfig::default()
            },
            min_term_weight: 0.05,
        }
    }
}

/// A locally-expanded web query.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpandedQuery {
    /// The user's original query.
    pub original: String,
    /// History-derived expansion terms, strongest first.
    pub added_terms: Vec<String>,
}

impl ExpandedQuery {
    /// The string actually sent to the engine: original + added terms.
    pub fn to_query_string(&self) -> String {
        let mut q = self.original.clone();
        for term in &self.added_terms {
            q.push(' ');
            q.push_str(term);
        }
        q
    }

    /// `true` if no expansion happened (unknown topic, empty history).
    pub fn is_unchanged(&self) -> bool {
        self.added_terms.is_empty()
    }
}

/// Expands `query` with terms from the user's own history context.
///
/// Runs a contextual history search, builds a [`TermProfile`] over the
/// hits' text (each hit's contribution weighted by its contextual
/// relevance), and picks the heaviest terms not already in the query.
/// Everything happens locally — the function never needs the engine.
pub fn personalize_query(
    browser: &ProvenanceBrowser,
    query: &str,
    config: &PersonalizeConfig,
) -> ExpandedQuery {
    let _ctx = trace::ensure(&config.contextual.clock);
    let span = trace::span("query.personalize");
    let prof = profile::begin(
        &PERSONALIZE_PLAN,
        &config.contextual.clock,
        config.contextual.budget.deadline(),
    );
    let deadline = crate::slo::Deadline::start(
        &config.contextual.clock,
        config.contextual.budget.deadline(),
    );
    let contextual = {
        let pstage = profile::stage("contextual");
        let contextual = contextual_history_search(browser, query, &config.contextual);
        pstage.rows(1, contextual.hits.len());
        if contextual.truncated {
            // The child profile carries the precise cut point; at this
            // level the estimate is how many hits never materialized.
            let remaining = config
                .contextual
                .max_results
                .saturating_sub(contextual.hits.len()) as u64;
            pstage.truncated(remaining);
            trace::note(format!(
                "truncated: inner contextual search cut short, ~{remaining} hits may be missing"
            ));
        }
        contextual
    };
    let stage = trace::span("term_profile");
    let pstage = profile::stage("term_profile");
    let mut profile = TermProfile::new();
    for (profiled, hit) in contextual.hits.iter().enumerate() {
        // The inner search spends most of the budget; the profile pass
        // over its hits honors whatever remains.
        if deadline.expired() {
            let remaining = (contextual.hits.len() - profiled) as u64;
            pstage.truncated(remaining);
            trace::note(format!(
                "truncated: deadline hit, ~{remaining} hits unprofiled"
            ));
            break;
        }
        let mut text = hit.key.clone();
        if let Some(title) = &hit.title {
            text.push(' ');
            text.push_str(title);
        }
        profile.add_text(&text, hit.score);
    }
    let exclude: Vec<String> = query.split_whitespace().map(str::to_owned).collect();
    let added_terms: Vec<String> = profile
        .top_terms(config.expansion_terms, &exclude)
        .into_iter()
        .filter(|(_, w)| *w >= config.min_term_weight)
        .map(|(t, _)| t)
        .collect();
    pstage.rows(contextual.hits.len(), added_terms.len());
    drop(pstage);
    drop(stage);
    let elapsed = deadline.elapsed();
    // The inner contextual search already classified the deadline (it is
    // the stage that honors the budget); recording it again here would
    // double-count one user query in the SLO.
    crate::slo::observe(
        browser.obs(),
        "personalize",
        "query.personalize.latency_us",
        elapsed,
        None,
        contextual.truncated,
    );
    span.finish_with(elapsed);
    prof.finish_with(elapsed);
    ExpandedQuery {
        original: query.to_owned(),
        added_terms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::{BrowserEvent, CaptureConfig, NavigationCause, TabId};
    use bp_graph::Timestamp;
    use std::path::PathBuf;

    struct TempBrowser {
        browser: ProvenanceBrowser,
        dir: PathBuf,
    }
    impl TempBrowser {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "bp-query-pers-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            TempBrowser {
                browser: ProvenanceBrowser::open(&dir, CaptureConfig::default()).unwrap(),
                dir,
            }
        }
    }
    impl Drop for TempBrowser {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }

    fn t(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    /// A gardener's history: rosebud searches lead to flower pages.
    fn gardener(tag: &str) -> TempBrowser {
        let mut tb = TempBrowser::new(tag);
        let b = &mut tb.browser;
        b.ingest(&BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        let mut clock = 1;
        for i in 0..5 {
            b.ingest(&BrowserEvent::navigate(
                t(clock),
                TabId(0),
                format!("http://se/?q=rosebud&s={i}"),
                Some("rosebud - Search"),
                NavigationCause::SearchQuery {
                    query: "rosebud".to_owned(),
                },
            ))
            .unwrap();
            clock += 1;
            b.ingest(&BrowserEvent::navigate(
                t(clock),
                TabId(0),
                format!("http://garden{i}.example/flower-care"),
                Some("Flower care for rosebud pruning"),
                NavigationCause::Link,
            ))
            .unwrap();
            clock += 1;
        }
        tb
    }

    #[test]
    fn gardener_rosebud_expands_with_flower_vocabulary() {
        let tb = gardener("expand");
        let expanded = personalize_query(&tb.browser, "rosebud", &PersonalizeConfig::default());
        assert!(!expanded.is_unchanged(), "history should drive expansion");
        // The added terms come from the gardening context.
        let garden_vocab = ["flower", "care", "garden", "prune", "pruning"];
        assert!(
            expanded.added_terms.iter().any(|t| garden_vocab
                .iter()
                .any(|g| t.contains(g) || g.contains(t.as_str()))),
            "terms {:?} should be garden-flavoured",
            expanded.added_terms
        );
        // The outgoing query embeds them.
        let q = expanded.to_query_string();
        assert!(q.starts_with("rosebud "));
    }

    #[test]
    fn expansion_never_repeats_query_terms() {
        let tb = gardener("norepeat");
        let expanded = personalize_query(&tb.browser, "rosebud", &PersonalizeConfig::default());
        assert!(expanded.added_terms.iter().all(|t| t != "rosebud"));
    }

    #[test]
    fn unknown_topic_leaves_query_unchanged() {
        let tb = gardener("unknown");
        let expanded = personalize_query(
            &tb.browser,
            "quantum chromodynamics",
            &PersonalizeConfig::default(),
        );
        assert!(expanded.is_unchanged());
        assert_eq!(expanded.to_query_string(), "quantum chromodynamics");
    }

    #[test]
    fn empty_history_leaves_query_unchanged() {
        let tb = TempBrowser::new("empty");
        let expanded = personalize_query(&tb.browser, "rosebud", &PersonalizeConfig::default());
        assert!(expanded.is_unchanged());
    }

    #[test]
    fn term_count_respects_config() {
        let tb = gardener("count");
        let config = PersonalizeConfig {
            expansion_terms: 1,
            ..PersonalizeConfig::default()
        };
        let expanded = personalize_query(&tb.browser, "rosebud", &config);
        assert!(expanded.added_terms.len() <= 1);
    }

    #[test]
    fn privacy_everything_is_local() {
        // Structural check: the expansion is computed from the browser
        // alone; the resulting query string is the ONLY outbound artifact,
        // and it contains no URLs from history.
        let tb = gardener("privacy");
        let expanded = personalize_query(&tb.browser, "rosebud", &PersonalizeConfig::default());
        let outgoing = expanded.to_query_string();
        assert!(!outgoing.contains("http"));
        assert!(
            !outgoing.contains("example"),
            "no history hosts leak: {outgoing}"
        );
    }
}
