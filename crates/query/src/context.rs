//! §2.1 — Contextual history search.
//!
//! "The algorithm performs a textual search and then reorders results by
//! the relevance of their provenance neighbors" (Shah et al., via §2.1),
//! implemented "as a graph neighborhood expansion algorithm, similar to
//! web search algorithms such as Kleinberg's HITS" (§4). Textual hits seed
//! a weighted neighborhood expansion; every reached node scores by a blend
//! of its own textual relevance and the provenance context flowing into
//! it. A page that never mentions "rosebud" but was *reached from* the
//! rosebud search ranks — the Citizen Kane case.

use crate::result::{QueryResult, ScoredHit};
use bp_core::ProvenanceBrowser;
use bp_graph::frozen::{
    expand_frozen, fingerprint_expansion, fingerprint_ppr, personalized_pagerank_frozen,
    CacheDomain, CacheKey, CachedScores, FrozenGraph,
};
use bp_graph::hits::{hits, HitsConfig};
use bp_graph::neighborhood::ExpansionConfig;
use bp_graph::traverse::Budget;
use bp_graph::{NodeId, NodeKind};
use bp_obs::profile::{self, QueryPlan};
use bp_obs::{trace, ClockHandle};
use std::sync::Arc;

/// EXPLAIN plan for [`contextual_history_search`].
static CONTEXT_PLAN: QueryPlan = QueryPlan {
    query: "context",
    stages: &["frozen.build_us", "text_seeds", "expand", "hits", "blend"],
};

/// EXPLAIN plan for [`contextual_history_search_ppr`].
static PPR_PLAN: QueryPlan = QueryPlan {
    query: "ppr",
    stages: &["frozen.build_us", "text_seeds", "pagerank", "blend"],
};

/// EXPLAIN plan for [`textual_history_search`].
static TEXTUAL_PLAN: QueryPlan = QueryPlan {
    query: "textual",
    stages: &["text_search", "rank"],
};

/// Tuning for contextual history search.
#[derive(Debug, Clone)]
pub struct ContextualConfig {
    /// Blend weight of the textual score.
    pub text_weight: f64,
    /// Blend weight of the provenance-context score.
    pub context_weight: f64,
    /// Neighborhood expansion parameters.
    pub expansion: ExpansionConfig,
    /// Traversal budget (deadline / node cap) — the paper's 200 ms bound.
    pub budget: Budget,
    /// Maximum hits returned.
    pub max_results: usize,
    /// Node kinds eligible as results (visits and downloads by default;
    /// search terms and tab objects are context, not results).
    pub result_kinds: Vec<NodeKind>,
    /// Blend weight of HITS authority computed over the expansion's
    /// reached set (§4's "similar to Kleinberg's HITS"): pages many
    /// in-neighborhood journeys *arrived at* gain authority. 0.0 (the
    /// default) disables the HITS pass.
    pub hits_weight: f64,
    /// Time source for the reported latency (mockable in tests).
    pub clock: ClockHandle,
}

impl Default for ContextualConfig {
    fn default() -> Self {
        ContextualConfig {
            text_weight: 1.0,
            context_weight: 1.5,
            expansion: ExpansionConfig::default(),
            budget: Budget::new(),
            max_results: 25,
            result_kinds: vec![NodeKind::PageVisit, NodeKind::Download, NodeKind::Bookmark],
            hits_weight: 0.0,
            clock: ClockHandle::real(),
        }
    }
}

/// Normalized textual seeds for a query: `(node, tfidf / max_tfidf)`.
fn text_seeds(browser: &ProvenanceBrowser, query: &str) -> Vec<(NodeId, f64)> {
    let text_hits = browser.text_index().search(query);
    let max_text = text_hits.first().map_or(1.0, |(_, s)| *s).max(f64::EPSILON);
    text_hits
        .iter()
        .map(|&(doc, score)| (NodeId::new(doc), score / max_text))
        .collect()
}

/// The browser's current CSR snapshot, taken under the plan's leading
/// `frozen.build_us` stage so EXPLAIN shows what the epoch check (and any
/// rebuild a mutation forced) cost this query.
fn frozen_stage(browser: &ProvenanceBrowser) -> Arc<FrozenGraph> {
    let _stage = trace::span("frozen");
    let pstage = profile::stage("frozen.build_us");
    let frozen = browser.frozen();
    pstage.rows(frozen.node_count(), frozen.edge_count());
    frozen
}

/// Fetches `key` from the browser's score cache or computes and caches it,
/// maintaining the `bp_graph_cache` metrics. Results truncated under a
/// wall-clock deadline are returned but never cached: what they contain
/// depends on machine load, not on the key.
fn cached_walk(
    browser: &ProvenanceBrowser,
    key: CacheKey,
    deadline: Option<std::time::Duration>,
    compute: impl FnOnce() -> CachedScores,
) -> Arc<CachedScores> {
    let cache = browser.score_cache();
    let obs = browser.obs();
    if let Some(value) = cache.get(&key) {
        obs.counter("bp_graph_cache.hit").inc();
        return value;
    }
    obs.counter("bp_graph_cache.miss").inc();
    let value = Arc::new(compute());
    if !value.truncated || deadline.is_none() {
        let evicted = cache.put(key, value.clone());
        if evicted > 0 {
            obs.counter("bp_graph_cache.evict").add(evicted);
        }
    }
    obs.gauge("bp_graph_cache.bytes")
        .set(cache.stats().bytes as i64);
    value
}

/// A blend-pass winner candidate: everything needed to rank, nothing
/// that allocates. `ScoredHit`s (with owned key/title strings) are built
/// only for the rows that survive ranking.
struct Candidate {
    node: NodeId,
    kind: NodeKind,
    score: f64,
    text: f64,
    context: f64,
}

/// Shared two-pass blend over sparse `(node, context)` entries.
///
/// Pass 1 walks the entries in ascending node-id order, filters by result
/// kind, and deduplicates by history key into per-key best candidates.
/// Dedup goes through the snapshot's [`FrozenGraph::key_reps`]
/// table — a `u32` representative per node — so the hot loop indexes flat
/// arrays instead of hashing key strings. Pass 2 sorts the winners,
/// truncates to `max_results`, and only then materializes [`ScoredHit`]s.
/// Ties keep the lowest node id (pass 1 sees ids in ascending order and
/// keeps the first; the final sort breaks score ties the same way).
#[allow(clippy::too_many_arguments)]
fn blend_entries(
    browser: &ProvenanceBrowser,
    frozen: &FrozenGraph,
    entries: &[(u32, f64)],
    normalize: f64,
    seeds: &[(NodeId, f64)],
    authority: &std::collections::HashMap<NodeId, f64>,
    config: &ContextualConfig,
    deadline: &crate::slo::Deadline,
    pstage: &profile::StageGuard,
) -> (Vec<ScoredHit>, bool) {
    let graph = browser.graph();
    let mut truncated = false;
    let use_hits = config.hits_weight != 0.0 && !authority.is_empty();
    let key_reps = frozen.key_reps();
    let mut text_score = vec![0.0f64; key_reps.len()];
    for &(n, s) in seeds {
        if let Some(slot) = text_score.get_mut(n.as_usize()) {
            *slot = s;
        }
    }
    // winner_slot[rep] indexes into `winners` (u32::MAX = none yet): the
    // per-key best is a pair of array reads, no string hashing.
    const NONE: u32 = u32::MAX;
    let mut winner_slot = vec![NONE; key_reps.len()];
    let mut winners: Vec<Candidate> = Vec::new();
    for (blended, &(raw_node, raw_context)) in entries.iter().enumerate() {
        // The deadline guards the loop, but a clock read per candidate
        // would dominate the now-allocation-free loop body.
        if blended % 64 == 0 && deadline.expired() {
            truncated = true;
            let remaining = (entries.len() - blended) as u64;
            pstage.truncated(remaining);
            trace::note(format!(
                "truncated: deadline hit, ~{remaining} candidates unscored"
            ));
            break;
        }
        let node = NodeId::new(raw_node);
        let Ok(n) = graph.node(node) else { continue };
        if !config.result_kinds.contains(&n.kind()) {
            continue;
        }
        let context = raw_context / normalize;
        let text = text_score.get(raw_node as usize).copied().unwrap_or(0.0);
        let hits = if use_hits {
            config.hits_weight * authority.get(&node).copied().unwrap_or(0.0)
        } else {
            0.0
        };
        let score = config.text_weight * text + config.context_weight * context + hits;
        let candidate = Candidate {
            node,
            kind: n.kind(),
            score,
            text,
            context,
        };
        let rep = match key_reps.get(raw_node as usize) {
            Some(&r) => r as usize,
            // Entry past the snapshot (cannot happen while callers score
            // over the same frozen graph): keep it, undeduplicated.
            None => {
                winners.push(candidate);
                continue;
            }
        };
        let slot = winner_slot[rep];
        if slot == NONE {
            winner_slot[rep] = winners.len() as u32;
            winners.push(candidate);
        } else {
            let existing = &mut winners[slot as usize];
            if candidate.score > existing.score {
                *existing = candidate;
            }
        }
    }
    let rank = |a: &Candidate, b: &Candidate| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.node.cmp(&b.node))
    };
    // Only `max_results` winners survive: an O(n) partial select moves
    // them to the front, then the sort touches just that prefix. The
    // comparator is a total order (score desc, node id asc), so the
    // selected set and final order match what a full sort would produce.
    if winners.len() > config.max_results {
        if config.max_results == 0 {
            winners.clear();
        } else {
            winners.select_nth_unstable_by(config.max_results - 1, rank);
            winners.truncate(config.max_results);
        }
    }
    winners.sort_by(rank);
    let hits: Vec<ScoredHit> = winners
        .into_iter()
        .filter_map(|c| {
            let n = graph.node(c.node).ok()?;
            Some(ScoredHit {
                node: c.node,
                kind: c.kind,
                key: n.key().to_owned(),
                title: n.attrs().get_str("title").map(str::to_owned),
                score: c.score,
                text_score: c.text,
                context_score: c.context,
            })
        })
        .collect();
    (hits, truncated)
}

/// Runs a contextual history search for `query`.
///
/// Scores combine normalized TF-IDF text relevance with accumulated
/// neighborhood weight; hits are deduplicated by key (multiple visit
/// versions of one URL collapse to the best-scoring instance), matching
/// how a user reads history results.
pub fn contextual_history_search(
    browser: &ProvenanceBrowser,
    query: &str,
    config: &ContextualConfig,
) -> QueryResult {
    let _ctx = trace::ensure(&config.clock);
    let span = trace::span("query.context");
    let prof = profile::begin(&CONTEXT_PLAN, &config.clock, config.budget.deadline());
    let deadline = crate::slo::Deadline::start(&config.clock, config.budget.deadline());
    let graph = browser.graph();

    // 1. The CSR snapshot (usually an epoch check + Arc clone).
    let frozen = frozen_stage(browser);

    // 2. Textual seeds.
    let seeds = {
        let _stage = trace::span("text_seeds");
        let pstage = profile::stage("text_seeds");
        let seeds = text_seeds(browser, query);
        pstage.rows(query.split_whitespace().count(), seeds.len());
        seeds
    };

    // 3. Neighborhood expansion from the seeds, over the snapshot and
    //    through the epoch-keyed cache: an identical (seed set, expansion
    //    config, budget caps) request against an unmutated graph reuses
    //    the previous expansion outright.
    let expansion = {
        let _stage = trace::span("expand");
        let pstage = profile::stage("expand");
        let key = CacheKey {
            epoch: frozen.epoch(),
            domain: CacheDomain::Expansion,
            fingerprint: fingerprint_expansion(&seeds, &config.expansion, &config.budget),
        };
        let expansion = cached_walk(browser, key, config.budget.deadline(), || {
            let e = expand_frozen(&frozen, &seeds, &config.expansion, &config.budget);
            CachedScores {
                entries: e.entries,
                iterations: 0,
                truncated: e.truncated,
            }
        });
        pstage.rows(seeds.len(), expansion.entries.len());
        pstage.touched(expansion.entries.len(), 0);
        if expansion.truncated {
            let remaining = graph.node_count().saturating_sub(expansion.entries.len()) as u64;
            pstage.truncated(remaining);
            trace::note(format!(
                "truncated: budget hit, ~{remaining} nodes unreached"
            ));
        }
        expansion
    };

    // 4. Optional HITS pass over the reached neighborhood (the "base
    //    set" in Kleinberg's terms): authority flows to the pages the
    //    user's journeys converged on.
    let authority: std::collections::HashMap<NodeId, f64> = if config.hits_weight > 0.0 {
        let _stage = trace::span("hits");
        let pstage = profile::stage("hits");
        // Frozen entries are already in ascending node-id order, so the
        // member order (and the scores) stay deterministic.
        let base: Vec<NodeId> = expansion
            .entries
            .iter()
            .map(|&(i, _)| NodeId::new(i))
            .collect();
        let authority = hits(graph, &base, &HitsConfig::default()).authority;
        pstage.rows(base.len(), authority.len());
        authority
    } else {
        std::collections::HashMap::new()
    };

    // 5. Blend and collect, still under the deadline: the expansion
    //    truncates itself, but the blend loop scales with the reached set,
    //    so it too honors the bound rather than silently overrunning.
    let stage = trace::span("blend");
    let pstage = profile::stage("blend");
    let (hits, blend_truncated) = blend_entries(
        browser,
        &frozen,
        &expansion.entries,
        1.0,
        &seeds,
        &authority,
        config,
        &deadline,
        &pstage,
    );
    let truncated = expansion.truncated || blend_truncated;
    pstage.rows(expansion.entries.len(), hits.len());
    drop(pstage);
    drop(stage);
    let elapsed = deadline.elapsed();
    crate::slo::observe(
        browser.obs(),
        "context",
        "query.context.latency_us",
        elapsed,
        deadline.budget(),
        truncated,
    );
    span.finish_with(elapsed);
    prof.finish_with(elapsed);
    QueryResult {
        hits,
        elapsed,
        truncated,
    }
}

/// Contextual history search with **personalized PageRank** as the context
/// signal instead of one-shot neighborhood expansion — the §4 future-work
/// direction ("more intelligent algorithms"). Relevance mass circulates to
/// a fixed point, so multi-path connectivity counts; compared against the
/// expansion variant in the A5 ablation.
pub fn contextual_history_search_ppr(
    browser: &ProvenanceBrowser,
    query: &str,
    config: &ContextualConfig,
    pagerank: &bp_graph::pagerank::PageRankConfig,
) -> QueryResult {
    let _ctx = trace::ensure(&config.clock);
    let span = trace::span("query.context_ppr");
    let prof = profile::begin(&PPR_PLAN, &config.clock, config.budget.deadline());
    let deadline = crate::slo::Deadline::start(&config.clock, config.budget.deadline());
    let frozen = frozen_stage(browser);
    let seeds = {
        let _stage = trace::span("text_seeds");
        let pstage = profile::stage("text_seeds");
        let seeds = text_seeds(browser, query);
        pstage.rows(query.split_whitespace().count(), seeds.len());
        seeds
    };
    // The converged walk, through the epoch-keyed cache: serve's
    // steady-state query loop asks the same seeds against an unmutated
    // graph over and over, and each repeat is a map probe instead of a
    // power iteration.
    let scores = {
        let _stage = trace::span("pagerank");
        let pstage = profile::stage("pagerank");
        let key = CacheKey {
            epoch: frozen.epoch(),
            domain: CacheDomain::PageRank,
            fingerprint: fingerprint_ppr(&seeds, pagerank, &config.budget),
        };
        let scores = cached_walk(browser, key, config.budget.deadline(), || {
            let s = personalized_pagerank_frozen(&frozen, &seeds, pagerank, &config.budget);
            CachedScores {
                entries: s.entries,
                iterations: s.iterations,
                truncated: s.truncated,
            }
        });
        pstage.rows(seeds.len(), scores.entries.len());
        pstage.touched(scores.entries.len(), 0);
        scores
    };
    // Rescale so the context component is comparable to the expansion
    // variant (top score ≈ 1). One O(n) max scan — no full ranking sort.
    let max = scores
        .entries
        .iter()
        .fold(0.0f64, |m, &(_, s)| m.max(s))
        .max(f64::EPSILON);

    let stage = trace::span("blend");
    let pstage = profile::stage("blend");
    let no_authority = std::collections::HashMap::new();
    let (hits, blend_truncated) = blend_entries(
        browser,
        &frozen,
        &scores.entries,
        max,
        &seeds,
        &no_authority,
        config,
        &deadline,
        &pstage,
    );
    let truncated = scores.truncated || blend_truncated;
    pstage.rows(scores.entries.len(), hits.len());
    drop(pstage);
    drop(stage);
    let elapsed = deadline.elapsed();
    // Same use case as the expansion variant, so it samples the same
    // latency histogram; truncation comes from the kernel stopping at an
    // iteration boundary or from the blend loop's deadline check.
    crate::slo::observe(
        browser.obs(),
        "context",
        "query.context.latency_us",
        elapsed,
        deadline.budget(),
        truncated,
    );
    span.finish_with(elapsed);
    prof.finish_with(elapsed);
    QueryResult {
        hits,
        elapsed,
        truncated,
    }
}

/// The purely textual baseline (§2.1's "currently"): TF-IDF hits only, no
/// provenance. Used by experiment E4 to show what contextual search adds.
pub fn textual_history_search(
    browser: &ProvenanceBrowser,
    query: &str,
    config: &ContextualConfig,
) -> QueryResult {
    let _ctx = trace::ensure(&config.clock);
    let span = trace::span("query.textual");
    // The baseline deliberately runs unbounded — it exists to show what
    // the paper's "currently" behavior costs, budget and all.
    let prof = profile::begin(&TEXTUAL_PLAN, &config.clock, None);
    let deadline = crate::slo::Deadline::unbounded(&config.clock);
    let graph = browser.graph();
    let mut best_by_key: std::collections::HashMap<String, ScoredHit> =
        std::collections::HashMap::new();
    let text_hits = {
        let pstage = profile::stage("text_search");
        let text_hits = browser.text_index().search(query);
        pstage.rows(query.split_whitespace().count(), text_hits.len());
        text_hits
    };
    let pstage = profile::stage("rank");
    let candidates = text_hits.len();
    for (doc, score) in text_hits {
        let node = NodeId::new(doc);
        let Ok(n) = graph.node(node) else { continue };
        if !config.result_kinds.contains(&n.kind()) {
            continue;
        }
        let hit = ScoredHit {
            node,
            kind: n.kind(),
            key: n.key().to_owned(),
            title: n.attrs().get_str("title").map(str::to_owned),
            score,
            text_score: score,
            context_score: 0.0,
        };
        match best_by_key.get_mut(n.key()) {
            Some(existing) if existing.score >= score => {}
            _ => {
                best_by_key.insert(n.key().to_owned(), hit);
            }
        }
    }
    let mut hits: Vec<ScoredHit> = best_by_key.into_values().collect();
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.node.cmp(&b.node))
    });
    hits.truncate(config.max_results);
    pstage.rows(candidates, hits.len());
    drop(pstage);
    let elapsed = deadline.elapsed();
    // A baseline, not one of the four use cases: latency sample only, no
    // deadline classification (the unbounded deadline has no budget).
    crate::slo::observe(
        browser.obs(),
        "textual",
        "query.textual.latency_us",
        elapsed,
        deadline.budget(),
        false,
    );
    span.finish_with(elapsed);
    prof.finish_with(elapsed);
    QueryResult {
        hits,
        elapsed,
        truncated: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::{BrowserEvent, CaptureConfig, NavigationCause, TabId};
    use bp_graph::Timestamp;
    use std::path::PathBuf;

    struct TempBrowser {
        browser: ProvenanceBrowser,
        dir: PathBuf,
    }
    impl TempBrowser {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "bp-query-ctx-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            TempBrowser {
                browser: ProvenanceBrowser::open(&dir, CaptureConfig::default()).unwrap(),
                dir,
            }
        }
    }
    impl Drop for TempBrowser {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }

    fn t(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    /// The §2.1 history: search rosebud → click Citizen Kane (whose text
    /// has no "rosebud"), plus an unrelated page.
    fn rosebud_history(tag: &str) -> TempBrowser {
        let mut tb = TempBrowser::new(tag);
        let b = &mut tb.browser;
        b.ingest(&BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        b.ingest(&BrowserEvent::navigate(
            t(1),
            TabId(0),
            "http://se/?q=rosebud",
            Some("rosebud - Search"),
            NavigationCause::SearchQuery {
                query: "rosebud".to_owned(),
            },
        ))
        .unwrap();
        b.ingest(&BrowserEvent::navigate(
            t(2),
            TabId(0),
            "http://films/kane",
            Some("Citizen Kane (1941)"),
            NavigationCause::Link,
        ))
        .unwrap();
        b.ingest(&BrowserEvent::navigate(
            t(3),
            TabId(0),
            "http://unrelated/cooking",
            Some("Pasta recipes"),
            NavigationCause::Typed,
        ))
        .unwrap();
        tb
    }

    #[test]
    fn textual_baseline_misses_citizen_kane() {
        let tb = rosebud_history("baseline");
        let r = textual_history_search(&tb.browser, "rosebud", &ContextualConfig::default());
        assert!(r.contains_key("http://se/?q=rosebud"));
        assert!(
            !r.contains_key("http://films/kane"),
            "the §2.1 'currently' failure: {:?}",
            r.top_keys(5)
        );
    }

    #[test]
    fn contextual_search_returns_citizen_kane() {
        let tb = rosebud_history("contextual");
        let r = contextual_history_search(&tb.browser, "rosebud", &ContextualConfig::default());
        assert!(
            r.contains_key("http://films/kane"),
            "contextual search must surface the descendant: {:?}",
            r.top_keys(10)
        );
        // The unrelated page (two weak hops away) never outranks kane.
        let kane_rank = r.rank_of_key("http://films/kane").unwrap();
        if let Some(cooking_rank) = r.rank_of_key("http://unrelated/cooking") {
            assert!(
                kane_rank < cooking_rank,
                "decay must demote distant context"
            );
        }
        // The kane hit is contextual, not textual.
        let kane = &r.hits[r.rank_of_key("http://films/kane").unwrap()];
        assert_eq!(kane.text_score, 0.0);
        assert!(kane.context_score > 0.0);
    }

    #[test]
    fn seeds_outrank_distant_context_by_default() {
        let tb = rosebud_history("ranks");
        let r = contextual_history_search(&tb.browser, "rosebud", &ContextualConfig::default());
        let search_rank = r.rank_of_key("http://se/?q=rosebud").unwrap();
        assert_eq!(search_rank, 0, "the direct textual hit stays on top");
    }

    #[test]
    fn duplicate_visits_collapse_by_key() {
        let mut tb = rosebud_history("dedup");
        let b = &mut tb.browser;
        // Revisit kane twice more.
        for s in 4..6 {
            b.ingest(&BrowserEvent::navigate(
                t(s),
                TabId(0),
                "http://films/kane",
                Some("Citizen Kane (1941)"),
                NavigationCause::BackForward,
            ))
            .unwrap();
        }
        let r = contextual_history_search(b, "kane", &ContextualConfig::default());
        let kane_hits = r
            .hits
            .iter()
            .filter(|h| h.key == "http://films/kane")
            .count();
        assert_eq!(kane_hits, 1, "one hit per URL: {:?}", r.top_keys(10));
    }

    #[test]
    fn empty_and_unknown_queries() {
        let tb = rosebud_history("empty");
        let r = contextual_history_search(&tb.browser, "", &ContextualConfig::default());
        assert!(r.hits.is_empty());
        let r =
            contextual_history_search(&tb.browser, "zzz never seen", &ContextualConfig::default());
        assert!(r.hits.is_empty());
    }

    #[test]
    fn max_results_respected() {
        let mut tb = TempBrowser::new("limit");
        let b = &mut tb.browser;
        b.ingest(&BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        for i in 0..30 {
            b.ingest(&BrowserEvent::navigate(
                t(i + 1),
                TabId(0),
                format!("http://wine{i}.example/"),
                Some("wine page"),
                NavigationCause::Link,
            ))
            .unwrap();
        }
        let config = ContextualConfig {
            max_results: 5,
            ..ContextualConfig::default()
        };
        let r = contextual_history_search(b, "wine", &config);
        assert_eq!(r.hits.len(), 5);
    }

    #[test]
    fn zero_deadline_reports_truncation() {
        let tb = rosebud_history("deadline");
        let config = ContextualConfig {
            budget: Budget::new().with_deadline(std::time::Duration::ZERO),
            ..ContextualConfig::default()
        };
        let r = contextual_history_search(&tb.browser, "rosebud", &config);
        assert!(r.truncated);
    }

    #[test]
    fn ppr_variant_finds_citizen_kane_too() {
        let tb = rosebud_history("ppr");
        let r = contextual_history_search_ppr(
            &tb.browser,
            "rosebud",
            &ContextualConfig::default(),
            &bp_graph::pagerank::PageRankConfig::default(),
        );
        assert!(
            r.contains_key("http://films/kane"),
            "PPR context must surface the descendant: {:?}",
            r.top_keys(10)
        );
        for pair in r.hits.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
        // Empty query behaves.
        let empty = contextual_history_search_ppr(
            &tb.browser,
            "",
            &ContextualConfig::default(),
            &bp_graph::pagerank::PageRankConfig::default(),
        );
        assert!(empty.hits.is_empty());
    }

    #[test]
    fn score_cache_hits_until_capture_mutates_the_graph() {
        let mut tb = rosebud_history("cache-epoch");
        let config = ContextualConfig::default();
        let pr = bp_graph::pagerank::PageRankConfig::default();

        // First walk computes and caches; the repeat is a pure cache hit
        // with bit-identical results.
        let before = tb.browser.score_cache().stats();
        let r1 = contextual_history_search_ppr(&tb.browser, "rosebud", &config, &pr);
        let after_first = tb.browser.score_cache().stats();
        assert_eq!(after_first.misses, before.misses + 1);
        let r2 = contextual_history_search_ppr(&tb.browser, "rosebud", &config, &pr);
        let after_second = tb.browser.score_cache().stats();
        assert_eq!(after_second.hits, after_first.hits + 1);
        assert_eq!(r1.hits.len(), r2.hits.len());
        for (a, b) in r1.hits.iter().zip(&r2.hits) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        assert!(
            !r1.contains_key("http://films/kane-cast"),
            "the cast page does not exist yet"
        );

        // Mutate through capture: revisit kane and follow a link off it.
        // The epoch moves, so the old entry can never match again.
        tb.browser
            .ingest(&BrowserEvent::navigate(
                t(10),
                TabId(0),
                "http://films/kane",
                Some("Citizen Kane (1941)"),
                NavigationCause::BackForward,
            ))
            .unwrap();
        tb.browser
            .ingest(&BrowserEvent::navigate(
                t(11),
                TabId(0),
                "http://films/kane-cast",
                Some("Cast list"),
                NavigationCause::Link,
            ))
            .unwrap();
        let r3 = contextual_history_search_ppr(&tb.browser, "rosebud", &config, &pr);
        let after_mutation = tb.browser.score_cache().stats();
        assert_eq!(
            after_mutation.misses,
            after_second.misses + 1,
            "mutated graph must miss the cache"
        );
        assert!(
            r3.contains_key("http://films/kane-cast"),
            "fresh scores reflect the new history: {:?}",
            r3.top_keys(10)
        );
        let kane_before = r1.hits[r1.rank_of_key("http://films/kane").unwrap()].context_score;
        let kane_after = r3.hits[r3.rank_of_key("http://films/kane").unwrap()].context_score;
        assert_ne!(
            kane_before.to_bits(),
            kane_after.to_bits(),
            "mass redistributes over the grown neighborhood"
        );

        // The expansion-domain cache behaves the same on the context path.
        let ctx_before = tb.browser.score_cache().stats();
        let c1 = contextual_history_search(&tb.browser, "rosebud", &config);
        let c2 = contextual_history_search(&tb.browser, "rosebud", &config);
        let ctx_after = tb.browser.score_cache().stats();
        assert_eq!(ctx_after.misses, ctx_before.misses + 1);
        assert_eq!(ctx_after.hits, ctx_before.hits + 1);
        assert_eq!(c1.hits.len(), c2.hits.len());
    }

    #[test]
    fn hits_blend_boosts_convergence_points() {
        // Many distinct wine journeys all arrive at one canonical page;
        // with the HITS blend on, that page outranks its textual peers.
        let mut tb = TempBrowser::new("hits");
        let b = &mut tb.browser;
        b.ingest(&BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        let hub = "http://wine-canonical.example/";
        let mut clock = 1;
        for i in 0..6 {
            b.ingest(&BrowserEvent::navigate(
                t(clock),
                TabId(0),
                format!("http://wine{i}.example/list"),
                Some("wine list"),
                NavigationCause::Typed,
            ))
            .unwrap();
            clock += 1;
            b.ingest(&BrowserEvent::navigate(
                t(clock),
                TabId(0),
                hub,
                Some("wine canonical"),
                NavigationCause::Link,
            ))
            .unwrap();
            clock += 1;
        }
        let flat = contextual_history_search(b, "wine", &ContextualConfig::default());
        let blended = contextual_history_search(
            b,
            "wine",
            &ContextualConfig {
                hits_weight: 3.0,
                ..ContextualConfig::default()
            },
        );
        let flat_rank = flat.rank_of_key(hub).expect("hub present");
        let blended_rank = blended.rank_of_key(hub).expect("hub present");
        assert!(
            blended_rank <= flat_rank,
            "HITS must not demote the convergence point ({blended_rank} vs {flat_rank})"
        );
        assert_eq!(
            blended_rank,
            0,
            "hub is the authority: {:?}",
            blended.top_keys(5)
        );
    }

    #[test]
    fn scores_sorted_descending() {
        let tb = rosebud_history("sorted");
        let r =
            contextual_history_search(&tb.browser, "rosebud search", &ContextualConfig::default());
        for pair in r.hits.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }
}
