//! §2.1 — Contextual history search.
//!
//! "The algorithm performs a textual search and then reorders results by
//! the relevance of their provenance neighbors" (Shah et al., via §2.1),
//! implemented "as a graph neighborhood expansion algorithm, similar to
//! web search algorithms such as Kleinberg's HITS" (§4). Textual hits seed
//! a weighted neighborhood expansion; every reached node scores by a blend
//! of its own textual relevance and the provenance context flowing into
//! it. A page that never mentions "rosebud" but was *reached from* the
//! rosebud search ranks — the Citizen Kane case.

use crate::result::{QueryResult, ScoredHit};
use bp_core::ProvenanceBrowser;
use bp_graph::hits::{hits, HitsConfig};
use bp_graph::neighborhood::{expand, ExpansionConfig};
use bp_graph::traverse::Budget;
use bp_graph::{NodeId, NodeKind};
use bp_obs::profile::{self, QueryPlan};
use bp_obs::{trace, ClockHandle};

/// EXPLAIN plan for [`contextual_history_search`].
static CONTEXT_PLAN: QueryPlan = QueryPlan {
    query: "context",
    stages: &["text_seeds", "expand", "hits", "blend"],
};

/// EXPLAIN plan for [`contextual_history_search_ppr`].
static PPR_PLAN: QueryPlan = QueryPlan {
    query: "ppr",
    stages: &["text_seeds", "pagerank", "blend"],
};

/// EXPLAIN plan for [`textual_history_search`].
static TEXTUAL_PLAN: QueryPlan = QueryPlan {
    query: "textual",
    stages: &["text_search", "rank"],
};

/// Tuning for contextual history search.
#[derive(Debug, Clone)]
pub struct ContextualConfig {
    /// Blend weight of the textual score.
    pub text_weight: f64,
    /// Blend weight of the provenance-context score.
    pub context_weight: f64,
    /// Neighborhood expansion parameters.
    pub expansion: ExpansionConfig,
    /// Traversal budget (deadline / node cap) — the paper's 200 ms bound.
    pub budget: Budget,
    /// Maximum hits returned.
    pub max_results: usize,
    /// Node kinds eligible as results (visits and downloads by default;
    /// search terms and tab objects are context, not results).
    pub result_kinds: Vec<NodeKind>,
    /// Blend weight of HITS authority computed over the expansion's
    /// reached set (§4's "similar to Kleinberg's HITS"): pages many
    /// in-neighborhood journeys *arrived at* gain authority. 0.0 (the
    /// default) disables the HITS pass.
    pub hits_weight: f64,
    /// Time source for the reported latency (mockable in tests).
    pub clock: ClockHandle,
}

impl Default for ContextualConfig {
    fn default() -> Self {
        ContextualConfig {
            text_weight: 1.0,
            context_weight: 1.5,
            expansion: ExpansionConfig::default(),
            budget: Budget::new(),
            max_results: 25,
            result_kinds: vec![NodeKind::PageVisit, NodeKind::Download, NodeKind::Bookmark],
            hits_weight: 0.0,
            clock: ClockHandle::real(),
        }
    }
}

/// Normalized textual seeds for a query: `(node, tfidf / max_tfidf)`.
fn text_seeds(browser: &ProvenanceBrowser, query: &str) -> Vec<(NodeId, f64)> {
    let text_hits = browser.text_index().search(query);
    let max_text = text_hits.first().map_or(1.0, |(_, s)| *s).max(f64::EPSILON);
    text_hits
        .iter()
        .map(|&(doc, score)| (NodeId::new(doc), score / max_text))
        .collect()
}

/// Runs a contextual history search for `query`.
///
/// Scores combine normalized TF-IDF text relevance with accumulated
/// neighborhood weight; hits are deduplicated by key (multiple visit
/// versions of one URL collapse to the best-scoring instance), matching
/// how a user reads history results.
pub fn contextual_history_search(
    browser: &ProvenanceBrowser,
    query: &str,
    config: &ContextualConfig,
) -> QueryResult {
    let _ctx = trace::ensure(&config.clock);
    let span = trace::span("query.context");
    let prof = profile::begin(&CONTEXT_PLAN, &config.clock, config.budget.deadline());
    let deadline = crate::slo::Deadline::start(&config.clock, config.budget.deadline());
    let graph = browser.graph();

    // 1. Textual seeds.
    let seeds = {
        let _stage = trace::span("text_seeds");
        let pstage = profile::stage("text_seeds");
        let seeds = text_seeds(browser, query);
        pstage.rows(query.split_whitespace().count(), seeds.len());
        seeds
    };

    // 2. Neighborhood expansion from the seeds.
    let expansion = {
        let _stage = trace::span("expand");
        let pstage = profile::stage("expand");
        let expansion = expand(graph, &seeds, &config.expansion, &config.budget);
        pstage.rows(seeds.len(), expansion.weight.len());
        pstage.touched(expansion.weight.len(), 0);
        if expansion.truncated {
            let remaining = graph.node_count().saturating_sub(expansion.weight.len()) as u64;
            pstage.truncated(remaining);
            trace::note(format!(
                "truncated: budget hit, ~{remaining} nodes unreached"
            ));
        }
        expansion
    };

    // 3. Optional HITS pass over the reached neighborhood (the "base
    //    set" in Kleinberg's terms): authority flows to the pages the
    //    user's journeys converged on.
    let authority: std::collections::HashMap<NodeId, f64> = if config.hits_weight > 0.0 {
        let _stage = trace::span("hits");
        let pstage = profile::stage("hits");
        let mut base: Vec<NodeId> = expansion.weight.keys().copied().collect();
        base.sort(); // deterministic member order → deterministic scores
        let authority = hits(graph, &base, &HitsConfig::default()).authority;
        pstage.rows(base.len(), authority.len());
        authority
    } else {
        std::collections::HashMap::new()
    };

    // 4. Blend and collect, still under the deadline: the expansion
    //    truncates itself, but the blend loop scales with the reached set,
    //    so it too honors the bound rather than silently overrunning.
    let stage = trace::span("blend");
    let pstage = profile::stage("blend");
    let mut truncated = expansion.truncated;
    let mut text_score: std::collections::HashMap<NodeId, f64> = std::collections::HashMap::new();
    for &(n, s) in &seeds {
        text_score.insert(n, s);
    }
    let mut best_by_key: std::collections::HashMap<String, ScoredHit> =
        std::collections::HashMap::new();
    for (blended, (&node, &context)) in expansion.weight.iter().enumerate() {
        if deadline.expired() {
            truncated = true;
            let remaining = (expansion.weight.len() - blended) as u64;
            pstage.truncated(remaining);
            trace::note(format!(
                "truncated: deadline hit, ~{remaining} candidates unscored"
            ));
            break;
        }
        let Ok(n) = graph.node(node) else { continue };
        if !config.result_kinds.contains(&n.kind()) {
            continue;
        }
        let text = text_score.get(&node).copied().unwrap_or(0.0);
        let score = config.text_weight * text
            + config.context_weight * context
            + config.hits_weight * authority.get(&node).copied().unwrap_or(0.0);
        let hit = ScoredHit {
            node,
            kind: n.kind(),
            key: n.key().to_owned(),
            title: n.attrs().get_str("title").map(str::to_owned),
            score,
            text_score: text,
            context_score: context,
        };
        match best_by_key.get_mut(n.key()) {
            Some(existing) if existing.score >= score => {}
            _ => {
                best_by_key.insert(n.key().to_owned(), hit);
            }
        }
    }
    let mut hits: Vec<ScoredHit> = best_by_key.into_values().collect();
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.node.cmp(&b.node))
    });
    hits.truncate(config.max_results);
    pstage.rows(expansion.weight.len(), hits.len());
    drop(pstage);
    drop(stage);
    let elapsed = deadline.elapsed();
    crate::slo::observe(
        browser.obs(),
        "context",
        "query.context.latency_us",
        elapsed,
        deadline.budget(),
        truncated,
    );
    span.finish_with(elapsed);
    prof.finish_with(elapsed);
    QueryResult {
        hits,
        elapsed,
        truncated,
    }
}

/// Contextual history search with **personalized PageRank** as the context
/// signal instead of one-shot neighborhood expansion — the §4 future-work
/// direction ("more intelligent algorithms"). Relevance mass circulates to
/// a fixed point, so multi-path connectivity counts; compared against the
/// expansion variant in the A5 ablation.
pub fn contextual_history_search_ppr(
    browser: &ProvenanceBrowser,
    query: &str,
    config: &ContextualConfig,
    pagerank: &bp_graph::pagerank::PageRankConfig,
) -> QueryResult {
    let _ctx = trace::ensure(&config.clock);
    let span = trace::span("query.context_ppr");
    let prof = profile::begin(&PPR_PLAN, &config.clock, config.budget.deadline());
    let deadline = crate::slo::Deadline::start(&config.clock, config.budget.deadline());
    let graph = browser.graph();
    let seeds = {
        let _stage = trace::span("text_seeds");
        let pstage = profile::stage("text_seeds");
        let seeds = text_seeds(browser, query);
        pstage.rows(query.split_whitespace().count(), seeds.len());
        seeds
    };
    let scores = {
        let _stage = trace::span("pagerank");
        let pstage = profile::stage("pagerank");
        let scores = bp_graph::pagerank::personalized_pagerank(graph, &seeds, pagerank);
        pstage.rows(seeds.len(), scores.score.len());
        pstage.touched(scores.score.len(), 0);
        scores
    };
    // Rescale so the context component is comparable to the expansion
    // variant (top score ≈ 1).
    let max = scores
        .ranked()
        .first()
        .map_or(1.0, |(_, s)| *s)
        .max(f64::EPSILON);

    let mut text_score: std::collections::HashMap<NodeId, f64> = std::collections::HashMap::new();
    for &(n, s) in &seeds {
        text_score.insert(n, s);
    }
    let mut best_by_key: std::collections::HashMap<String, ScoredHit> =
        std::collections::HashMap::new();
    let mut truncated = false;
    let stage = trace::span("blend");
    let pstage = profile::stage("blend");
    let total_scored = scores.score.len();
    for (blended, (node, raw)) in scores.score.into_iter().enumerate() {
        if deadline.expired() {
            truncated = true;
            let remaining = (total_scored - blended) as u64;
            pstage.truncated(remaining);
            trace::note(format!(
                "truncated: deadline hit, ~{remaining} candidates unscored"
            ));
            break;
        }
        let Ok(n) = graph.node(node) else { continue };
        if !config.result_kinds.contains(&n.kind()) {
            continue;
        }
        let context = raw / max;
        let text = text_score.get(&node).copied().unwrap_or(0.0);
        let score = config.text_weight * text + config.context_weight * context;
        let hit = ScoredHit {
            node,
            kind: n.kind(),
            key: n.key().to_owned(),
            title: n.attrs().get_str("title").map(str::to_owned),
            score,
            text_score: text,
            context_score: context,
        };
        match best_by_key.get_mut(n.key()) {
            Some(existing) if existing.score >= score => {}
            _ => {
                best_by_key.insert(n.key().to_owned(), hit);
            }
        }
    }
    let mut hits: Vec<ScoredHit> = best_by_key.into_values().collect();
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.node.cmp(&b.node))
    });
    hits.truncate(config.max_results);
    pstage.rows(total_scored, hits.len());
    drop(pstage);
    drop(stage);
    let elapsed = deadline.elapsed();
    // Same use case as the expansion variant, so it samples the same
    // latency histogram; PPR runs to a fixed point, so truncation can
    // only come from the scoring loop's deadline check above.
    crate::slo::observe(
        browser.obs(),
        "context",
        "query.context.latency_us",
        elapsed,
        deadline.budget(),
        truncated,
    );
    span.finish_with(elapsed);
    prof.finish_with(elapsed);
    QueryResult {
        hits,
        elapsed,
        truncated,
    }
}

/// The purely textual baseline (§2.1's "currently"): TF-IDF hits only, no
/// provenance. Used by experiment E4 to show what contextual search adds.
pub fn textual_history_search(
    browser: &ProvenanceBrowser,
    query: &str,
    config: &ContextualConfig,
) -> QueryResult {
    let _ctx = trace::ensure(&config.clock);
    let span = trace::span("query.textual");
    // The baseline deliberately runs unbounded — it exists to show what
    // the paper's "currently" behavior costs, budget and all.
    let prof = profile::begin(&TEXTUAL_PLAN, &config.clock, None);
    let deadline = crate::slo::Deadline::unbounded(&config.clock);
    let graph = browser.graph();
    let mut best_by_key: std::collections::HashMap<String, ScoredHit> =
        std::collections::HashMap::new();
    let text_hits = {
        let pstage = profile::stage("text_search");
        let text_hits = browser.text_index().search(query);
        pstage.rows(query.split_whitespace().count(), text_hits.len());
        text_hits
    };
    let pstage = profile::stage("rank");
    let candidates = text_hits.len();
    for (doc, score) in text_hits {
        let node = NodeId::new(doc);
        let Ok(n) = graph.node(node) else { continue };
        if !config.result_kinds.contains(&n.kind()) {
            continue;
        }
        let hit = ScoredHit {
            node,
            kind: n.kind(),
            key: n.key().to_owned(),
            title: n.attrs().get_str("title").map(str::to_owned),
            score,
            text_score: score,
            context_score: 0.0,
        };
        match best_by_key.get_mut(n.key()) {
            Some(existing) if existing.score >= score => {}
            _ => {
                best_by_key.insert(n.key().to_owned(), hit);
            }
        }
    }
    let mut hits: Vec<ScoredHit> = best_by_key.into_values().collect();
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.node.cmp(&b.node))
    });
    hits.truncate(config.max_results);
    pstage.rows(candidates, hits.len());
    drop(pstage);
    let elapsed = deadline.elapsed();
    // A baseline, not one of the four use cases: latency sample only, no
    // deadline classification (the unbounded deadline has no budget).
    crate::slo::observe(
        browser.obs(),
        "textual",
        "query.textual.latency_us",
        elapsed,
        deadline.budget(),
        false,
    );
    span.finish_with(elapsed);
    prof.finish_with(elapsed);
    QueryResult {
        hits,
        elapsed,
        truncated: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::{BrowserEvent, CaptureConfig, NavigationCause, TabId};
    use bp_graph::Timestamp;
    use std::path::PathBuf;

    struct TempBrowser {
        browser: ProvenanceBrowser,
        dir: PathBuf,
    }
    impl TempBrowser {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "bp-query-ctx-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            TempBrowser {
                browser: ProvenanceBrowser::open(&dir, CaptureConfig::default()).unwrap(),
                dir,
            }
        }
    }
    impl Drop for TempBrowser {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }

    fn t(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    /// The §2.1 history: search rosebud → click Citizen Kane (whose text
    /// has no "rosebud"), plus an unrelated page.
    fn rosebud_history(tag: &str) -> TempBrowser {
        let mut tb = TempBrowser::new(tag);
        let b = &mut tb.browser;
        b.ingest(&BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        b.ingest(&BrowserEvent::navigate(
            t(1),
            TabId(0),
            "http://se/?q=rosebud",
            Some("rosebud - Search"),
            NavigationCause::SearchQuery {
                query: "rosebud".to_owned(),
            },
        ))
        .unwrap();
        b.ingest(&BrowserEvent::navigate(
            t(2),
            TabId(0),
            "http://films/kane",
            Some("Citizen Kane (1941)"),
            NavigationCause::Link,
        ))
        .unwrap();
        b.ingest(&BrowserEvent::navigate(
            t(3),
            TabId(0),
            "http://unrelated/cooking",
            Some("Pasta recipes"),
            NavigationCause::Typed,
        ))
        .unwrap();
        tb
    }

    #[test]
    fn textual_baseline_misses_citizen_kane() {
        let tb = rosebud_history("baseline");
        let r = textual_history_search(&tb.browser, "rosebud", &ContextualConfig::default());
        assert!(r.contains_key("http://se/?q=rosebud"));
        assert!(
            !r.contains_key("http://films/kane"),
            "the §2.1 'currently' failure: {:?}",
            r.top_keys(5)
        );
    }

    #[test]
    fn contextual_search_returns_citizen_kane() {
        let tb = rosebud_history("contextual");
        let r = contextual_history_search(&tb.browser, "rosebud", &ContextualConfig::default());
        assert!(
            r.contains_key("http://films/kane"),
            "contextual search must surface the descendant: {:?}",
            r.top_keys(10)
        );
        // The unrelated page (two weak hops away) never outranks kane.
        let kane_rank = r.rank_of_key("http://films/kane").unwrap();
        if let Some(cooking_rank) = r.rank_of_key("http://unrelated/cooking") {
            assert!(
                kane_rank < cooking_rank,
                "decay must demote distant context"
            );
        }
        // The kane hit is contextual, not textual.
        let kane = &r.hits[r.rank_of_key("http://films/kane").unwrap()];
        assert_eq!(kane.text_score, 0.0);
        assert!(kane.context_score > 0.0);
    }

    #[test]
    fn seeds_outrank_distant_context_by_default() {
        let tb = rosebud_history("ranks");
        let r = contextual_history_search(&tb.browser, "rosebud", &ContextualConfig::default());
        let search_rank = r.rank_of_key("http://se/?q=rosebud").unwrap();
        assert_eq!(search_rank, 0, "the direct textual hit stays on top");
    }

    #[test]
    fn duplicate_visits_collapse_by_key() {
        let mut tb = rosebud_history("dedup");
        let b = &mut tb.browser;
        // Revisit kane twice more.
        for s in 4..6 {
            b.ingest(&BrowserEvent::navigate(
                t(s),
                TabId(0),
                "http://films/kane",
                Some("Citizen Kane (1941)"),
                NavigationCause::BackForward,
            ))
            .unwrap();
        }
        let r = contextual_history_search(b, "kane", &ContextualConfig::default());
        let kane_hits = r
            .hits
            .iter()
            .filter(|h| h.key == "http://films/kane")
            .count();
        assert_eq!(kane_hits, 1, "one hit per URL: {:?}", r.top_keys(10));
    }

    #[test]
    fn empty_and_unknown_queries() {
        let tb = rosebud_history("empty");
        let r = contextual_history_search(&tb.browser, "", &ContextualConfig::default());
        assert!(r.hits.is_empty());
        let r =
            contextual_history_search(&tb.browser, "zzz never seen", &ContextualConfig::default());
        assert!(r.hits.is_empty());
    }

    #[test]
    fn max_results_respected() {
        let mut tb = TempBrowser::new("limit");
        let b = &mut tb.browser;
        b.ingest(&BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        for i in 0..30 {
            b.ingest(&BrowserEvent::navigate(
                t(i + 1),
                TabId(0),
                format!("http://wine{i}.example/"),
                Some("wine page"),
                NavigationCause::Link,
            ))
            .unwrap();
        }
        let config = ContextualConfig {
            max_results: 5,
            ..ContextualConfig::default()
        };
        let r = contextual_history_search(b, "wine", &config);
        assert_eq!(r.hits.len(), 5);
    }

    #[test]
    fn zero_deadline_reports_truncation() {
        let tb = rosebud_history("deadline");
        let config = ContextualConfig {
            budget: Budget::new().with_deadline(std::time::Duration::ZERO),
            ..ContextualConfig::default()
        };
        let r = contextual_history_search(&tb.browser, "rosebud", &config);
        assert!(r.truncated);
    }

    #[test]
    fn ppr_variant_finds_citizen_kane_too() {
        let tb = rosebud_history("ppr");
        let r = contextual_history_search_ppr(
            &tb.browser,
            "rosebud",
            &ContextualConfig::default(),
            &bp_graph::pagerank::PageRankConfig::default(),
        );
        assert!(
            r.contains_key("http://films/kane"),
            "PPR context must surface the descendant: {:?}",
            r.top_keys(10)
        );
        for pair in r.hits.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
        // Empty query behaves.
        let empty = contextual_history_search_ppr(
            &tb.browser,
            "",
            &ContextualConfig::default(),
            &bp_graph::pagerank::PageRankConfig::default(),
        );
        assert!(empty.hits.is_empty());
    }

    #[test]
    fn hits_blend_boosts_convergence_points() {
        // Many distinct wine journeys all arrive at one canonical page;
        // with the HITS blend on, that page outranks its textual peers.
        let mut tb = TempBrowser::new("hits");
        let b = &mut tb.browser;
        b.ingest(&BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        let hub = "http://wine-canonical.example/";
        let mut clock = 1;
        for i in 0..6 {
            b.ingest(&BrowserEvent::navigate(
                t(clock),
                TabId(0),
                format!("http://wine{i}.example/list"),
                Some("wine list"),
                NavigationCause::Typed,
            ))
            .unwrap();
            clock += 1;
            b.ingest(&BrowserEvent::navigate(
                t(clock),
                TabId(0),
                hub,
                Some("wine canonical"),
                NavigationCause::Link,
            ))
            .unwrap();
            clock += 1;
        }
        let flat = contextual_history_search(b, "wine", &ContextualConfig::default());
        let blended = contextual_history_search(
            b,
            "wine",
            &ContextualConfig {
                hits_weight: 3.0,
                ..ContextualConfig::default()
            },
        );
        let flat_rank = flat.rank_of_key(hub).expect("hub present");
        let blended_rank = blended.rank_of_key(hub).expect("hub present");
        assert!(
            blended_rank <= flat_rank,
            "HITS must not demote the convergence point ({blended_rank} vs {flat_rank})"
        );
        assert_eq!(
            blended_rank,
            0,
            "hub is the authority: {:?}",
            blended.top_keys(5)
        );
    }

    #[test]
    fn scores_sorted_descending() {
        let tb = rosebud_history("sorted");
        let r =
            contextual_history_search(&tb.browser, "rosebud search", &ContextualConfig::default());
        for pair in r.hits.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }
}
