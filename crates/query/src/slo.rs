//! Query-path observability: per-use-case latency histograms and the
//! live deadline SLO counters (`query.deadline.{hit,miss,bounded}`).
//!
//! Experiment E2 measures the deadline hit-rate offline; this module makes
//! the same number a *live* metric: every use-case query records its
//! latency sample here, and deadline-bounded runs are classified as they
//! happen, readable from `browserprov stats --metrics`.

use bp_obs::clock::{ClockHandle, Stopwatch};
use bp_obs::{Level, Obs};
use std::time::Duration;

/// A live query deadline: a running stopwatch measured against the use
/// case's optional time budget (the paper's 200 ms interactive bound).
///
/// Every public query entry point constructs one at entry and consults
/// [`Deadline::expired`] before unbounded iteration, so a query that
/// overruns degrades to a partial answer instead of blocking the UI —
/// bp-lint's L005 enforces the pattern statically.
#[derive(Debug, Clone)]
pub(crate) struct Deadline {
    sw: Stopwatch,
    budget: Option<Duration>,
}

impl Deadline {
    /// Starts the clock against `budget` (`None` never expires).
    pub(crate) fn start(clock: &ClockHandle, budget: Option<Duration>) -> Self {
        Deadline {
            sw: clock.start(),
            budget,
        }
    }

    /// Starts the clock with no budget: latency is still measured, and
    /// [`Deadline::expired`] is always `false`. The explicit marker for
    /// entry points that intentionally run unbounded (textual baselines),
    /// keeping the "I considered the deadline" decision auditable.
    pub(crate) fn unbounded(clock: &ClockHandle) -> Self {
        Deadline::start(clock, None)
    }

    /// `true` once elapsed time exceeds the budget.
    pub(crate) fn expired(&self) -> bool {
        self.budget.is_some_and(|b| self.sw.elapsed() > b)
    }

    /// Elapsed time since the query started.
    pub(crate) fn elapsed(&self) -> Duration {
        self.sw.elapsed()
    }

    /// The budget this deadline enforces, for SLO classification.
    pub(crate) fn budget(&self) -> Option<Duration> {
        self.budget
    }
}

/// Records a finished use-case query.
///
/// `latency_metric` receives an `elapsed` sample (log₂ microsecond
/// buckets). When the caller set a `deadline`, the run is classified:
/// `bounded` when the traversal truncated itself to honor the deadline
/// (the paper's "can be bound to that time" escape hatch — the query gave
/// a partial answer rather than silently overrunning), then `hit` or
/// `miss` by comparing `elapsed` against the deadline. Misses are
/// journaled: a miss means the interactive-latency envelope broke.
pub(crate) fn observe(
    obs: &Obs,
    use_case: &'static str,
    latency_metric: &'static str,
    elapsed: Duration,
    deadline: Option<Duration>,
    truncated: bool,
) {
    obs.histogram(latency_metric).record_duration(elapsed);
    offer_to_sampler(use_case, elapsed, deadline, truncated);
    let Some(deadline) = deadline else { return };
    if truncated {
        obs.counter("query.deadline.bounded").inc();
    }
    if elapsed <= deadline {
        obs.counter("query.deadline.hit").inc();
    } else {
        obs.counter("query.deadline.miss").inc();
        obs.journal().record(
            Level::Warn,
            format!("query.{use_case} exceeded its {deadline:?} deadline (took {elapsed:?})"),
        );
        bp_obs::log::warn(
            "bp_query::slo",
            "query exceeded its deadline",
            &[
                ("use_case", use_case.to_owned()),
                ("deadline", format!("{deadline:?}")),
                ("elapsed", format!("{elapsed:?}")),
            ],
        );
    }
}

/// Hands the finished request to the process-wide tail sampler (when a
/// trace context is active): the outcome-aware retention decision behind
/// `/tracez`. Deadline misses outrank truncation — a truncated query that
/// *still* blew its budget is the worse story.
pub(crate) fn offer_to_sampler(
    use_case: &'static str,
    elapsed: Duration,
    deadline: Option<Duration>,
    truncated: bool,
) {
    let Some(trace_id) = bp_obs::trace::current_id() else {
        return;
    };
    let outcome = if deadline.is_some_and(|d| elapsed > d) {
        bp_obs::sampler::TraceOutcome::DeadlineMiss
    } else if truncated {
        bp_obs::sampler::TraceOutcome::Truncated
    } else {
        bp_obs::sampler::TraceOutcome::Ok
    };
    bp_obs::sampler::global().offer(bp_obs::sampler::TraceRecord {
        trace_id,
        path: use_case,
        elapsed_us: elapsed.as_micros() as u64,
        outcome,
        unix_ms: 0,
        tree: None,
    });
}

/// The failure-path variant: the request errored out, which the tail
/// sampler retains unconditionally.
pub(crate) fn offer_error_to_sampler(use_case: &'static str, elapsed: Duration) {
    let Some(trace_id) = bp_obs::trace::current_id() else {
        return;
    };
    bp_obs::sampler::global().offer(bp_obs::sampler::TraceRecord {
        trace_id,
        path: use_case,
        elapsed_us: elapsed.as_micros() as u64,
        outcome: bp_obs::sampler::TraceOutcome::Error,
        unix_ms: 0,
        tree: None,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_expires_only_past_its_budget() {
        let (clock, mock) = ClockHandle::mock();
        let d = Deadline::start(&clock, Some(Duration::from_millis(10)));
        assert!(!d.expired());
        mock.advance(Duration::from_millis(10));
        assert!(!d.expired(), "exactly on budget is a hit, not a miss");
        mock.advance(Duration::from_millis(1));
        assert!(d.expired());
        assert_eq!(d.elapsed(), Duration::from_millis(11));
        assert_eq!(d.budget(), Some(Duration::from_millis(10)));
    }

    #[test]
    fn unbounded_deadline_never_expires() {
        let (clock, mock) = ClockHandle::mock();
        let d = Deadline::unbounded(&clock);
        mock.advance(Duration::from_secs(3600));
        assert!(!d.expired());
        assert_eq!(d.budget(), None);
        assert_eq!(d.elapsed(), Duration::from_secs(3600));
    }
}
