//! Query-path observability: per-use-case latency histograms and the
//! live deadline SLO counters (`query.deadline.{hit,miss,bounded}`).
//!
//! Experiment E2 measures the deadline hit-rate offline; this module makes
//! the same number a *live* metric: every use-case query records its
//! latency sample here, and deadline-bounded runs are classified as they
//! happen, readable from `browserprov stats --metrics`.

use bp_obs::{Level, Obs};
use std::time::Duration;

/// Records a finished use-case query.
///
/// `latency_metric` receives an `elapsed` sample (log₂ microsecond
/// buckets). When the caller set a `deadline`, the run is classified:
/// `bounded` when the traversal truncated itself to honor the deadline
/// (the paper's "can be bound to that time" escape hatch — the query gave
/// a partial answer rather than silently overrunning), then `hit` or
/// `miss` by comparing `elapsed` against the deadline. Misses are
/// journaled: a miss means the interactive-latency envelope broke.
pub(crate) fn observe(
    obs: &Obs,
    use_case: &'static str,
    latency_metric: &'static str,
    elapsed: Duration,
    deadline: Option<Duration>,
    truncated: bool,
) {
    obs.histogram(latency_metric).record_duration(elapsed);
    let Some(deadline) = deadline else { return };
    if truncated {
        obs.counter("query.deadline.bounded").inc();
    }
    if elapsed <= deadline {
        obs.counter("query.deadline.hit").inc();
    } else {
        obs.counter("query.deadline.miss").inc();
        obs.journal().record(
            Level::Warn,
            format!("query.{use_case} exceeded its {deadline:?} deadline (took {elapsed:?})"),
        );
    }
}
