//! Shared result types for history queries.

use bp_graph::{NodeId, NodeKind};
use std::time::Duration;

/// One scored history object returned by a search query.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredHit {
    /// The node.
    pub node: NodeId,
    /// Its kind.
    pub kind: NodeKind,
    /// Its primary key (URL, query, path).
    pub key: String,
    /// Its title, when present.
    pub title: Option<String>,
    /// Final ranking score (higher is better).
    pub score: f64,
    /// Textual component of the score (0 when the hit is purely
    /// contextual — the §2.1 "Citizen Kane" case).
    pub text_score: f64,
    /// Provenance-context component of the score.
    pub context_score: f64,
}

/// A ranked result list plus execution metadata.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResult {
    /// Hits, best first.
    pub hits: Vec<ScoredHit>,
    /// Wall-clock the query took.
    pub elapsed: Duration,
    /// `true` if a deadline or budget truncated the work (the paper's
    /// "can be bound to that time" escape hatch).
    pub truncated: bool,
}

impl QueryResult {
    /// Position (0-based) of the first hit whose key equals `key`.
    pub fn rank_of_key(&self, key: &str) -> Option<usize> {
        self.hits.iter().position(|h| h.key == key)
    }

    /// `true` if some hit's key equals `key`.
    pub fn contains_key(&self, key: &str) -> bool {
        self.rank_of_key(key).is_some()
    }

    /// The top `k` keys, for display.
    pub fn top_keys(&self, k: usize) -> Vec<&str> {
        self.hits.iter().take(k).map(|h| h.key.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(key: &str, score: f64) -> ScoredHit {
        ScoredHit {
            node: NodeId::new(0),
            kind: NodeKind::PageVisit,
            key: key.to_owned(),
            title: None,
            score,
            text_score: score,
            context_score: 0.0,
        }
    }

    #[test]
    fn rank_lookup() {
        let r = QueryResult {
            hits: vec![hit("a", 2.0), hit("b", 1.0)],
            elapsed: Duration::ZERO,
            truncated: false,
        };
        assert_eq!(r.rank_of_key("b"), Some(1));
        assert_eq!(r.rank_of_key("c"), None);
        assert!(r.contains_key("a"));
        assert_eq!(r.top_keys(1), vec!["a"]);
    }
}
