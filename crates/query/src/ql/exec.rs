//! Executor for the provenance query language.

use super::ast::{Filter, Query, Selector, Shape};
use bp_core::ProvenanceBrowser;
use bp_graph::traverse::{self, Budget, Direction};
use bp_graph::{NodeId, NodeKind};
use bp_obs::{trace, ClockHandle};
use core::fmt;
use std::time::Duration;

/// An execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// Human-readable description.
    pub message: String,
}

impl ExecError {
    fn new(message: impl Into<String>) -> Self {
        ExecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query execution error: {}", self.message)
    }
}

impl std::error::Error for ExecError {}

/// One result row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// The node.
    pub node: NodeId,
    /// Node kind.
    pub kind: NodeKind,
    /// Node key.
    pub key: String,
    /// Hop depth from the traversal start (0 for scans).
    pub depth: usize,
}

/// Query output.
#[derive(Debug, Clone, PartialEq)]
pub struct Rows {
    /// Result rows, in traversal/scan order.
    pub rows: Vec<Row>,
    /// Wall-clock the execution took.
    pub elapsed: Duration,
    /// `true` if the budget stopped the traversal early.
    pub truncated: bool,
}

fn resolve(browser: &ProvenanceBrowser, selector: &Selector) -> Result<NodeId, ExecError> {
    match selector {
        Selector::Id(id) => {
            let node = NodeId::new(*id);
            browser
                .graph()
                .node(node)
                .map_err(|e| ExecError::new(e.to_string()))?;
            Ok(node)
        }
        Selector::Key(key) => browser
            .store()
            .keys()
            .get(key)
            .last()
            .copied()
            .ok_or_else(|| ExecError::new(format!("no node with key {key:?}"))),
        Selector::LatestVisit(url) => browser
            .graph()
            .latest_version_of(NodeKind::PageVisit, url)
            .map(|(id, _)| id)
            .ok_or_else(|| ExecError::new(format!("no visits of {url:?}"))),
    }
}

fn passes(browser: &ProvenanceBrowser, filters: &[Filter], row: &Row) -> bool {
    filters.iter().all(|f| match f {
        Filter::Kind(kind) => row.kind == *kind,
        Filter::KeyContains(needle) => row.key.contains(needle.as_str()),
        Filter::Visits(cmp, n) => cmp.test(browser.visit_count(&row.key), *n),
        Filter::DepthLe(d) => row.depth <= *d,
    })
}

/// Executes `query` against the browser's provenance store under `budget`.
///
/// # Errors
///
/// Returns [`ExecError`] when a selector resolves to nothing.
pub fn execute(
    browser: &ProvenanceBrowser,
    query: &Query,
    budget: &Budget,
) -> Result<Rows, ExecError> {
    let clock = ClockHandle::real();
    let _ctx = trace::ensure(&clock);
    let span = trace::span("query.ql");
    let sw = clock.start();
    // Selector resolution can fail mid-shape; running it behind this
    // boundary keeps the `?` early returns from skipping the span close
    // and the tail-sampler offer (errored requests are always retained).
    let result = execute_shape(browser, query, budget);
    let elapsed = sw.elapsed();
    match result {
        Ok((rows, truncated)) => {
            crate::slo::observe(
                browser.obs(),
                "ql",
                "query.ql.latency_us",
                elapsed,
                budget.deadline(),
                truncated,
            );
            span.finish_with(elapsed);
            Ok(Rows {
                rows,
                elapsed,
                truncated,
            })
        }
        Err(e) => {
            crate::slo::offer_error_to_sampler("ql", elapsed);
            span.finish_with(elapsed);
            Err(e)
        }
    }
}

/// The shape match itself: resolves selectors (fallibly), traverses, and
/// applies filters and the limit. Returns `(rows, truncated)`.
fn execute_shape(
    browser: &ProvenanceBrowser,
    query: &Query,
    budget: &Budget,
) -> Result<(Vec<Row>, bool), ExecError> {
    let graph = browser.graph();
    let mut truncated = false;
    let candidates: Vec<Row> = match &query.shape {
        Shape::Ancestors(sel) | Shape::Descendants(sel) => {
            let node = resolve(browser, sel)?;
            let direction = if matches!(query.shape, Shape::Ancestors(_)) {
                Direction::Ancestors
            } else {
                Direction::Descendants
            };
            let traversal = traverse::bfs(
                graph,
                node,
                direction,
                bp_graph::EdgeKind::is_causal,
                budget,
            );
            truncated = traversal.truncated;
            traversal
                .reached
                .iter()
                .skip(1) // the start node is not its own ancestor
                .filter_map(|r| {
                    graph.node(r.node).ok().map(|n| Row {
                        node: r.node,
                        kind: n.kind(),
                        key: n.key().to_owned(),
                        depth: r.depth,
                    })
                })
                .collect()
        }
        Shape::Path(a, b) => {
            let from = resolve(browser, a)?;
            let to = resolve(browser, b)?;
            let path = traverse::shortest_path(graph, from, to, Direction::Ancestors)
                .or_else(|| traverse::shortest_path(graph, from, to, Direction::Descendants));
            match path {
                Some(p) => p
                    .nodes
                    .iter()
                    .enumerate()
                    .filter_map(|(depth, &node)| {
                        graph.node(node).ok().map(|n| Row {
                            node,
                            kind: n.kind(),
                            key: n.key().to_owned(),
                            depth,
                        })
                    })
                    .collect(),
                None => Vec::new(),
            }
        }
        Shape::Nodes => graph
            .nodes()
            .map(|(id, n)| Row {
                node: id,
                kind: n.kind(),
                key: n.key().to_owned(),
                depth: 0,
            })
            .collect(),
        Shape::Overlapping(sel) => {
            let node = resolve(browser, sel)?;
            let interval = *graph
                .node(node)
                .map_err(|e| ExecError::new(e.to_string()))?
                .interval();
            browser
                .store()
                .times()
                .overlapping_except(&interval, node)
                .into_iter()
                .filter_map(|id| {
                    graph.node(id).ok().map(|n| Row {
                        node: id,
                        kind: n.kind(),
                        key: n.key().to_owned(),
                        depth: 0,
                    })
                })
                .collect()
        }
    };
    let mut rows: Vec<Row> = candidates
        .into_iter()
        .filter(|row| passes(browser, &query.filters, row))
        .collect();
    if let Some(limit) = query.limit {
        rows.truncate(limit);
    }
    Ok((rows, truncated))
}

/// Parses and executes a query string in one step.
///
/// # Errors
///
/// Returns the parse error or execution error as a string-flavoured
/// [`ExecError`].
pub fn run(browser: &ProvenanceBrowser, input: &str, budget: &Budget) -> Result<Rows, ExecError> {
    let query = super::parser::parse(input).map_err(|e| ExecError::new(e.to_string()))?;
    execute(browser, &query, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::{BrowserEvent, CaptureConfig, EventKind, NavigationCause, TabId};
    use bp_graph::Timestamp;
    use std::path::PathBuf;

    struct TempBrowser {
        browser: ProvenanceBrowser,
        dir: PathBuf,
    }
    impl TempBrowser {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "bp-query-ql-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            TempBrowser {
                browser: ProvenanceBrowser::open(&dir, CaptureConfig::default()).unwrap(),
                dir,
            }
        }
    }
    impl Drop for TempBrowser {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }

    fn t(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn history(tag: &str) -> TempBrowser {
        let mut tb = TempBrowser::new(tag);
        let b = &mut tb.browser;
        b.ingest(&BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        for i in 0..3 {
            b.ingest(&BrowserEvent::navigate(
                t(1 + i),
                TabId(0),
                "http://hub/",
                Some("Hub"),
                NavigationCause::Typed,
            ))
            .unwrap();
        }
        b.ingest(&BrowserEvent::navigate(
            t(10),
            TabId(0),
            "http://leaf/",
            Some("Leaf"),
            NavigationCause::Link,
        ))
        .unwrap();
        b.ingest(&BrowserEvent::new(
            t(11),
            EventKind::Download {
                tab: TabId(0),
                path: "/dl/file.zip".to_owned(),
                bytes: 10,
            },
        ))
        .unwrap();
        tb
    }

    #[test]
    fn descendants_with_type_filter() {
        let tb = history("desc");
        let rows = run(
            &tb.browser,
            "descendants(url = \"http://hub/\") where type = download",
            &Budget::new(),
        )
        .unwrap();
        assert_eq!(rows.rows.len(), 1);
        assert_eq!(rows.rows[0].key, "/dl/file.zip");
    }

    #[test]
    fn ancestors_with_visit_filter_finds_recognizable_page() {
        let tb = history("anc");
        let dl = tb.browser.store().keys().get("/dl/file.zip")[0];
        let rows = run(
            &tb.browser,
            &format!(
                "ancestors(#{}) where type = visit and visits >= 3 limit 1",
                dl.index()
            ),
            &Budget::new(),
        )
        .unwrap();
        assert_eq!(rows.rows.len(), 1);
        assert_eq!(rows.rows[0].key, "http://hub/");
    }

    #[test]
    fn nodes_scan_with_contains() {
        let tb = history("scan");
        let rows = run(
            &tb.browser,
            "nodes where key contains \"hub\"",
            &Budget::new(),
        )
        .unwrap();
        // 3 visit versions + 1 page object.
        assert_eq!(rows.rows.len(), 4);
    }

    #[test]
    fn path_between_download_and_hub() {
        let tb = history("path");
        let dl = tb.browser.store().keys().get("/dl/file.zip")[0];
        let rows = run(
            &tb.browser,
            &format!("path(#{}, latest('http://hub/'))", dl.index()),
            &Budget::new(),
        )
        .unwrap();
        assert!(rows.rows.len() >= 3, "download → leaf → hub");
        assert_eq!(rows.rows.first().unwrap().key, "/dl/file.zip");
        assert_eq!(rows.rows.last().unwrap().key, "http://hub/");
        // Depths count along the path.
        assert_eq!(rows.rows[0].depth, 0);
    }

    #[test]
    fn overlapping_uses_the_time_index() {
        let mut tb = history("overlap");
        let b = &mut tb.browser;
        // A second tab opened while leaf is current.
        b.ingest(&BrowserEvent::tab_opened(t(20), TabId(1), None))
            .unwrap();
        b.ingest(&BrowserEvent::navigate(
            t(21),
            TabId(1),
            "http://side/",
            Some("Side"),
            NavigationCause::Typed,
        ))
        .unwrap();
        let rows = run(
            &tb.browser,
            "overlapping(latest('http://side/')) where type = visit",
            &Budget::new(),
        )
        .unwrap();
        let keys: Vec<&str> = rows.rows.iter().map(|r| r.key.as_str()).collect();
        assert!(keys.contains(&"http://leaf/"), "{keys:?}");
    }

    #[test]
    fn depth_filter_and_limit() {
        let tb = history("depth");
        let dl = tb.browser.store().keys().get("/dl/file.zip")[0];
        let all = run(
            &tb.browser,
            &format!("ancestors(#{})", dl.index()),
            &Budget::new(),
        )
        .unwrap();
        let shallow = run(
            &tb.browser,
            &format!("ancestors(#{}) where depth <= 1", dl.index()),
            &Budget::new(),
        )
        .unwrap();
        assert!(shallow.rows.len() < all.rows.len());
        let limited = run(
            &tb.browser,
            &format!("ancestors(#{}) limit 2", dl.index()),
            &Budget::new(),
        )
        .unwrap();
        assert_eq!(limited.rows.len(), 2);
    }

    #[test]
    fn errors_for_unknown_targets() {
        let tb = history("errors");
        assert!(run(&tb.browser, "ancestors(#9999)", &Budget::new()).is_err());
        assert!(run(
            &tb.browser,
            "ancestors(url = 'http://nope/')",
            &Budget::new()
        )
        .is_err());
        assert!(run(&tb.browser, "not a query", &Budget::new()).is_err());
        assert!(run(
            &tb.browser,
            "overlapping(latest('http://nope/'))",
            &Budget::new()
        )
        .is_err());
    }

    #[test]
    fn errors_still_close_the_span_and_reach_the_sampler() {
        // Regression: selector-resolution `?` returns used to drop the
        // root span without finishing it (no elapsed, no tail-sampler
        // offer). Errored runs must now close `query.ql` and land in the
        // process-wide sampler as always-kept `error` records.
        let tb = history("errspan");
        trace::set_enabled(true);
        let _ = trace::take_roots();
        let err = run(&tb.browser, "ancestors(#9999)", &Budget::new());
        let roots = trace::take_roots();
        trace::set_enabled(false);
        assert!(err.is_err());
        assert!(
            roots.iter().any(|r| r.name == "query.ql"),
            "error path must still close the root span: {roots:?}"
        );
        let retained = bp_obs::sampler::global().retained();
        assert!(
            retained
                .iter()
                .any(|r| r.path == "ql" && r.outcome == bp_obs::sampler::TraceOutcome::Error),
            "errored request must be retained by the tail sampler"
        );
    }

    #[test]
    fn unreachable_path_yields_no_rows() {
        let mut tb = history("nopath");
        let b = &mut tb.browser;
        b.ingest(&BrowserEvent::tab_opened(t(30), TabId(2), None))
            .unwrap();
        b.ingest(&BrowserEvent::navigate(
            t(31),
            TabId(2),
            "http://island/",
            None,
            NavigationCause::Typed,
        ))
        .unwrap();
        // Disable overlap edges? They connect tabs; use a node unrelated
        // causally: the island visit is connected only via overlap, which
        // path() ignores (causal edges only).
        let rows = run(
            &tb.browser,
            "path(latest('http://island/'), url = '/dl/file.zip')",
            &Budget::new(),
        )
        .unwrap();
        assert!(rows.rows.is_empty());
    }
}
