//! Tokenizer for the provenance query language.

use core::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare word: keywords and identifiers (`ancestors`, `type`, …).
    Ident(String),
    /// Integer literal.
    Number(u64),
    /// Quoted string literal (single or double quotes).
    Str(String),
    /// `#` (node-id selector sigil).
    Hash,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `=`.
    Eq,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Hash => write!(f, "#"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Eq => write!(f, "="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
        }
    }
}

/// A lexing error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `input`.
///
/// # Errors
///
/// Returns [`LexError`] on unterminated strings or unexpected characters.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes: Vec<char> = input.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '#' => {
                tokens.push(Token::Hash);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '"' | '\'' => {
                let quote = c;
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        Some(&ch) if ch == quote => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => {
                            return Err(LexError {
                                at: start,
                                message: "unterminated string".to_owned(),
                            })
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut n = 0u64;
                while let Some(d) = bytes.get(i).and_then(|c| c.to_digit(10)) {
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add(u64::from(d)))
                        .ok_or(LexError {
                            at: start,
                            message: "number too large".to_owned(),
                        })?;
                    i += 1;
                }
                tokens.push(Token::Number(n));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&ch) = bytes.get(i) {
                    if ch.is_alphanumeric() || ch == '_' {
                        s.push(ch);
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(s));
            }
            other => {
                return Err(LexError {
                    at: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_full_query() {
        let tokens = lex("ancestors(#42) where type = download and visits >= 3 limit 10").unwrap();
        assert_eq!(tokens[0], Token::Ident("ancestors".into()));
        assert_eq!(tokens[1], Token::LParen);
        assert_eq!(tokens[2], Token::Hash);
        assert_eq!(tokens[3], Token::Number(42));
        assert!(tokens.contains(&Token::Ge));
        assert_eq!(tokens.last(), Some(&Token::Number(10)));
    }

    #[test]
    fn strings_with_both_quote_styles() {
        assert_eq!(
            lex("url = \"http://a/\"").unwrap()[2],
            Token::Str("http://a/".into())
        );
        assert_eq!(lex("url = 'x y'").unwrap()[2], Token::Str("x y".into()));
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            lex(">= > <= < =").unwrap(),
            vec![Token::Ge, Token::Gt, Token::Le, Token::Lt, Token::Eq]
        );
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("@").is_err());
        assert!(lex("99999999999999999999999999").is_err());
    }

    #[test]
    fn empty_input() {
        assert!(lex("").unwrap().is_empty());
        assert!(lex("   \t\n ").unwrap().is_empty());
    }
}
