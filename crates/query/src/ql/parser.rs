//! Recursive-descent parser for the provenance query language.
//!
//! ```text
//! query    := shape where? limit?
//! shape    := ("ancestors" | "descendants" | "overlapping") "(" selector ")"
//!           | "path" "(" selector "," selector ")"
//!           | "nodes"
//! selector := "#" NUMBER
//!           | ("key" | "url") "=" STRING
//!           | "latest" "(" STRING ")"
//! where    := "where" pred ("and" pred)*
//! pred     := "type" "=" IDENT
//!           | "key" "contains" STRING
//!           | "visits" cmp NUMBER
//!           | "depth" "<=" NUMBER
//! limit    := "limit" NUMBER
//! ```

use super::ast::{Cmp, Filter, Query, Selector, Shape};
use super::lexer::{lex, Token};
use bp_graph::NodeKind;
use core::fmt;

/// A parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_token(&mut self, expected: &Token) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if &t == expected => Ok(()),
            Some(t) => Err(ParseError::new(format!("expected {expected}, found {t}"))),
            None => Err(ParseError::new(format!("expected {expected}, found end"))),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            Some(t) => Err(ParseError::new(format!("expected identifier, found {t}"))),
            None => Err(ParseError::new("expected identifier, found end")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Str(s)) => Ok(s),
            Some(t) => Err(ParseError::new(format!("expected string, found {t}"))),
            None => Err(ParseError::new("expected string, found end")),
        }
    }

    fn number(&mut self) -> Result<u64, ParseError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(n),
            Some(t) => Err(ParseError::new(format!("expected number, found {t}"))),
            None => Err(ParseError::new("expected number, found end")),
        }
    }

    fn selector(&mut self) -> Result<Selector, ParseError> {
        match self.next() {
            Some(Token::Hash) => {
                let n = self.number()?;
                let id = u32::try_from(n).map_err(|_| ParseError::new("node id exceeds u32"))?;
                Ok(Selector::Id(id))
            }
            Some(Token::Ident(word)) if word == "key" || word == "url" => {
                self.expect_token(&Token::Eq)?;
                Ok(Selector::Key(self.string()?))
            }
            Some(Token::Ident(word)) if word == "latest" => {
                self.expect_token(&Token::LParen)?;
                let url = self.string()?;
                self.expect_token(&Token::RParen)?;
                Ok(Selector::LatestVisit(url))
            }
            Some(t) => Err(ParseError::new(format!("expected selector, found {t}"))),
            None => Err(ParseError::new("expected selector, found end")),
        }
    }

    fn cmp(&mut self) -> Result<Cmp, ParseError> {
        match self.next() {
            Some(Token::Eq) => Ok(Cmp::Eq),
            Some(Token::Gt) => Ok(Cmp::Gt),
            Some(Token::Ge) => Ok(Cmp::Ge),
            Some(Token::Lt) => Ok(Cmp::Lt),
            Some(Token::Le) => Ok(Cmp::Le),
            Some(t) => Err(ParseError::new(format!("expected comparison, found {t}"))),
            None => Err(ParseError::new("expected comparison, found end")),
        }
    }

    fn predicate(&mut self) -> Result<Filter, ParseError> {
        let field = self.ident()?;
        match field.as_str() {
            "type" => {
                self.expect_token(&Token::Eq)?;
                let name = self.ident()?;
                let kind = NodeKind::from_label(&name)
                    .ok_or_else(|| ParseError::new(format!("unknown node type {name}")))?;
                Ok(Filter::Kind(kind))
            }
            "key" | "url" => {
                let word = self.ident()?;
                if word != "contains" {
                    return Err(ParseError::new(format!(
                        "expected 'contains' after key, found {word}"
                    )));
                }
                Ok(Filter::KeyContains(self.string()?))
            }
            "visits" => {
                let cmp = self.cmp()?;
                let n = self.number()?;
                let n = u32::try_from(n).map_err(|_| ParseError::new("visit count exceeds u32"))?;
                Ok(Filter::Visits(cmp, n))
            }
            "depth" => {
                self.expect_token(&Token::Le)?;
                let n = self.number()? as usize;
                Ok(Filter::DepthLe(n))
            }
            other => Err(ParseError::new(format!("unknown predicate field {other}"))),
        }
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        let verb = self.ident()?;
        let shape = match verb.as_str() {
            "ancestors" | "descendants" | "overlapping" => {
                self.expect_token(&Token::LParen)?;
                let sel = self.selector()?;
                self.expect_token(&Token::RParen)?;
                match verb.as_str() {
                    "ancestors" => Shape::Ancestors(sel),
                    "descendants" => Shape::Descendants(sel),
                    _ => Shape::Overlapping(sel),
                }
            }
            "path" => {
                self.expect_token(&Token::LParen)?;
                let a = self.selector()?;
                self.expect_token(&Token::Comma)?;
                let b = self.selector()?;
                self.expect_token(&Token::RParen)?;
                Shape::Path(a, b)
            }
            "nodes" => Shape::Nodes,
            other => return Err(ParseError::new(format!("unknown query verb {other}"))),
        };
        let mut filters = Vec::new();
        let mut limit = None;
        while let Some(token) = self.peek() {
            match token {
                Token::Ident(w) if w == "where" => {
                    self.next();
                    filters.push(self.predicate()?);
                    while matches!(self.peek(), Some(Token::Ident(w)) if w == "and") {
                        self.next();
                        filters.push(self.predicate()?);
                    }
                }
                Token::Ident(w) if w == "limit" => {
                    self.next();
                    limit = Some(self.number()? as usize);
                }
                t => return Err(ParseError::new(format!("unexpected trailing token {t}"))),
            }
        }
        Ok(Query {
            shape,
            filters,
            limit,
        })
    }
}

/// Parses a query string.
///
/// # Errors
///
/// Returns [`ParseError`] for lexical or syntactic problems.
pub fn parse(input: &str) -> Result<Query, ParseError> {
    let tokens = lex(input).map_err(|e| ParseError::new(e.to_string()))?;
    if tokens.is_empty() {
        return Err(ParseError::new("empty query"));
    }
    let mut parser = Parser { tokens, pos: 0 };
    parser.query()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_queries() {
        // "Find all descendants of this page that are downloads" (§2.4).
        let q = parse("descendants(url = \"http://bad/\") where type = download").unwrap();
        assert_eq!(
            q.shape,
            Shape::Descendants(Selector::Key("http://bad/".into()))
        );
        assert_eq!(q.filters, vec![Filter::Kind(NodeKind::Download)]);

        // "Find the first ancestor of this file that the user is likely
        // to recognize" — expressed as a visit-count filter + limit 1.
        let q = parse("ancestors(#42) where type = visit and visits >= 3 limit 1").unwrap();
        assert_eq!(q.shape, Shape::Ancestors(Selector::Id(42)));
        assert_eq!(q.filters.len(), 2);
        assert_eq!(q.limit, Some(1));
    }

    #[test]
    fn parses_all_shapes() {
        assert!(matches!(parse("nodes").unwrap().shape, Shape::Nodes));
        assert!(matches!(
            parse("overlapping(latest('http://a/'))").unwrap().shape,
            Shape::Overlapping(Selector::LatestVisit(_))
        ));
        assert!(matches!(
            parse("path(#1, #2)").unwrap().shape,
            Shape::Path(Selector::Id(1), Selector::Id(2))
        ));
    }

    #[test]
    fn parses_all_predicates() {
        let q = parse(
            "nodes where type = bookmark and key contains \"wine\" and visits > 2 and depth <= 3",
        )
        .unwrap();
        assert_eq!(q.filters.len(), 4);
        assert!(matches!(q.filters[1], Filter::KeyContains(ref s) if s == "wine"));
        assert!(matches!(q.filters[2], Filter::Visits(Cmp::Gt, 2)));
        assert!(matches!(q.filters[3], Filter::DepthLe(3)));
    }

    #[test]
    fn rejects_malformed_queries() {
        for bad in [
            "",
            "frobnicate(#1)",
            "ancestors #1",
            "ancestors(#1) where",
            "ancestors(#1) where type = spaceship",
            "ancestors(#1) where key likes \"x\"",
            "nodes limit",
            "ancestors(#1) garbage",
            "path(#1)",
            "ancestors(#99999999999)",
            "nodes where depth > 3", // depth only supports <=
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn url_and_key_are_synonyms() {
        assert_eq!(
            parse("ancestors(url = 'x')").unwrap().shape,
            parse("ancestors(key = 'x')").unwrap().shape
        );
    }
}
