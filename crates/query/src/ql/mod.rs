//! A small query language for the provenance store.
//!
//! §2.4 frames lineage questions as *path queries* over the provenance
//! graph. This module gives them concrete syntax:
//!
//! ```text
//! descendants(url = "http://bad/") where type = download
//! ancestors(#42) where type = visit and visits >= 3 limit 1
//! overlapping(latest("http://wine/")) where key contains "ticket"
//! nodes where type = search_term
//! path(#42, latest("http://forum/"))
//! ```
//!
//! [`parse`] builds the [`ast`], [`execute`]/[`run`] evaluate it against a
//! [`bp_core::ProvenanceBrowser`] under a traversal [`bp_graph::traverse::Budget`].

pub mod ast;
pub mod exec;
pub mod lexer;
pub mod parser;

pub use ast::{Cmp, Filter, Query, Selector, Shape};
pub use exec::{execute, run, ExecError, Row, Rows};
pub use lexer::{lex, LexError, Token};
pub use parser::{parse, ParseError};
