//! Abstract syntax of the provenance query language.
//!
//! The language covers the paper's query shapes directly: ancestor/
//! descendant walks ("find all descendants of this page that are
//! downloads", §2.4), path queries, node scans, and interval-overlap
//! queries (§2.3), each with a `where` filter and a `limit`.

use bp_graph::NodeKind;

/// A complete query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The traversal/scan shape.
    pub shape: Shape,
    /// Conjunctive filters applied to candidate nodes.
    pub filters: Vec<Filter>,
    /// Maximum rows returned (`None` = unlimited).
    pub limit: Option<usize>,
}

/// The query's traversal shape.
#[derive(Debug, Clone, PartialEq)]
pub enum Shape {
    /// `ancestors(sel)` — causal lineage of the selected node.
    Ancestors(Selector),
    /// `descendants(sel)` — everything derived from the selected node.
    Descendants(Selector),
    /// `path(sel, sel)` — shortest derivation path between two nodes.
    Path(Selector, Selector),
    /// `nodes` — scan all nodes.
    Nodes,
    /// `overlapping(sel)` — nodes whose interval overlaps the selected
    /// node's interval.
    Overlapping(Selector),
}

/// How a query names a node.
#[derive(Debug, Clone, PartialEq)]
pub enum Selector {
    /// `#42` — by raw node id.
    Id(u32),
    /// `key = "..."` / `url = "..."` — newest node with this key.
    Key(String),
    /// `latest("...")` — latest visit version of a URL.
    LatestVisit(String),
}

/// One `where` predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// `type = download`.
    Kind(NodeKind),
    /// `key contains "wine"`.
    KeyContains(String),
    /// `visits >= 3` (visit count of the node's key).
    Visits(Cmp, u32),
    /// `depth <= 4` (hops from the traversal start; 0 for scans).
    DepthLe(usize),
}

impl core::fmt::Display for Query {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.shape)?;
        for (i, filter) in self.filters.iter().enumerate() {
            write!(f, " {} {filter}", if i == 0 { "where" } else { "and" })?;
        }
        if let Some(limit) = self.limit {
            write!(f, " limit {limit}")?;
        }
        Ok(())
    }
}

impl core::fmt::Display for Shape {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Shape::Ancestors(s) => write!(f, "ancestors({s})"),
            Shape::Descendants(s) => write!(f, "descendants({s})"),
            Shape::Path(a, b) => write!(f, "path({a}, {b})"),
            Shape::Nodes => write!(f, "nodes"),
            Shape::Overlapping(s) => write!(f, "overlapping({s})"),
        }
    }
}

impl core::fmt::Display for Selector {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Selector::Id(id) => write!(f, "#{id}"),
            Selector::Key(k) => write!(f, "key = {k:?}"),
            Selector::LatestVisit(url) => write!(f, "latest({url:?})"),
        }
    }
}

impl core::fmt::Display for Filter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Filter::Kind(kind) => write!(f, "type = {}", kind.label()),
            Filter::KeyContains(s) => write!(f, "key contains {s:?}"),
            Filter::Visits(cmp, n) => write!(f, "visits {cmp} {n}"),
            Filter::DepthLe(d) => write!(f, "depth <= {d}"),
        }
    }
}

impl core::fmt::Display for Cmp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Cmp::Eq => "=",
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
            Cmp::Lt => "<",
            Cmp::Le => "<=",
        })
    }
}

/// Comparison operator for numeric predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `=`
    Eq,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
}

impl Cmp {
    /// Applies the comparison.
    pub fn test(self, left: u32, right: u32) -> bool {
        match self {
            Cmp::Eq => left == right,
            Cmp::Gt => left > right,
            Cmp::Ge => left >= right,
            Cmp::Lt => left < right,
            Cmp::Le => left <= right,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn display_roundtrips_the_paper_queries() {
        for q in [
            "descendants(key = \"http://bad/\") where type = download",
            "ancestors(#42) where type = visit and visits >= 3 limit 1",
            "overlapping(latest(\"http://wine/\")) where key contains \"ticket\"",
            "nodes where depth <= 2 limit 10",
            "path(#1, #2)",
        ] {
            let parsed = super::super::parser::parse(q).unwrap();
            let printed = parsed.to_string();
            assert_eq!(
                super::super::parser::parse(&printed).unwrap(),
                parsed,
                "{q}"
            );
        }
    }

    fn selector_strategy() -> impl Strategy<Value = Selector> {
        prop_oneof![
            any::<u32>().prop_map(Selector::Id),
            "[a-z0-9:/._-]{1,30}".prop_map(Selector::Key),
            "[a-z0-9:/._-]{1,30}".prop_map(Selector::LatestVisit),
        ]
    }

    fn filter_strategy() -> impl Strategy<Value = Filter> {
        prop_oneof![
            (0u8..7).prop_map(|c| Filter::Kind(bp_graph::NodeKind::from_code(c).unwrap())),
            "[a-z0-9/._-]{1,20}".prop_map(Filter::KeyContains),
            (
                prop_oneof![
                    Just(Cmp::Eq),
                    Just(Cmp::Gt),
                    Just(Cmp::Ge),
                    Just(Cmp::Lt),
                    Just(Cmp::Le)
                ],
                any::<u32>()
            )
                .prop_map(|(c, n)| Filter::Visits(c, n)),
            (0usize..100).prop_map(Filter::DepthLe),
        ]
    }

    fn query_strategy() -> impl Strategy<Value = Query> {
        let shape = prop_oneof![
            selector_strategy().prop_map(Shape::Ancestors),
            selector_strategy().prop_map(Shape::Descendants),
            (selector_strategy(), selector_strategy()).prop_map(|(a, b)| Shape::Path(a, b)),
            Just(Shape::Nodes),
            selector_strategy().prop_map(Shape::Overlapping),
        ];
        (
            shape,
            prop::collection::vec(filter_strategy(), 0..4),
            prop::option::of(0usize..1000),
        )
            .prop_map(|(shape, filters, limit)| Query {
                shape,
                filters,
                limit,
            })
    }

    proptest! {
        /// Any AST prints to a string that parses back to the same AST
        /// (for keys without quote/backslash characters, which the lexer's
        /// simple strings don't escape).
        #[test]
        fn display_parse_roundtrip(query in query_strategy()) {
            let printed = query.to_string();
            let parsed = super::super::parser::parse(&printed)
                .unwrap_or_else(|e| panic!("{printed:?}: {e}"));
            prop_assert_eq!(parsed, query);
        }
    }

    #[test]
    fn cmp_semantics() {
        assert!(Cmp::Eq.test(3, 3));
        assert!(Cmp::Gt.test(4, 3));
        assert!(!Cmp::Gt.test(3, 3));
        assert!(Cmp::Ge.test(3, 3));
        assert!(Cmp::Lt.test(2, 3));
        assert!(Cmp::Le.test(3, 3));
        assert!(!Cmp::Le.test(4, 3));
    }
}
