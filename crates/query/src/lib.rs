//! # bp-query — the paper's use-case queries
//!
//! The four §2 use cases of *The Case for Browser Provenance*, implemented
//! exactly as §4 describes, over the `bp-core` provenance store:
//!
//! | Use case | Paper's description (§4) | Here |
//! |---|---|---|
//! | Contextual history search (§2.1) | "a graph neighborhood expansion algorithm, similar to … HITS" | [`contextual_history_search`] |
//! | Personalizing web search (§2.2) | "term frequency analysis on the results of a contextual history search" | [`personalize_query`] |
//! | Time-contextual history search (§2.3) | "a query over time relationships" | [`time_contextual_search`] |
//! | Download lineage (§2.4) | "a breadth-first search over a node's ancestors" | [`first_recognizable_ancestor`], [`downloads_descending_from`] |
//!
//! Every query takes a [`bp_graph::traverse::Budget`], reproducing the
//! paper's latency claim that queries "complete in less than 200 ms in the
//! majority of cases and can be **bound** to that time in the remaining
//! cases" (§4).
//!
//! The [`ql`] module adds a small textual query language for ad-hoc path
//! queries (`ancestors(#42) where type = download`).
//!
//! # Example: the rosebud query (§2.1)
//!
//! ```
//! use bp_core::{ProvenanceBrowser, BrowserEvent, NavigationCause, TabId, CaptureConfig};
//! use bp_query::{contextual_history_search, ContextualConfig};
//! use bp_graph::Timestamp;
//!
//! # fn main() -> Result<(), bp_core::CoreError> {
//! let dir = std::env::temp_dir().join(format!("bp-query-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let mut browser = ProvenanceBrowser::open(&dir, CaptureConfig::default())?;
//! let t = Timestamp::from_secs(0);
//! browser.ingest(&BrowserEvent::tab_opened(t, TabId(0), None))?;
//! browser.ingest(&BrowserEvent::navigate(
//!     Timestamp::from_secs(1), TabId(0), "http://se/?q=rosebud", Some("rosebud - Search"),
//!     NavigationCause::SearchQuery { query: "rosebud".into() },
//! ))?;
//! browser.ingest(&BrowserEvent::navigate(
//!     Timestamp::from_secs(2), TabId(0), "http://films/kane", Some("Citizen Kane"),
//!     NavigationCause::Link,
//! ))?;
//! let results = contextual_history_search(&browser, "rosebud", &ContextualConfig::default());
//! assert!(results.contains_key("http://films/kane"));
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod describe;
mod lineage;
mod personalize;
pub mod ql;
mod result;
mod slo;
mod timectx;

pub use context::{
    contextual_history_search, contextual_history_search_ppr, textual_history_search,
    ContextualConfig,
};
pub use describe::{describe_origin, DescribeConfig};
pub use lineage::{
    downloads_descending_from, find_download, first_recognizable_ancestor, full_lineage,
    LineageAnswer, LineageConfig,
};
pub use personalize::{personalize_query, ExpandedQuery, PersonalizeConfig};
pub use result::{QueryResult, ScoredHit};
pub use timectx::{time_contextual_search, TimeContextConfig};

#[cfg(test)]
mod proptests {
    use super::*;
    use bp_core::{
        BrowserEvent, CaptureConfig, EventKind, NavigationCause, ProvenanceBrowser, TabId,
    };
    use bp_graph::{NodeKind, Timestamp};
    use proptest::prelude::*;
    use std::path::PathBuf;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "bp-query-prop-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&path);
            TempDir(path)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// A browsing script: per step, navigate somewhere by some cause and
    /// occasionally download.
    fn build_browser(tag: &str, steps: &[(u8, u8, bool)]) -> (TempDir, ProvenanceBrowser) {
        let dir = TempDir::new(tag);
        let mut b = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
        b.ingest(&BrowserEvent::tab_opened(Timestamp::EPOCH, TabId(0), None))
            .unwrap();
        let mut clock = 0i64;
        for (i, &(url, cause, download)) in steps.iter().enumerate() {
            clock += 10;
            let cause = match cause % 4 {
                0 => NavigationCause::Link,
                1 => NavigationCause::Typed,
                2 => NavigationCause::SearchQuery {
                    query: format!("topic{}", url % 4),
                },
                _ => NavigationCause::BackForward,
            };
            b.ingest(&BrowserEvent::navigate(
                Timestamp::from_secs(clock),
                TabId(0),
                format!("http://site{url}.example/page"),
                Some(&format!("Page about topic{}", url % 4)),
                cause,
            ))
            .unwrap();
            if download {
                clock += 1;
                b.ingest(&BrowserEvent::new(
                    Timestamp::from_secs(clock),
                    EventKind::Download {
                        tab: TabId(0),
                        path: format!("/dl/file-{i}.bin"),
                        bytes: 1,
                    },
                ))
                .unwrap();
            }
        }
        (dir, b)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// Every lineage answer is a real path: consecutive path nodes are
        /// joined by live edges, the path starts at the download, and the
        /// endpoint satisfies the recognizability predicate.
        #[test]
        fn lineage_paths_are_valid(steps in prop::collection::vec((0u8..6, any::<u8>(), any::<bool>()), 3..40)) {
            let (_dir, browser) = build_browser("lineage", &steps);
            let config = LineageConfig {
                recognizable_visits: 2,
                ..LineageConfig::default()
            };
            let downloads: Vec<_> = browser
                .graph()
                .nodes_of_kind(NodeKind::Download)
                .collect();
            for dl in downloads {
                let Some(answer) = first_recognizable_ancestor(&browser, dl, &config) else {
                    continue;
                };
                prop_assert_eq!(answer.path.nodes.first().copied(), Some(dl));
                prop_assert_eq!(answer.path.nodes.last().copied(), Some(answer.ancestor));
                prop_assert!(answer.visit_count >= 2);
                prop_assert_eq!(answer.path.edges.len(), answer.path.nodes.len() - 1);
                for (i, &eid) in answer.path.edges.iter().enumerate() {
                    let e = browser.graph().edge(eid).unwrap();
                    let (a, b) = (answer.path.nodes[i], answer.path.nodes[i + 1]);
                    prop_assert!(
                        (e.src() == a && e.dst() == b) || (e.src() == b && e.dst() == a),
                        "path step {i} not joined by edge {eid}"
                    );
                }
            }
        }

        /// Contextual search: scores are positive and sorted, every hit's
        /// kind is in the configured result set, and hits are unique per
        /// key. The textual baseline is always a subset of contextual's
        /// keys.
        #[test]
        fn contextual_search_invariants(steps in prop::collection::vec((0u8..6, any::<u8>(), any::<bool>()), 3..40),
                                        topic in 0u8..4) {
            let (_dir, browser) = build_browser("ctx", &steps);
            let config = ContextualConfig::default();
            let query = format!("topic{topic}");
            let contextual = contextual_history_search(&browser, &query, &config);
            let textual = textual_history_search(&browser, &query, &config);
            let mut seen = std::collections::HashSet::new();
            for pair in contextual.hits.windows(2) {
                prop_assert!(pair[0].score >= pair[1].score);
            }
            for hit in &contextual.hits {
                prop_assert!(hit.score > 0.0);
                prop_assert!(config.result_kinds.contains(&hit.kind));
                prop_assert!(seen.insert(hit.key.clone()), "duplicate key {}", hit.key);
            }
            if textual.hits.len() < config.max_results && contextual.hits.len() < config.max_results {
                for hit in &textual.hits {
                    prop_assert!(
                        contextual.contains_key(&hit.key),
                        "textual hit {} lost by contextual search",
                        hit.key
                    );
                }
            }
        }

        /// The query language agrees with the library calls it wraps:
        /// `descendants(url = ..) where type = download` returns exactly
        /// `downloads_descending_from`.
        #[test]
        fn ql_matches_library(steps in prop::collection::vec((0u8..6, any::<u8>(), any::<bool>()), 3..40)) {
            let (_dir, browser) = build_browser("ql", &steps);
            let url = "http://site0.example/page";
            if browser.store().keys().get(url).is_empty() {
                return Ok(());
            }
            let expected = downloads_descending_from(
                &browser,
                url,
                &bp_graph::traverse::Budget::new(),
            );
            let rows = ql::run(
                &browser,
                &format!("descendants(url = \"{url}\") where type = download"),
                &bp_graph::traverse::Budget::new(),
            )
            .unwrap();
            // QL walks from the latest node with this key; the library
            // unions all versions — so QL results ⊆ library results.
            for row in &rows.rows {
                prop_assert!(expected.iter().any(|(n, _)| *n == row.node));
            }
        }
    }
}
