//! §2.3 — Time-contextual history search.
//!
//! "A history search for 'wine associated with plane tickets' is both
//! natural to the user and likely to return the desired result" (§2.3).
//! The query has two parts: a *subject* ("wine") and a *companion
//! context* ("plane tickets") the user remembers being engaged in at the
//! time. Subject hits are kept only if their open interval overlaps (or
//! nearly overlaps) a companion hit's interval — using the §3.2 close
//! records and temporal-overlap edges that this system captures and
//! Firefox does not.

use crate::result::{QueryResult, ScoredHit};
use bp_core::ProvenanceBrowser;
use bp_graph::traverse::Budget;
use bp_graph::{EdgeKind, NodeId, NodeKind, TimeInterval};
use bp_obs::profile::{self, QueryPlan};
use bp_obs::{trace, ClockHandle};
use std::collections::HashSet;
use std::time::Duration;

/// EXPLAIN plan for [`time_contextual_search`].
static TIMECTX_PLAN: QueryPlan = QueryPlan {
    query: "timectx",
    stages: &["text_search", "associate"],
};

/// Tuning for time-contextual search.
#[derive(Debug, Clone)]
pub struct TimeContextConfig {
    /// How far apart two intervals may be and still count as "at the same
    /// time" (the user's memory is fuzzy; default 30 minutes).
    pub gap: Duration,
    /// Maximum hits returned.
    pub max_results: usize,
    /// Node kinds eligible as subject results.
    pub result_kinds: Vec<NodeKind>,
    /// Weight multiplier when the association is an explicit
    /// temporal-overlap edge rather than interval arithmetic.
    pub edge_bonus: f64,
    /// Query budget — its deadline bounds the association scan (the
    /// paper's interactive-latency envelope).
    pub budget: Budget,
    /// Time source for the reported latency (mockable in tests).
    pub clock: ClockHandle,
}

impl Default for TimeContextConfig {
    fn default() -> Self {
        TimeContextConfig {
            gap: Duration::from_secs(30 * 60),
            max_results: 25,
            result_kinds: vec![NodeKind::PageVisit, NodeKind::Download],
            edge_bonus: 1.5,
            budget: Budget::new(),
            clock: ClockHandle::real(),
        }
    }
}

/// Finds history objects matching `subject` that were open at (about) the
/// same time as objects matching `companion`.
pub fn time_contextual_search(
    browser: &ProvenanceBrowser,
    subject: &str,
    companion: &str,
    config: &TimeContextConfig,
) -> QueryResult {
    let _ctx = trace::ensure(&config.clock);
    let span = trace::span("query.timectx");
    let prof = profile::begin(&TIMECTX_PLAN, &config.clock, config.budget.deadline());
    let deadline = crate::slo::Deadline::start(&config.clock, config.budget.deadline());
    let graph = browser.graph();

    let stage = trace::span("text_search");
    let pstage = profile::stage("text_search");
    let subject_hits = browser.text_index().search(subject);
    let companion_nodes: HashSet<NodeId> = browser
        .text_index()
        .search(companion)
        .into_iter()
        .map(|(doc, _)| NodeId::new(doc))
        .collect();
    pstage.rows(2, subject_hits.len() + companion_nodes.len());
    drop(pstage);
    drop(stage);
    if companion_nodes.is_empty() || subject_hits.is_empty() {
        let elapsed = deadline.elapsed();
        crate::slo::observe(
            browser.obs(),
            "timectx",
            "query.timectx.latency_us",
            elapsed,
            deadline.budget(),
            false,
        );
        span.finish_with(elapsed);
        prof.finish_with(elapsed);
        return QueryResult {
            hits: Vec::new(),
            elapsed,
            truncated: false,
        };
    }
    let stage = trace::span("associate");
    let pstage = profile::stage("associate");
    let subject_total = subject_hits.len();
    let companion_intervals: Vec<TimeInterval> = companion_nodes
        .iter()
        .filter_map(|&n| graph.node(n).ok().map(|node| *node.interval()))
        .collect();

    let mut best_by_key: std::collections::HashMap<String, ScoredHit> =
        std::collections::HashMap::new();
    let mut truncated = false;
    for (associated, (doc, text_score)) in subject_hits.into_iter().enumerate() {
        // The interval/edge check per subject hit is the expensive part;
        // degrade to a partial answer when the budget runs out.
        if deadline.expired() {
            truncated = true;
            let remaining = (subject_total - associated) as u64;
            pstage.truncated(remaining);
            trace::note(format!(
                "truncated: deadline hit, ~{remaining} subject hits unchecked"
            ));
            break;
        }
        let node = NodeId::new(doc);
        let Ok(n) = graph.node(node) else { continue };
        if !config.result_kinds.contains(&n.kind()) {
            continue;
        }
        // Association channel 1: interval arithmetic via close records.
        let interval_match = companion_intervals
            .iter()
            .any(|c| n.interval().within(c, config.gap));
        // Association channel 2: an explicit temporal-overlap edge into
        // the companion set (either direction).
        let edge_match = graph.neighbors(node).any(|(eid, other)| {
            graph
                .edge(eid)
                .is_ok_and(|e| e.kind() == EdgeKind::TemporalOverlap)
                && companion_nodes.contains(&other)
        });
        if !interval_match && !edge_match {
            continue;
        }
        let score = text_score * if edge_match { config.edge_bonus } else { 1.0 };
        let hit = ScoredHit {
            node,
            kind: n.kind(),
            key: n.key().to_owned(),
            title: n.attrs().get_str("title").map(str::to_owned),
            score,
            text_score,
            context_score: score - text_score,
        };
        match best_by_key.get_mut(n.key()) {
            Some(existing) if existing.score >= score => {}
            _ => {
                best_by_key.insert(n.key().to_owned(), hit);
            }
        }
    }
    let mut hits: Vec<ScoredHit> = best_by_key.into_values().collect();
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.node.cmp(&b.node))
    });
    hits.truncate(config.max_results);
    pstage.rows(subject_total, hits.len());
    drop(pstage);
    drop(stage);
    let elapsed = deadline.elapsed();
    crate::slo::observe(
        browser.obs(),
        "timectx",
        "query.timectx.latency_us",
        elapsed,
        deadline.budget(),
        truncated,
    );
    span.finish_with(elapsed);
    prof.finish_with(elapsed);
    QueryResult {
        hits,
        elapsed,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::{BrowserEvent, CaptureConfig, NavigationCause, TabId};
    use bp_graph::Timestamp;
    use std::path::PathBuf;

    struct TempBrowser {
        browser: ProvenanceBrowser,
        dir: PathBuf,
    }
    impl TempBrowser {
        fn new(tag: &str, config: CaptureConfig) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "bp-query-time-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            TempBrowser {
                browser: ProvenanceBrowser::open(&dir, config).unwrap(),
                dir,
            }
        }
    }
    impl Drop for TempBrowser {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }

    fn t(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    /// The §2.3 history: many wine pages across days, exactly one viewed
    /// while plane tickets were open in another tab.
    fn wine_history(tag: &str, config: CaptureConfig) -> (TempBrowser, String) {
        let mut tb = TempBrowser::new(tag, config);
        let b = &mut tb.browser;
        b.ingest(&BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        // Background: ten wine pages on earlier "days".
        for i in 0..10 {
            let s = i * 86_400 + 100;
            b.ingest(&BrowserEvent::navigate(
                t(s),
                TabId(0),
                format!("http://wine{i}.example/list"),
                Some("wine list and tasting notes"),
                NavigationCause::Typed,
            ))
            .unwrap();
        }
        // The moment: day 20, the special wine page + tickets tab.
        let s0 = 20 * 86_400;
        let target = "http://rare-wine.example/bottle".to_owned();
        b.ingest(&BrowserEvent::navigate(
            t(s0),
            TabId(0),
            &target,
            Some("rare wine bottle tasting"),
            NavigationCause::Typed,
        ))
        .unwrap();
        b.ingest(&BrowserEvent::tab_opened(
            t(s0 + 30),
            TabId(1),
            Some(TabId(0)),
        ))
        .unwrap();
        b.ingest(&BrowserEvent::navigate(
            t(s0 + 40),
            TabId(1),
            "http://travel.example/plane-tickets",
            Some("cheap plane tickets"),
            NavigationCause::Typed,
        ))
        .unwrap();
        // Close everything so later wine visits don't overlap.
        b.ingest(&BrowserEvent::tab_closed(t(s0 + 600), TabId(1)))
            .unwrap();
        b.ingest(&BrowserEvent::navigate(
            t(s0 + 700),
            TabId(0),
            "http://wine99.example/another",
            Some("another wine page"),
            NavigationCause::Typed,
        ))
        .unwrap();
        (tb, target)
    }

    #[test]
    fn finds_the_wine_page_open_with_tickets() {
        let (tb, target) = wine_history("find", CaptureConfig::default());
        let r = time_contextual_search(
            &tb.browser,
            "wine",
            "plane tickets",
            &TimeContextConfig::default(),
        );
        assert!(r.contains_key(&target), "got {:?}", r.top_keys(10));
        assert_eq!(
            r.rank_of_key(&target),
            Some(0),
            "the associated page ranks first: {:?}",
            r.top_keys(10)
        );
        // Background wine pages from other days are excluded.
        assert!(!r.contains_key("http://wine3.example/list"));
    }

    #[test]
    fn plain_text_search_is_swamped_but_time_context_is_not() {
        let (tb, _) = wine_history("swamp", CaptureConfig::default());
        let all_wine = tb.browser.text_index().search("wine");
        let r = time_contextual_search(
            &tb.browser,
            "wine",
            "plane tickets",
            &TimeContextConfig::default(),
        );
        assert!(
            all_wine.len() > r.hits.len(),
            "time context must shrink the candidate set ({} vs {})",
            all_wine.len(),
            r.hits.len()
        );
    }

    #[test]
    fn no_companion_match_returns_empty() {
        let (tb, _) = wine_history("nocompanion", CaptureConfig::default());
        let r = time_contextual_search(
            &tb.browser,
            "wine",
            "submarine races",
            &TimeContextConfig::default(),
        );
        assert!(r.hits.is_empty());
    }

    #[test]
    fn no_subject_match_returns_empty() {
        let (tb, _) = wine_history("nosubject", CaptureConfig::default());
        let r = time_contextual_search(
            &tb.browser,
            "submarine",
            "plane tickets",
            &TimeContextConfig::default(),
        );
        assert!(r.hits.is_empty());
    }

    #[test]
    fn firefox_like_capture_cannot_answer() {
        // Without close records every page is "always open" (§3.2), so
        // old wine pages spuriously overlap and the answer drowns.
        let (tb, target) = wine_history("firefox", CaptureConfig::firefox_like());
        let r = time_contextual_search(
            &tb.browser,
            "wine",
            "plane tickets",
            &TimeContextConfig::default(),
        );
        // The target may appear, but so does everything else — the rank-1
        // precision the provenance-aware capture achieves is lost.
        let spurious = r
            .hits
            .iter()
            .filter(|h| h.key.contains("example/list"))
            .count();
        assert!(
            spurious >= 9,
            "without closes, stale pages flood in (got {spurious}); target rank {:?}",
            r.rank_of_key(&target)
        );
    }

    #[test]
    fn gap_config_widens_the_association() {
        let (tb, _) = wine_history("gap", CaptureConfig::default());
        // The post-moment wine page (t = s0+700) is ~11 min after the
        // tickets tab closed; a huge gap admits it, the default does too
        // (30 min), but a tiny gap excludes it.
        let tight = TimeContextConfig {
            gap: Duration::from_secs(1),
            ..TimeContextConfig::default()
        };
        let r_tight = time_contextual_search(&tb.browser, "wine", "plane tickets", &tight);
        let wide = TimeContextConfig {
            gap: Duration::from_secs(3_600),
            ..TimeContextConfig::default()
        };
        let r_wide = time_contextual_search(&tb.browser, "wine", "plane tickets", &wide);
        assert!(r_wide.hits.len() >= r_tight.hits.len());
        assert!(!r_tight.contains_key("http://wine99.example/another"));
        assert!(r_wide.contains_key("http://wine99.example/another"));
    }
}
