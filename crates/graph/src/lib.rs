//! # bp-graph — the versioned browser-provenance graph
//!
//! This crate implements the graph model at the heart of *The Case for
//! Browser Provenance* (Margo & Seltzer, TaPP '09): "any browser's history
//! can be represented as a graph in which pages are nodes, relationships are
//! edges, and both nodes and edges can have attributes" (§3) — with the
//! crucial refinement that the graph is **provenance**, and therefore a DAG.
//!
//! Key pieces:
//!
//! - [`ProvenanceGraph`] — an append-only directed acyclic multigraph whose
//!   nodes are history objects ([`NodeKind`]: pages, visits, bookmarks,
//!   search terms, downloads, form entries, tabs) and whose edges are typed,
//!   time-stamped derives-from relationships ([`EdgeKind`]).
//! - **Versioning** (§3.1): revisiting a page mints a new
//!   [`Version`]ed visit instance ([`ProvenanceGraph::add_version`]) instead
//!   of closing a cycle; strict insertion rejects cycles outright.
//! - **Intervals** (§3.2): every node carries an open/close
//!   [`TimeInterval`], making "were these two pages open simultaneously?"
//!   answerable — the paper observes Firefox cannot answer it.
//! - **Algorithms**: bounded BFS lineage ([`traverse`]), Kleinberg-style
//!   [`hits`], weighted [`neighborhood`] expansion (the contextual-search
//!   primitive), [`toposort`] for invariant checking, [`stats`] and
//!   [`dot`] export.
//!
//! # Example: the "rosebud" scenario (§2.1)
//!
//! ```
//! use bp_graph::{ProvenanceGraph, Node, NodeKind, EdgeKind, Timestamp};
//! use bp_graph::neighborhood::{expand, ExpansionConfig};
//! use bp_graph::traverse::Budget;
//!
//! # fn main() -> Result<(), bp_graph::GraphError> {
//! let mut g = ProvenanceGraph::new();
//! let t = Timestamp::from_secs(1);
//! let term = g.add_node(Node::new(NodeKind::SearchTerm, "rosebud", t));
//! let search = g.add_node(Node::new(NodeKind::PageVisit, "http://se/?q=rosebud", t));
//! let kane = g.add_node(Node::new(NodeKind::PageVisit, "http://films/kane", t));
//! g.add_edge(search, term, EdgeKind::SearchResult, t)?;
//! g.add_edge(kane, search, EdgeKind::Link, t)?;
//!
//! // Citizen Kane is in the provenance neighborhood of "rosebud", so a
//! // contextual search can return it even though its text never says so.
//! let relevance = expand(&g, &[(term, 1.0)], &ExpansionConfig::default(), &Budget::new());
//! assert!(relevance.weight_of(kane) > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attr;
pub mod dot;
mod edge;
mod error;
pub mod frozen;
mod graph;
pub mod hits;
mod ids;
pub mod neighborhood;
mod node;
pub mod pagerank;
pub mod stats;
mod time;
pub mod toposort;
pub mod traverse;
pub mod tree;

pub use attr::{AttrMap, AttrValue};
pub use edge::{Edge, EdgeKind};
pub use error::GraphError;
pub use graph::ProvenanceGraph;
pub use ids::{EdgeId, NodeId, Version};
pub use node::{Node, NodeKind};
pub use time::{TimeInterval, Timestamp};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A random history-building script: each step either visits a URL from
    /// a small pool (possibly revisiting), or tries to add an edge between
    /// two random existing nodes.
    #[derive(Debug, Clone)]
    enum Step {
        Visit(u8),
        Edge(u8, u8, u8),
    }

    fn step_strategy() -> impl Strategy<Value = Step> {
        prop_oneof![
            (0u8..20).prop_map(Step::Visit),
            (any::<u8>(), any::<u8>(), 0u8..15).prop_map(|(a, b, k)| Step::Edge(a, b, k)),
        ]
    }

    fn run_script(steps: &[Step]) -> ProvenanceGraph {
        let mut g = ProvenanceGraph::new();
        let mut clock = 0i64;
        for step in steps {
            clock += 1;
            match step {
                Step::Visit(url) => {
                    g.add_version(
                        NodeKind::PageVisit,
                        &format!("http://p{url}/"),
                        Timestamp::from_secs(clock),
                    );
                }
                Step::Edge(a, b, k) => {
                    let n = g.node_count() as u32;
                    if n == 0 {
                        continue;
                    }
                    // Errors (cycles, self-loops) are fine; commits must
                    // preserve the invariant.
                    let _ = g.add_edge(
                        NodeId::new(*a as u32 % n),
                        NodeId::new(*b as u32 % n),
                        EdgeKind::from_code(*k).unwrap_or(EdgeKind::Link),
                        Timestamp::from_secs(clock),
                    );
                }
            }
        }
        g
    }

    proptest! {
        /// Whatever script runs, the graph must remain acyclic — edges that
        /// would cycle are rejected, revisits version instead of cycling.
        #[test]
        fn graph_is_always_acyclic(steps in prop::collection::vec(step_strategy(), 1..120)) {
            let g = run_script(&steps);
            prop_assert!(g.verify_acyclic());
        }

        /// Versioning is monotone: each add_version for the same key yields
        /// version numbers 0, 1, 2, ... and distinct node ids, chained by
        /// VersionOf edges.
        #[test]
        fn versions_are_monotone(revisits in 1usize..30) {
            let mut g = ProvenanceGraph::new();
            let mut ids = Vec::new();
            for i in 0..revisits {
                let id = g.add_version(NodeKind::PageVisit, "http://same/", Timestamp::from_secs(i as i64));
                prop_assert_eq!(g.node(id).unwrap().version().number(), i as u32);
                ids.push(id);
            }
            ids.dedup();
            prop_assert_eq!(ids.len(), revisits);
            for (i, &id) in ids.iter().enumerate().skip(1) {
                let has_version_edge = g.parents(id).any(|(e, p)| {
                    g.edge(e).unwrap().kind() == EdgeKind::VersionOf && p == ids[i - 1]
                });
                prop_assert!(has_version_edge);
            }
        }

        /// Adjacency is consistent: every edge appears exactly once in its
        /// src's out-list and once in its dst's in-list, and degree sums
        /// equal the edge count.
        #[test]
        fn adjacency_consistent(steps in prop::collection::vec(step_strategy(), 1..100)) {
            let g = run_script(&steps);
            for (eid, e) in g.edges() {
                prop_assert_eq!(g.out_edges(e.src()).iter().filter(|&&x| x == eid).count(), 1);
                prop_assert_eq!(g.in_edges(e.dst()).iter().filter(|&&x| x == eid).count(), 1);
            }
            let out_total: usize = g.node_ids().map(|n| g.out_degree(n)).sum();
            let in_total: usize = g.node_ids().map(|n| g.in_degree(n)).sum();
            prop_assert_eq!(out_total, g.edge_count());
            prop_assert_eq!(in_total, g.edge_count());
        }

        /// BFS ancestors and pairwise reachability agree.
        #[test]
        fn bfs_matches_reachability(steps in prop::collection::vec(step_strategy(), 5..80)) {
            let g = run_script(&steps);
            if g.node_count() == 0 {
                return Ok(());
            }
            let start = NodeId::new(0);
            // ancestors() follows causal edges only, so compare against
            // reachability over the same filter by using all-kind BFS.
            let reached: std::collections::HashSet<NodeId> = traverse::bfs(
                &g,
                start,
                traverse::Direction::Ancestors,
                |_| true,
                &traverse::Budget::new(),
            )
            .node_ids()
            .collect();
            for node in g.node_ids() {
                prop_assert_eq!(reached.contains(&node), g.reachable(start, node));
            }
        }

        /// Interval overlap is symmetric and consistent with `within(0)`.
        #[test]
        fn overlap_symmetric(a_open in 0i64..1000, a_len in 0i64..1000,
                             b_open in 0i64..1000, b_len in 0i64..1000) {
            let a = TimeInterval::closed(Timestamp::from_secs(a_open), Timestamp::from_secs(a_open + a_len));
            let b = TimeInterval::closed(Timestamp::from_secs(b_open), Timestamp::from_secs(b_open + b_len));
            prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
            if a.overlaps(&b) {
                prop_assert!(a.within(&b, std::time::Duration::ZERO));
            }
        }

        /// Topological order, when it exists, respects every edge.
        #[test]
        fn toposort_respects_edges(steps in prop::collection::vec(step_strategy(), 1..100)) {
            let g = run_script(&steps);
            let order = toposort::topological_order(&g).expect("insertion keeps the graph acyclic");
            let pos: std::collections::HashMap<NodeId, usize> =
                order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
            for (_, e) in g.edges() {
                prop_assert!(pos[&e.dst()] < pos[&e.src()], "ancestor before descendant");
            }
        }
    }
}
