//! Timestamps and open/close intervals.
//!
//! Firefox time-stamps page *visits* but records no corresponding close
//! event, so "it is impossible to determine whether two pages were open
//! simultaneously; from the perspective of Firefox history, every page is
//! always open" (§3.2). This module supplies the missing piece: a
//! [`TimeInterval`] pairing an open timestamp with an optional close
//! timestamp, plus the overlap predicate that powers time-contextual search.

use core::fmt;
use std::time::Duration;

/// A point in time, in microseconds since an arbitrary epoch.
///
/// Firefox Places stores visit dates as microseconds since the Unix epoch
/// (`PRTime`); we keep the same unit so size accounting against the Places
/// baseline is apples-to-apples.
///
/// # Examples
///
/// ```
/// use bp_graph::Timestamp;
/// let t = Timestamp::from_micros(1_000_000);
/// assert_eq!(t.as_secs(), 1);
/// assert!(t < t.plus_micros(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(i64);

impl Timestamp {
    /// The zero timestamp (the epoch itself).
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Creates a timestamp from microseconds since the epoch.
    #[inline]
    pub const fn from_micros(micros: i64) -> Self {
        Timestamp(micros)
    }

    /// Creates a timestamp from whole seconds since the epoch.
    #[inline]
    pub const fn from_secs(secs: i64) -> Self {
        Timestamp(secs * 1_000_000)
    }

    /// Returns microseconds since the epoch.
    #[inline]
    pub const fn as_micros(self) -> i64 {
        self.0
    }

    /// Returns whole seconds since the epoch (truncating).
    #[inline]
    pub const fn as_secs(self) -> i64 {
        self.0 / 1_000_000
    }

    /// Returns this timestamp advanced by `micros` microseconds.
    #[inline]
    #[must_use]
    pub const fn plus_micros(self, micros: i64) -> Self {
        Timestamp(self.0 + micros)
    }

    /// Returns this timestamp advanced by a [`Duration`].
    #[inline]
    #[must_use]
    pub fn plus(self, d: Duration) -> Self {
        Timestamp(self.0 + d.as_micros() as i64)
    }

    /// Returns the absolute distance between two timestamps.
    #[inline]
    pub fn distance(self, other: Timestamp) -> Duration {
        Duration::from_micros((self.0 - other.0).unsigned_abs())
    }

    /// Signed difference `self - other` in microseconds.
    #[inline]
    pub const fn micros_since(self, other: Timestamp) -> i64 {
        self.0 - other.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

/// A half-open interval during which a history object was "open".
///
/// `close` is `None` while the object is still open — e.g. a tab that has
/// not been closed, or the trailing page of a session. A still-open
/// interval extends to infinity for the purposes of [`overlaps`].
///
/// [`overlaps`]: TimeInterval::overlaps
///
/// # Examples
///
/// ```
/// use bp_graph::{TimeInterval, Timestamp};
/// let a = TimeInterval::closed(Timestamp::from_secs(0), Timestamp::from_secs(10));
/// let b = TimeInterval::closed(Timestamp::from_secs(5), Timestamp::from_secs(15));
/// let c = TimeInterval::closed(Timestamp::from_secs(11), Timestamp::from_secs(12));
/// assert!(a.overlaps(&b));
/// assert!(!a.overlaps(&c));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeInterval {
    open: Timestamp,
    close: Option<Timestamp>,
}

impl TimeInterval {
    /// Creates an interval that has been opened but not yet closed.
    #[inline]
    pub const fn open_at(open: Timestamp) -> Self {
        TimeInterval { open, close: None }
    }

    /// Creates a closed interval.
    ///
    /// # Panics
    ///
    /// Panics if `close` precedes `open`; a page cannot close before it
    /// opens.
    #[inline]
    pub fn closed(open: Timestamp, close: Timestamp) -> Self {
        assert!(close >= open, "interval closes before it opens");
        TimeInterval {
            open,
            close: Some(close),
        }
    }

    /// The opening timestamp.
    #[inline]
    pub const fn open(&self) -> Timestamp {
        self.open
    }

    /// The closing timestamp, if the interval has been closed.
    #[inline]
    pub const fn close(&self) -> Option<Timestamp> {
        self.close
    }

    /// Returns `true` if the interval has not been closed.
    #[inline]
    pub const fn is_open(&self) -> bool {
        self.close.is_none()
    }

    /// Closes the interval at `close`.
    ///
    /// # Panics
    ///
    /// Panics if `close` precedes the opening timestamp.
    #[inline]
    pub fn close_at(&mut self, close: Timestamp) {
        assert!(close >= self.open, "interval closes before it opens");
        self.close = Some(close);
    }

    /// Duration of the interval, or `None` if it is still open.
    #[inline]
    pub fn duration(&self) -> Option<Duration> {
        self.close.map(|c| c.distance(self.open))
    }

    /// Returns `true` if the two intervals share any instant.
    ///
    /// Still-open intervals are treated as extending to infinity, matching
    /// the paper's observation that without close records "every page is
    /// always open" — here only genuinely unclosed pages behave that way.
    #[inline]
    pub fn overlaps(&self, other: &TimeInterval) -> bool {
        let self_ends_before_other_starts = matches!(self.close, Some(c) if c < other.open);
        let other_ends_before_self_starts = matches!(other.close, Some(c) if c < self.open);
        !(self_ends_before_other_starts || other_ends_before_self_starts)
    }

    /// Returns `true` if `t` lies inside the interval.
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.open && self.close.is_none_or(|c| t <= c)
    }

    /// Returns `true` if the two intervals are within `gap` of one another
    /// (overlapping intervals trivially satisfy this).
    ///
    /// Time-contextual search (§2.3) treats pages viewed "within a similar
    /// time span" as related even when their open intervals do not strictly
    /// overlap; `gap` sets how generous that span is.
    pub fn within(&self, other: &TimeInterval, gap: Duration) -> bool {
        if self.overlaps(other) {
            return true;
        }
        let gap_us = gap.as_micros() as i64;
        if let Some(c) = self.close {
            if other.open.micros_since(c) >= 0 && other.open.micros_since(c) <= gap_us {
                return true;
            }
        }
        if let Some(c) = other.close {
            if self.open.micros_since(c) >= 0 && self.open.micros_since(c) <= gap_us {
                return true;
            }
        }
        false
    }
}

impl fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.close {
            Some(c) => write!(f, "[{}, {}]", self.open, c),
            None => write!(f, "[{}, ...)", self.open),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_micros(500);
        assert_eq!(t.plus_micros(500).as_micros(), 1000);
        assert_eq!(
            t.plus(Duration::from_micros(500)),
            Timestamp::from_micros(1000)
        );
        assert_eq!(secs(2).micros_since(secs(1)), 1_000_000);
        assert_eq!(secs(1).distance(secs(3)), Duration::from_secs(2));
        assert_eq!(secs(3).distance(secs(1)), Duration::from_secs(2));
    }

    #[test]
    fn closed_interval_basics() {
        let iv = TimeInterval::closed(secs(1), secs(5));
        assert!(!iv.is_open());
        assert_eq!(iv.duration(), Some(Duration::from_secs(4)));
        assert!(iv.contains(secs(3)));
        assert!(!iv.contains(secs(6)));
        assert!(iv.contains(secs(1)));
        assert!(iv.contains(secs(5)));
    }

    #[test]
    fn open_interval_extends_forever() {
        let iv = TimeInterval::open_at(secs(10));
        assert!(iv.is_open());
        assert_eq!(iv.duration(), None);
        assert!(iv.contains(secs(1_000_000)));
        assert!(!iv.contains(secs(9)));
        let other = TimeInterval::closed(secs(100), secs(200));
        assert!(iv.overlaps(&other));
    }

    #[test]
    #[should_panic(expected = "closes before it opens")]
    fn closed_interval_rejects_inverted_bounds() {
        let _ = TimeInterval::closed(secs(5), secs(1));
    }

    #[test]
    fn close_at_transitions() {
        let mut iv = TimeInterval::open_at(secs(1));
        iv.close_at(secs(4));
        assert_eq!(iv.close(), Some(secs(4)));
        assert!(!iv.overlaps(&TimeInterval::open_at(secs(5))));
    }

    #[test]
    fn overlap_cases() {
        let a = TimeInterval::closed(secs(0), secs(10));
        assert!(a.overlaps(&TimeInterval::closed(secs(5), secs(15))));
        assert!(
            a.overlaps(&TimeInterval::closed(secs(10), secs(20))),
            "touching counts"
        );
        assert!(!a.overlaps(&TimeInterval::closed(secs(11), secs(12))));
        assert!(
            a.overlaps(&TimeInterval::closed(secs(2), secs(3))),
            "containment"
        );
        // Symmetry.
        let b = TimeInterval::closed(secs(5), secs(15));
        assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }

    #[test]
    fn within_gap() {
        let a = TimeInterval::closed(secs(0), secs(10));
        let b = TimeInterval::closed(secs(12), secs(20));
        assert!(!a.overlaps(&b));
        assert!(a.within(&b, Duration::from_secs(5)));
        assert!(!a.within(&b, Duration::from_secs(1)));
        assert!(b.within(&a, Duration::from_secs(5)), "within is symmetric");
    }

    #[test]
    fn both_open_intervals_always_overlap() {
        let a = TimeInterval::open_at(secs(1));
        let b = TimeInterval::open_at(secs(1_000));
        assert!(a.overlaps(&b));
    }

    #[test]
    fn display_renders_open_and_closed() {
        assert_eq!(
            TimeInterval::closed(secs(0), secs(1)).to_string(),
            "[0us, 1000000us]"
        );
        assert!(TimeInterval::open_at(secs(0)).to_string().ends_with("...)"));
    }
}
