//! Identifier newtypes for graph entities.
//!
//! All graph entities are addressed by small, copyable, index-like
//! identifiers. Newtypes keep node, edge, and version identifiers from being
//! confused with one another at compile time (a real hazard in a store whose
//! records interleave all three).

use core::fmt;

/// Identifier of a node in a [`ProvenanceGraph`](crate::ProvenanceGraph).
///
/// `NodeId`s are dense indexes assigned in insertion order and are never
/// reused; this makes them usable as array indexes in algorithm scratch
/// space (see [`crate::traverse`]).
///
/// # Examples
///
/// ```
/// use bp_graph::NodeId;
/// let id = NodeId::new(7);
/// assert_eq!(id.index(), 7);
/// assert_eq!(format!("{id}"), "n7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from a raw index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the raw dense index backing this identifier.
    #[inline]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the index widened to `usize` for direct slice indexing.
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Identifier of an edge in a [`ProvenanceGraph`](crate::ProvenanceGraph).
///
/// Like [`NodeId`], edge identifiers are dense insertion-ordered indexes.
///
/// # Examples
///
/// ```
/// use bp_graph::EdgeId;
/// assert_eq!(EdgeId::new(3).index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge identifier from a raw index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        EdgeId(index)
    }

    /// Returns the raw dense index backing this identifier.
    #[inline]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the index widened to `usize` for direct slice indexing.
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u32> for EdgeId {
    fn from(v: u32) -> Self {
        EdgeId(v)
    }
}

/// Version number of a logical object (for example, the n-th visit instance
/// of a page).
///
/// Section 3.1 of the paper breaks history cycles by *versioning*: a
/// re-visit of an already-visited page creates a new version of that page's
/// visit object rather than an edge back to the old one. `Version` counts
/// those instances, starting from zero.
///
/// # Examples
///
/// ```
/// use bp_graph::Version;
/// let v = Version::FIRST;
/// assert_eq!(v.next().number(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version(u32);

impl Version {
    /// The first version of any object.
    pub const FIRST: Version = Version(0);

    /// Creates a version from a raw counter value.
    #[inline]
    pub const fn new(number: u32) -> Self {
        Version(number)
    }

    /// Returns the raw version counter.
    #[inline]
    pub const fn number(self) -> u32 {
        self.0
    }

    /// Returns the successor version.
    ///
    /// # Panics
    ///
    /// Panics on overflow of the 32-bit version counter; a browser history
    /// cannot plausibly revisit one page four billion times.
    #[inline]
    #[must_use]
    pub const fn next(self) -> Self {
        Version(self.0 + 1)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.as_usize(), 42);
        assert_eq!(NodeId::from(42u32), id);
    }

    #[test]
    fn edge_id_roundtrip() {
        let id = EdgeId::new(9);
        assert_eq!(id.index(), 9);
        assert_eq!(EdgeId::from(9u32), id);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(EdgeId::new(0) < EdgeId::new(100));
    }

    #[test]
    fn ids_hash_distinctly() {
        let set: HashSet<NodeId> = (0..10).map(NodeId::new).collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn version_sequence() {
        let v = Version::FIRST;
        assert_eq!(v.number(), 0);
        assert_eq!(v.next(), Version::new(1));
        assert_eq!(v.next().next().number(), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::new(3).to_string(), "n3");
        assert_eq!(EdgeId::new(4).to_string(), "e4");
        assert_eq!(Version::new(5).to_string(), "v5");
    }
}
