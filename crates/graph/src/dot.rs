//! Graphviz DOT export.
//!
//! Early history-visualization work (Ayers & Stasko, cited in §3.1) rendered
//! the history graph for users; DOT export gives the examples and the CLI a
//! way to do the same with standard tooling.

use crate::graph::ProvenanceGraph;
use crate::node::NodeKind;
use std::fmt::Write as _;

/// Options controlling [`to_dot`].
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name emitted in the header.
    pub name: String,
    /// Include edge-kind labels.
    pub edge_labels: bool,
    /// Truncate node keys to this many characters for readability.
    pub max_key_len: usize,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "provenance".to_owned(),
            edge_labels: true,
            max_key_len: 40,
        }
    }
}

/// Renders the graph in Graphviz DOT format.
///
/// Node shape encodes kind (box = page/visit, ellipse = search term,
/// note = download, diamond = bookmark) so the §2 scenarios read at a
/// glance.
pub fn to_dot(graph: &ProvenanceGraph, options: &DotOptions) -> String {
    to_dot_filtered(graph, options, |_| true)
}

/// [`to_dot`] restricted to nodes for which `include` returns `true`
/// (edges render only when both endpoints are included). Histories grow to
/// tens of thousands of nodes; callers typically pass a BFS neighborhood.
pub fn to_dot_filtered(
    graph: &ProvenanceGraph,
    options: &DotOptions,
    mut include: impl FnMut(crate::NodeId) -> bool,
) -> String {
    let mut included = vec![false; graph.node_count()];
    for id in graph.node_ids() {
        included[id.as_usize()] = include(id);
    }
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(&options.name));
    let _ = writeln!(out, "  rankdir=BT;");
    for (id, node) in graph.nodes() {
        if !included[id.as_usize()] {
            continue;
        }
        let mut key = node.key().to_owned();
        if key.len() > options.max_key_len {
            key.truncate(options.max_key_len);
            key.push('…');
        }
        let shape = match node.kind() {
            NodeKind::Page | NodeKind::PageVisit => "box",
            NodeKind::SearchTerm => "ellipse",
            NodeKind::Download => "note",
            NodeKind::Bookmark => "diamond",
            NodeKind::FormEntry => "parallelogram",
            NodeKind::Tab => "folder",
        };
        let _ = writeln!(
            out,
            "  {} [label=\"{}\\n{}\" shape={}];",
            id.index(),
            escape(&key),
            node.kind(),
            shape
        );
    }
    for (_, edge) in graph.edges() {
        if !included[edge.src().as_usize()] || !included[edge.dst().as_usize()] {
            continue;
        }
        if options.edge_labels {
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"{}\"];",
                edge.src().index(),
                edge.dst().index(),
                edge.kind()
            );
        } else {
            let _ = writeln!(out, "  {} -> {};", edge.src().index(), edge.dst().index());
        }
    }
    out.push_str("}\n");
    out
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::EdgeKind;
    use crate::node::Node;
    use crate::time::Timestamp;

    #[test]
    fn renders_nodes_and_edges() {
        let mut g = ProvenanceGraph::new();
        let a = g.add_node(Node::new(NodeKind::SearchTerm, "rosebud", Timestamp::EPOCH));
        let b = g.add_node(Node::new(
            NodeKind::PageVisit,
            "http://films/kane",
            Timestamp::from_secs(1),
        ));
        g.add_edge(b, a, EdgeKind::SearchResult, Timestamp::from_secs(1))
            .unwrap();
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.starts_with("digraph provenance {"));
        assert!(dot.contains("rosebud"));
        assert!(dot.contains("shape=ellipse"));
        assert!(dot.contains("1 -> 0 [label=\"search_result\"]"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn escapes_quotes_and_truncates_long_keys() {
        let mut g = ProvenanceGraph::new();
        g.add_node(Node::new(
            NodeKind::Page,
            format!("http://x/{}\"quoted\"", "a".repeat(100)),
            Timestamp::EPOCH,
        ));
        let dot = to_dot(
            &g,
            &DotOptions {
                max_key_len: 20,
                ..DotOptions::default()
            },
        );
        assert!(dot.contains('…'));
        assert!(!dot.contains("\"quoted\""), "quotes must be escaped");
    }

    #[test]
    fn edge_labels_can_be_disabled() {
        let mut g = ProvenanceGraph::new();
        let a = g.add_node(Node::new(NodeKind::Page, "a", Timestamp::EPOCH));
        let b = g.add_node(Node::new(NodeKind::Page, "b", Timestamp::EPOCH));
        g.add_edge(b, a, EdgeKind::Link, Timestamp::EPOCH).unwrap();
        let dot = to_dot(
            &g,
            &DotOptions {
                edge_labels: false,
                ..DotOptions::default()
            },
        );
        assert!(dot.contains("1 -> 0;"));
        assert!(!dot.contains("label=\"link\""));
    }

    #[test]
    fn filtered_export_drops_excluded_nodes_and_their_edges() {
        let mut g = ProvenanceGraph::new();
        let a = g.add_node(Node::new(NodeKind::Page, "keep-a", Timestamp::EPOCH));
        let b = g.add_node(Node::new(NodeKind::Page, "keep-b", Timestamp::EPOCH));
        let c = g.add_node(Node::new(NodeKind::Page, "drop-c", Timestamp::EPOCH));
        g.add_edge(b, a, EdgeKind::Link, Timestamp::EPOCH).unwrap();
        g.add_edge(c, b, EdgeKind::Link, Timestamp::EPOCH).unwrap();
        let dot = to_dot_filtered(&g, &DotOptions::default(), |n| n != c);
        assert!(dot.contains("keep-a"));
        assert!(dot.contains("keep-b"));
        assert!(!dot.contains("drop-c"));
        assert!(dot.contains("1 -> 0"));
        assert!(!dot.contains("2 -> 1"), "edge to excluded node dropped");
    }

    #[test]
    fn sanitizes_graph_name() {
        let g = ProvenanceGraph::new();
        let dot = to_dot(
            &g,
            &DotOptions {
                name: "my graph!".to_owned(),
                ..DotOptions::default()
            },
        );
        assert!(dot.starts_with("digraph my_graph_ {"));
    }
}
