//! Error type for graph operations.

use crate::ids::{EdgeId, NodeId};
use core::fmt;

/// Errors returned by [`ProvenanceGraph`](crate::ProvenanceGraph) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node identifier did not name a node in this graph.
    UnknownNode(NodeId),
    /// An edge identifier did not name an edge in this graph.
    UnknownEdge(EdgeId),
    /// Adding the edge would have created a cycle, and the caller asked for
    /// strict (non-versioning) insertion. Provenance is by definition
    /// acyclic (§3.1).
    WouldCycle {
        /// The derived endpoint of the rejected edge.
        src: NodeId,
        /// The derivation-source endpoint of the rejected edge.
        dst: NodeId,
    },
    /// A self-loop was requested; an object cannot derive from itself.
    SelfLoop(NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(id) => write!(f, "unknown node {id}"),
            GraphError::UnknownEdge(id) => write!(f, "unknown edge {id}"),
            GraphError::WouldCycle { src, dst } => {
                write!(f, "edge {src} -> {dst} would create a provenance cycle")
            }
            GraphError::SelfLoop(id) => write!(f, "self-loop on {id} rejected"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let msgs = [
            GraphError::UnknownNode(NodeId::new(1)).to_string(),
            GraphError::UnknownEdge(EdgeId::new(2)).to_string(),
            GraphError::WouldCycle {
                src: NodeId::new(3),
                dst: NodeId::new(4),
            }
            .to_string(),
            GraphError::SelfLoop(NodeId::new(5)).to_string(),
        ];
        for m in &msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
        }
        assert!(msgs[2].contains("n3"));
        assert!(msgs[2].contains("n4"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err<E: std::error::Error + Send + Sync + 'static>(_e: E) {}
        takes_err(GraphError::SelfLoop(NodeId::new(0)));
    }
}
