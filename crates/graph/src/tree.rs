//! The link-traversal history tree.
//!
//! §3.1: "if both pages and links are versioned as new instances, and only
//! link relationships are considered, the result is a tree structure.
//! There were a number of early efforts by researchers such as Ayers and
//! Stasko to develop an interface that used this property to visualize
//! recent history; we believe it could also be used for efficient storage
//! and query."
//!
//! This module exploits the property both ways: [`HistoryTree`] extracts
//! the navigation forest (every visit has at most one navigation parent),
//! renders it for humans (the Ayers & Stasko use), and encodes it as a
//! delta-compressed parent-pointer array (the storage use — compared
//! against general edge encodings in the A2 bench family).

use crate::edge::EdgeKind;
use crate::graph::ProvenanceGraph;
use crate::ids::NodeId;
use std::fmt::Write as _;

/// Edge kinds that represent the user *arriving somewhere from somewhere*:
/// each visit has at most one such parent, which is what makes the
/// structure a tree.
fn is_navigation(kind: EdgeKind) -> bool {
    matches!(
        kind,
        EdgeKind::Link
            | EdgeKind::TypedLocation
            | EdgeKind::BookmarkClick
            | EdgeKind::Redirect
            | EdgeKind::FormSubmit
            | EdgeKind::SearchResult
            | EdgeKind::NewTab
            | EdgeKind::Reload
            | EdgeKind::BackForward
    )
}

/// The navigation forest over a provenance graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryTree {
    /// `parent[i]` is the navigation parent of node `i` (as a raw index),
    /// or `u32::MAX` for roots / non-visit nodes.
    parent: Vec<u32>,
    /// Children lists (visit nodes only).
    children: Vec<Vec<NodeId>>,
    /// Root nodes in id order (session/tree starts).
    roots: Vec<NodeId>,
}

const NO_PARENT: u32 = u32::MAX;

impl HistoryTree {
    /// Extracts the navigation forest from `graph`.
    ///
    /// Every node's parent is the target of its first navigation out-edge
    /// (the action that brought the user there). Nodes without one —
    /// session starts, search terms, bookmarks, pages — are roots if they
    /// have tree children, otherwise omitted from `roots`.
    pub fn extract(graph: &ProvenanceGraph) -> Self {
        let n = graph.node_count();
        let mut parent = vec![NO_PARENT; n];
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for node in graph.node_ids() {
            let nav_parent = graph.parents(node).find_map(|(eid, target)| {
                let kind = graph.edge(eid).ok()?.kind();
                is_navigation(kind).then_some(target)
            });
            if let Some(p) = nav_parent {
                parent[node.as_usize()] = p.index();
                children[p.as_usize()].push(node);
            }
        }
        let roots = (0..n as u32)
            .map(NodeId::new)
            .filter(|id| parent[id.as_usize()] == NO_PARENT && !children[id.as_usize()].is_empty())
            .collect();
        HistoryTree {
            parent,
            children,
            roots,
        }
    }

    /// The navigation parent of `node`, if any.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        match self.parent.get(node.as_usize()) {
            Some(&p) if p != NO_PARENT => Some(NodeId::new(p)),
            _ => None,
        }
    }

    /// The navigation children of `node`.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        self.children
            .get(node.as_usize())
            .map_or(&[], Vec::as_slice)
    }

    /// Tree roots that have at least one child.
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// Number of nodes that have a navigation parent.
    pub fn edge_count(&self) -> usize {
        self.parent.iter().filter(|&&p| p != NO_PARENT).count()
    }

    /// Depth of `node` (root = 0).
    pub fn depth(&self, node: NodeId) -> usize {
        let mut depth = 0;
        let mut current = node;
        while let Some(p) = self.parent(current) {
            depth += 1;
            current = p;
        }
        depth
    }

    /// Size of the subtree rooted at `node` (including itself).
    pub fn subtree_size(&self, node: NodeId) -> usize {
        let mut size = 0;
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            size += 1;
            stack.extend_from_slice(self.children(n));
        }
        size
    }

    /// Encodes the forest as a delta-compressed parent-pointer array —
    /// the §3.1 "efficient storage" use. Most parents are the immediately
    /// preceding node (the user walked forward), so deltas are tiny
    /// varints.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        bp_varint_write(&mut out, self.parent.len() as u64);
        for (i, &p) in self.parent.iter().enumerate() {
            if p == NO_PARENT {
                // 0 marks "no parent"; real deltas are shifted by one.
                bp_varint_write(&mut out, 0);
            } else {
                let delta = i as i64 - i64::from(p); // parents precede children
                debug_assert!(delta > 0, "tree edges point backward in id order");
                bp_varint_write(&mut out, delta as u64);
            }
        }
        out
    }

    /// Decodes an [`encode`](Self::encode)d forest.
    ///
    /// Returns `None` on malformed input.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let n = bp_varint_read(bytes, &mut pos)? as usize;
        if n > bytes.len().saturating_mul(10) {
            return None; // implausible count for the available bytes
        }
        let mut parent = vec![NO_PARENT; n];
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (i, slot) in parent.iter_mut().enumerate() {
            let v = bp_varint_read(bytes, &mut pos)?;
            if v != 0 {
                let p = (i as u64).checked_sub(v)?;
                *slot = p as u32;
                children[p as usize].push(NodeId::new(i as u32));
            }
        }
        let roots = (0..n as u32)
            .map(NodeId::new)
            .filter(|id| parent[id.as_usize()] == NO_PARENT && !children[id.as_usize()].is_empty())
            .collect();
        Some(HistoryTree {
            parent,
            children,
            roots,
        })
    }

    /// Renders the forest as ASCII art (the Ayers & Stasko visualization),
    /// up to `max_depth` levels and `max_nodes` total lines.
    pub fn render_ascii(
        &self,
        graph: &ProvenanceGraph,
        max_depth: usize,
        max_nodes: usize,
    ) -> String {
        let mut out = String::new();
        let mut printed = 0usize;
        for &root in &self.roots {
            if printed >= max_nodes {
                let _ = writeln!(out, "…");
                break;
            }
            self.render_node(graph, root, 0, max_depth, max_nodes, &mut printed, &mut out);
        }
        out
    }

    #[allow(clippy::too_many_arguments)] // internal recursion carrier
    fn render_node(
        &self,
        graph: &ProvenanceGraph,
        node: NodeId,
        depth: usize,
        max_depth: usize,
        max_nodes: usize,
        printed: &mut usize,
        out: &mut String,
    ) {
        if depth > max_depth || *printed >= max_nodes {
            return;
        }
        *printed += 1;
        let label = graph
            .node(node)
            .map(|n| {
                let mut key = n.key().to_owned();
                if key.len() > 60 {
                    key.truncate(60);
                    key.push('…');
                }
                format!("[{}] {}", n.kind(), key)
            })
            .unwrap_or_else(|_| node.to_string());
        let _ = writeln!(out, "{}{label}", "  ".repeat(depth));
        for &child in self.children(node) {
            self.render_node(graph, child, depth + 1, max_depth, max_nodes, printed, out);
        }
    }
}

// Tiny local varint (bp-graph has no dependency on bp-storage).
fn bp_varint_write(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn bp_varint_read(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut result = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        result |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(result);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Node, NodeKind};
    use crate::time::Timestamp;
    use proptest::prelude::*;

    fn t(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    /// A two-session history with branching (back + new link).
    fn sample() -> (ProvenanceGraph, Vec<NodeId>) {
        let mut g = ProvenanceGraph::new();
        let a = g.add_node(Node::new(NodeKind::PageVisit, "http://a/", t(1)));
        let b = g.add_node(Node::new(NodeKind::PageVisit, "http://b/", t(2)));
        let c = g.add_node(Node::new(NodeKind::PageVisit, "http://c/", t(3)));
        let d = g.add_node(Node::new(NodeKind::PageVisit, "http://d/", t(4)));
        let lone = g.add_node(Node::new(NodeKind::PageVisit, "http://lone/", t(9)));
        g.add_edge(b, a, EdgeKind::Link, t(2)).unwrap();
        g.add_edge(c, a, EdgeKind::Link, t(3)).unwrap(); // branched from a
        g.add_edge(d, c, EdgeKind::Link, t(4)).unwrap();
        // A non-navigation edge that must NOT become a tree edge.
        g.add_edge(d, b, EdgeKind::TemporalOverlap, t(4)).unwrap();
        (g, vec![a, b, c, d, lone])
    }

    #[test]
    fn extraction_builds_the_branching_tree() {
        let (g, ids) = sample();
        let tree = HistoryTree::extract(&g);
        assert_eq!(tree.roots(), &[ids[0]]);
        assert_eq!(tree.parent(ids[1]), Some(ids[0]));
        assert_eq!(tree.parent(ids[2]), Some(ids[0]));
        assert_eq!(tree.parent(ids[3]), Some(ids[2]));
        assert_eq!(tree.parent(ids[0]), None);
        assert_eq!(tree.parent(ids[4]), None, "lone page is not in any tree");
        assert_eq!(tree.children(ids[0]), &[ids[1], ids[2]]);
        assert_eq!(tree.edge_count(), 3);
        assert_eq!(tree.depth(ids[3]), 2);
        assert_eq!(tree.subtree_size(ids[0]), 4);
        assert_eq!(tree.subtree_size(ids[3]), 1);
    }

    #[test]
    fn overlap_edges_never_enter_the_tree() {
        let (g, ids) = sample();
        let tree = HistoryTree::extract(&g);
        // d's nav parent is c, not b (overlap edge ignored).
        assert_eq!(tree.parent(ids[3]), Some(ids[2]));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let (g, _) = sample();
        let tree = HistoryTree::extract(&g);
        let encoded = tree.encode();
        let decoded = HistoryTree::decode(&encoded).unwrap();
        assert_eq!(decoded, tree);
        // Forward-walking histories encode at ~1 byte per node.
        assert!(encoded.len() <= g.node_count() + 2);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(HistoryTree::decode(&[]).is_none());
        assert!(HistoryTree::decode(&[0xff]).is_none());
        // Parent delta pointing past the beginning.
        let mut bad = Vec::new();
        bp_varint_write(&mut bad, 2); // two nodes
        bp_varint_write(&mut bad, 5); // node 0 claims parent 0-5
        bp_varint_write(&mut bad, 0);
        assert!(HistoryTree::decode(&bad).is_none());
        // Absurd node count.
        let mut huge = Vec::new();
        bp_varint_write(&mut huge, u64::MAX);
        assert!(HistoryTree::decode(&huge).is_none());
    }

    #[test]
    fn render_shows_indented_structure() {
        let (g, _) = sample();
        let tree = HistoryTree::extract(&g);
        let art = tree.render_ascii(&g, 10, 100);
        assert!(art.contains("[visit] http://a/"));
        assert!(art.contains("  [visit] http://b/"));
        assert!(art.contains("    [visit] http://d/"));
        // Depth / node caps hold.
        let shallow = tree.render_ascii(&g, 0, 100);
        assert!(!shallow.contains("http://b/"));
        let tiny = tree.render_ascii(&g, 10, 1);
        assert_eq!(tiny.lines().count(), 1);
    }

    proptest! {
        /// For any graph built by random forward navigation, the extracted
        /// structure is a forest (each node ≤ 1 parent, no cycles, depth
        /// finite) and encode/decode is the identity.
        #[test]
        fn extracted_structure_is_a_forest(
            links in prop::collection::vec((1u8..40, 0u8..40), 1..80)
        ) {
            let mut g = ProvenanceGraph::new();
            let n = 41;
            for i in 0..n {
                g.add_node(Node::new(NodeKind::PageVisit, format!("u{i}"), t(i)));
            }
            for &(src, dst) in &links {
                let (src, dst) = (u32::from(src.max(1)), u32::from(dst) % u32::from(src.max(1)));
                let _ = g.add_edge(
                    NodeId::new(src % n as u32),
                    NodeId::new(dst),
                    EdgeKind::Link,
                    t(i64::from(src)),
                );
            }
            let tree = HistoryTree::extract(&g);
            for node in g.node_ids() {
                // Walking up terminates (depth bounded by node count).
                prop_assert!(tree.depth(node) <= g.node_count());
                // Parent link is mirrored in the children list.
                if let Some(p) = tree.parent(node) {
                    prop_assert!(tree.children(p).contains(&node));
                }
            }
            let decoded = HistoryTree::decode(&tree.encode()).unwrap();
            prop_assert_eq!(decoded, tree);
        }
    }
}
