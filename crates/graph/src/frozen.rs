//! The read-optimized execution layer: CSR snapshots, the parallel
//! PageRank kernel, frozen neighborhood expansion, and the epoch-keyed
//! score cache.
//!
//! The live [`ProvenanceGraph`] is built for capture: append-only arenas
//! plus per-node `Vec<EdgeId>` adjacency, ideal for O(1) inserts but
//! pointer-chasing for whole-graph walks. Relevance queries (personalized
//! PageRank, neighborhood expansion) iterate every edge tens of times, so
//! they run here instead, over a [`FrozenGraph`] — a compressed-sparse-row
//! snapshot with dense `u32` indexing, contiguous forward/reverse edge
//! arrays, and per-edge-kind bitsets for the automatic-edge filter.
//!
//! Snapshots are invalidated by the graph **epoch**
//! ([`ProvenanceGraph::epoch`]): every mutation bumps it, and a
//! [`FrozenHandle`] rebuilds lazily on the first read at a newer epoch.
//! Converged scores are memoized in a [`ScoreCache`] keyed by
//! `(epoch, seed-set + config fingerprint)`, so serve's steady-state query
//! thread stops recomputing identical walks — the cache can never serve
//! stale results because a mutation changes the epoch half of every key.

use crate::edge::EdgeKind;
use crate::graph::ProvenanceGraph;
use crate::ids::NodeId;
use crate::neighborhood::ExpansionConfig;
use crate::pagerank::{PageRankConfig, PageRankScores};
use crate::traverse::Budget;
use bp_obs::clock::ClockHandle;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

/// Nodes per work chunk. Fixed (never derived from the worker count) so
/// chunk boundaries — and therefore floating-point reduction order — are
/// identical at any `--jobs`, which is what keeps parallel scores
/// bit-identical to serial ones.
const CHUNK: usize = 1024;

/// Hard ceiling on kernel worker threads.
const MAX_JOBS: usize = 64;

#[inline]
fn bit_get(bits: &[u64], i: usize) -> bool {
    (bits[i >> 6] >> (i & 63)) & 1 == 1
}

#[inline]
fn bit_set(bits: &mut [u64], i: usize) {
    bits[i >> 6] |= 1 << (i & 63);
}

fn bitset_of(len: usize) -> Vec<u64> {
    vec![0u64; len.div_ceil(64)]
}

/// Base walk weight of an edge kind: temporal-overlap edges participate
/// at reduced conductance (they are association, not navigation).
#[inline]
fn base_weight(kind_code: u8) -> f64 {
    if kind_code == EdgeKind::TemporalOverlap.code() {
        0.4
    } else {
        1.0
    }
}

/// An immutable CSR snapshot of a [`ProvenanceGraph`] at one epoch.
///
/// Forward rows mirror the live graph's out-adjacency (derivations,
/// toward ancestors), reverse rows its in-adjacency (toward descendants);
/// slot order within a row matches the live graph's insertion order.
/// Relevance walks treat edges as undirected, so a node's incidence list
/// is its forward row followed by its reverse row.
pub struct FrozenGraph {
    epoch: u64,
    n: usize,
    fwd_offsets: Vec<u32>,
    fwd_targets: Vec<u32>,
    fwd_kinds: Vec<u8>,
    rev_offsets: Vec<u32>,
    rev_targets: Vec<u32>,
    rev_kinds: Vec<u8>,
    /// One bitset per [`EdgeKind`] over forward slots.
    kind_bits_fwd: Vec<Vec<u64>>,
    /// One bitset per [`EdgeKind`] over reverse slots.
    kind_bits_rev: Vec<Vec<u64>>,
    /// OR of the automatic kinds' bitsets: the `include_automatic_edges`
    /// filter is a single bit test per slot.
    automatic_fwd: Vec<u64>,
    automatic_rev: Vec<u64>,
    /// Merged per-node incidence ("pull") rows: node `i`'s forward slots
    /// followed by its reverse slots, contiguous. The PageRank kernel's
    /// inner loop walks one row per node instead of two, which is what
    /// lets it stripe the accumulation for instruction-level parallelism.
    pull_offsets: Vec<u32>,
    pull_targets: Vec<u32>,
    /// Edge kind per pull slot. Folded into `pull_base` at build time;
    /// retained so tests can audit the merged layout slot by slot.
    #[cfg_attr(not(test), allow(dead_code))]
    pull_kinds: Vec<u8>,
    /// OR of the automatic kinds over pull slots (mirrors
    /// `automatic_fwd`/`automatic_rev` on the merged layout).
    #[cfg_attr(not(test), allow(dead_code))]
    automatic_pull: Vec<u64>,
    /// Per pull slot, `w(kind) / conductance(target)` with every edge
    /// participating — the damping-free part of the PageRank pull
    /// coefficient. Computed once per snapshot so each kernel run skips
    /// an O(E) pass of divisions.
    pull_base: Vec<f64>,
    /// Same, under `include_automatic_edges = false`: automatic slots are
    /// zeroed and conductance excludes them.
    pull_base_noauto: Vec<f64>,
    /// `key_rep[i]` is the lowest node id whose key string equals node
    /// `i`'s — the canonical representative of its dedup group. Blend
    /// passes collapse multiple visit versions of one URL through this
    /// table instead of hashing key strings per candidate.
    key_rep: Vec<u32>,
}

impl std::fmt::Debug for FrozenGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrozenGraph")
            .field("epoch", &self.epoch)
            .field("nodes", &self.n)
            .field("edges", &self.fwd_targets.len())
            .finish()
    }
}

impl FrozenGraph {
    /// Snapshots `graph` into CSR form. O(V + E).
    pub fn build(graph: &ProvenanceGraph) -> FrozenGraph {
        let n = graph.node_count();
        let m = graph.edge_count();
        let mut fwd_offsets = Vec::with_capacity(n + 1);
        let mut fwd_targets = Vec::with_capacity(m);
        let mut fwd_kinds = Vec::with_capacity(m);
        let mut rev_offsets = Vec::with_capacity(n + 1);
        let mut rev_targets = Vec::with_capacity(m);
        let mut rev_kinds = Vec::with_capacity(m);
        let mut kind_bits_fwd: Vec<Vec<u64>> =
            (0..EdgeKind::ALL.len()).map(|_| bitset_of(m)).collect();
        let mut kind_bits_rev: Vec<Vec<u64>> =
            (0..EdgeKind::ALL.len()).map(|_| bitset_of(m)).collect();
        fwd_offsets.push(0);
        rev_offsets.push(0);
        for id in graph.node_ids() {
            for &eid in graph.out_edges(id) {
                // Adjacency lists only hold committed edge ids; a
                // dangling id would be a graph bug, and skipping it
                // degrades to a snapshot missing that edge.
                let Ok(e) = graph.edge(eid) else { continue };
                let slot = fwd_targets.len();
                bit_set(&mut kind_bits_fwd[e.kind().code() as usize], slot);
                fwd_targets.push(e.dst().index());
                fwd_kinds.push(e.kind().code());
            }
            fwd_offsets.push(fwd_targets.len() as u32);
            for &eid in graph.in_edges(id) {
                let Ok(e) = graph.edge(eid) else { continue };
                let slot = rev_targets.len();
                bit_set(&mut kind_bits_rev[e.kind().code() as usize], slot);
                rev_targets.push(e.src().index());
                rev_kinds.push(e.kind().code());
            }
            rev_offsets.push(rev_targets.len() as u32);
        }
        let mut automatic_fwd = bitset_of(fwd_targets.len());
        let mut automatic_rev = bitset_of(rev_targets.len());
        for kind in EdgeKind::ALL {
            if !kind.is_automatic() {
                continue;
            }
            let code = kind.code() as usize;
            for (acc, bits) in automatic_fwd.iter_mut().zip(&kind_bits_fwd[code]) {
                *acc |= bits;
            }
            for (acc, bits) in automatic_rev.iter_mut().zip(&kind_bits_rev[code]) {
                *acc |= bits;
            }
        }
        // Merged pull rows: each node's forward slots then reverse slots,
        // in the same in-row order as the split arrays.
        let total = fwd_targets.len() + rev_targets.len();
        let mut pull_offsets = Vec::with_capacity(n + 1);
        let mut pull_targets = Vec::with_capacity(total);
        let mut pull_kinds = Vec::with_capacity(total);
        let mut automatic_pull = bitset_of(total);
        pull_offsets.push(0);
        for i in 0..n {
            for s in fwd_offsets[i] as usize..fwd_offsets[i + 1] as usize {
                if bit_get(&automatic_fwd, s) {
                    bit_set(&mut automatic_pull, pull_targets.len());
                }
                pull_targets.push(fwd_targets[s]);
                pull_kinds.push(fwd_kinds[s]);
            }
            for s in rev_offsets[i] as usize..rev_offsets[i + 1] as usize {
                if bit_get(&automatic_rev, s) {
                    bit_set(&mut automatic_pull, pull_targets.len());
                }
                pull_targets.push(rev_targets[s]);
                pull_kinds.push(rev_kinds[s]);
            }
            pull_offsets.push(pull_targets.len() as u32);
        }
        // Damping-free pull coefficients, one table per automatic-edge
        // setting. Conductance counts each edge once (from its forward
        // slot) into both endpoints, mirroring the undirected walk.
        let mut cond_all = vec![0.0f64; n];
        let mut cond_noauto = vec![0.0f64; n];
        for i in 0..n {
            for s in fwd_offsets[i] as usize..fwd_offsets[i + 1] as usize {
                let w = base_weight(fwd_kinds[s]);
                let t = fwd_targets[s] as usize;
                cond_all[i] += w;
                cond_all[t] += w;
                if !bit_get(&automatic_fwd, s) {
                    cond_noauto[i] += w;
                    cond_noauto[t] += w;
                }
            }
        }
        let coeff = |w: f64, cond: f64| if cond > 0.0 { w / cond } else { 0.0 };
        let mut pull_base = Vec::with_capacity(pull_targets.len());
        let mut pull_base_noauto = Vec::with_capacity(pull_targets.len());
        for (s, &k) in pull_kinds.iter().enumerate() {
            let t = pull_targets[s] as usize;
            let w = base_weight(k);
            pull_base.push(coeff(w, cond_all[t]));
            pull_base_noauto.push(if bit_get(&automatic_pull, s) {
                0.0
            } else {
                coeff(w, cond_noauto[t])
            });
        }
        // Key-dedup groups: one string hash per node at snapshot time
        // buys hash-free dedup on every blend afterwards.
        let mut key_rep = Vec::with_capacity(n);
        let mut first_of_key: HashMap<&str, u32> = HashMap::with_capacity(n);
        for id in graph.node_ids() {
            let i = id.index();
            match graph.node(id) {
                Ok(node) => key_rep.push(*first_of_key.entry(node.key()).or_insert(i)),
                Err(_) => key_rep.push(i),
            }
        }
        FrozenGraph {
            epoch: graph.epoch(),
            n,
            fwd_offsets,
            fwd_targets,
            fwd_kinds,
            rev_offsets,
            rev_targets,
            rev_kinds,
            kind_bits_fwd,
            kind_bits_rev,
            automatic_fwd,
            automatic_rev,
            pull_offsets,
            pull_targets,
            pull_kinds,
            automatic_pull,
            pull_base,
            pull_base_noauto,
            key_rep,
        }
    }

    /// The graph epoch this snapshot was taken at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges (each edge has one forward and one reverse slot).
    pub fn edge_count(&self) -> usize {
        self.fwd_targets.len()
    }

    fn fwd_range(&self, node: usize) -> std::ops::Range<usize> {
        self.fwd_offsets[node] as usize..self.fwd_offsets[node + 1] as usize
    }

    fn rev_range(&self, node: usize) -> std::ops::Range<usize> {
        self.rev_offsets[node] as usize..self.rev_offsets[node + 1] as usize
    }

    #[cfg(test)]
    fn pull_range(&self, node: usize) -> std::ops::Range<usize> {
        self.pull_offsets[node] as usize..self.pull_offsets[node + 1] as usize
    }

    /// The key-dedup table: `key_reps()[i]` is the lowest node id sharing
    /// node `i`'s key string. Indexed by dense node id; blend passes use
    /// it to collapse versions of one URL without hashing key strings.
    pub fn key_reps(&self) -> &[u32] {
        &self.key_rep
    }

    /// Forward (out) adjacency of `node`: `(target, kind)` in insertion
    /// order — the same order the live graph's out-edge list yields.
    pub fn out_edges_of(&self, node: u32) -> impl Iterator<Item = (u32, EdgeKind)> + '_ {
        self.fwd_range(node as usize).map(move |s| {
            (
                self.fwd_targets[s],
                // Kind codes were written from EdgeKind::code, so this
                // lookup cannot miss; Link is a harmless degrade.
                EdgeKind::from_code(self.fwd_kinds[s]).unwrap_or(EdgeKind::Link),
            )
        })
    }

    /// Reverse (in) adjacency of `node`: `(source, kind)` in insertion
    /// order.
    pub fn in_edges_of(&self, node: u32) -> impl Iterator<Item = (u32, EdgeKind)> + '_ {
        self.rev_range(node as usize).map(move |s| {
            (
                self.rev_targets[s],
                EdgeKind::from_code(self.rev_kinds[s]).unwrap_or(EdgeKind::Link),
            )
        })
    }

    /// Number of edges of `kind`, from the per-kind forward bitset.
    pub fn kind_count(&self, kind: EdgeKind) -> usize {
        self.kind_bits_fwd[kind.code() as usize]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Number of reverse slots of `kind` — always equals
    /// [`FrozenGraph::kind_count`], since every edge appears once in each
    /// direction.
    pub fn kind_count_rev(&self, kind: EdgeKind) -> usize {
        self.kind_bits_rev[kind.code() as usize]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// `true` if the forward slot's edge kind is automatic, from the
    /// combined automatic bitset.
    pub fn fwd_slot_is_automatic(&self, slot: usize) -> bool {
        bit_get(&self.automatic_fwd, slot)
    }

    /// `true` if the reverse slot's edge kind is automatic.
    pub fn rev_slot_is_automatic(&self, slot: usize) -> bool {
        bit_get(&self.automatic_rev, slot)
    }
}

// ---------------------------------------------------------------------------
// Personalized PageRank kernel
// ---------------------------------------------------------------------------

/// Converged scores from the frozen kernel, sparse and sorted by node id.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrozenScores {
    /// `(node, score)` for every node with positive mass, ascending id.
    pub entries: Vec<(u32, f64)>,
    /// Power iterations performed.
    pub iterations: usize,
    /// `true` if the budget deadline stopped iteration before convergence.
    pub truncated: bool,
}

impl FrozenScores {
    /// Converts into the map-based [`PageRankScores`] shape.
    pub fn into_scores(self) -> PageRankScores {
        PageRankScores {
            score: self
                .entries
                .into_iter()
                .map(|(i, s)| (NodeId::new(i), s))
                .collect(),
            iterations: self.iterations,
        }
    }

    /// Largest score (0.0 when empty) — one O(n) pass, no sort.
    pub fn max_score(&self) -> f64 {
        self.entries.iter().fold(0.0f64, |m, &(_, s)| m.max(s))
    }
}

/// Everything the per-iteration workers share. Score buffers hold `f64`
/// bit patterns in relaxed atomics: the crate forbids `unsafe`, and each
/// element is written by exactly one worker per phase with barriers
/// between phases, so relaxed ordering is sufficient.
struct KernelState<'a> {
    frozen: &'a FrozenGraph,
    restart: Vec<f64>,
    /// Damping-free pull coefficient per merged pull slot, borrowed from
    /// the snapshot: `w(kind) / cond(target)`.
    pull_base: &'a [f64],
    damping: f64,
    tolerance: f64,
    max_iterations: usize,
    chunks: usize,
    bufs: [Vec<AtomicU64>; 2],
    pushed: Vec<AtomicU64>,
    deltas: Vec<AtomicU64>,
    counter_a: AtomicUsize,
    counter_b: AtomicUsize,
    stop: AtomicBool,
    barrier: Barrier,
    deadline: Option<(bp_obs::clock::Stopwatch, Duration)>,
}

impl KernelState<'_> {
    /// One worker's share of the power iteration. Every worker runs the
    /// same loop; chunk claims are raced but each chunk's arithmetic is
    /// internally sequential and cross-chunk reductions always fold in
    /// chunk-index order, so every worker computes bit-identical `slack`
    /// and `delta` and takes the same branch every iteration.
    fn worker(&self) -> (usize, usize, bool) {
        let n = self.frozen.n;
        let mut parity = 0usize;
        let mut iterations = 0usize;
        loop {
            let cur = &self.bufs[parity];
            let nxt = &self.bufs[parity ^ 1];
            // Phase A: raw pulled mass per node, per-chunk partial sums.
            loop {
                let c = self.counter_a.fetch_add(1, Ordering::Relaxed);
                if c >= self.chunks {
                    break;
                }
                let lo = c * CHUNK;
                let hi = (lo + CHUNK).min(n);
                let mut chunk_sum = 0.0f64;
                let targets = &self.frozen.pull_targets[..];
                let weights = self.pull_base;
                let offsets = &self.frozen.pull_offsets[..];
                for i in lo..hi {
                    // Rows average only a handful of slots, so the loop is
                    // overhead-bound: one zip over the row's slices keeps
                    // per-slot work to a single multiply-add with no bounds
                    // checks on the sequential arrays, and damping applies
                    // once per node rather than per slot. Accumulation
                    // order is the fixed slot order — bit-identical at any
                    // worker count.
                    let (start, end) = (offsets[i] as usize, offsets[i + 1] as usize);
                    let mut acc = 0.0f64;
                    for (&t, &w) in targets[start..end].iter().zip(&weights[start..end]) {
                        acc += w * f64::from_bits(cur[t as usize].load(Ordering::Relaxed));
                    }
                    let acc = self.damping * acc;
                    nxt[i].store(acc.to_bits(), Ordering::Relaxed);
                    chunk_sum += acc;
                }
                self.pushed[c].store(chunk_sum.to_bits(), Ordering::Relaxed);
            }
            self.barrier.wait();
            // All workers fold the per-chunk partials in chunk order —
            // deterministic, and identical across workers.
            let pushed: f64 = self
                .pushed
                .iter()
                .map(|p| f64::from_bits(p.load(Ordering::Relaxed)))
                .sum();
            let slack = 1.0 - pushed;
            // Phase B: restart mass and per-chunk L1 deltas.
            loop {
                let c = self.counter_b.fetch_add(1, Ordering::Relaxed);
                if c >= self.chunks {
                    break;
                }
                let lo = c * CHUNK;
                let hi = (lo + CHUNK).min(n);
                let mut chunk_delta = 0.0f64;
                for i in lo..hi {
                    let v =
                        f64::from_bits(nxt[i].load(Ordering::Relaxed)) + slack * self.restart[i];
                    nxt[i].store(v.to_bits(), Ordering::Relaxed);
                    chunk_delta += (v - f64::from_bits(cur[i].load(Ordering::Relaxed))).abs();
                }
                self.deltas[c].store(chunk_delta.to_bits(), Ordering::Relaxed);
            }
            let sync = self.barrier.wait();
            if sync.is_leader() {
                // Sole writer window: reset the claim counters for the
                // next iteration and check the deadline once per
                // iteration boundary (a per-worker check would read
                // different clock values and diverge).
                self.counter_a.store(0, Ordering::Relaxed);
                self.counter_b.store(0, Ordering::Relaxed);
                if let Some((sw, limit)) = &self.deadline {
                    if sw.elapsed() >= *limit {
                        self.stop.store(true, Ordering::SeqCst);
                    }
                }
            }
            self.barrier.wait();
            iterations += 1;
            parity ^= 1;
            let delta: f64 = self
                .deltas
                .iter()
                .map(|d| f64::from_bits(d.load(Ordering::Relaxed)))
                .sum();
            let expired = self.stop.load(Ordering::SeqCst);
            if delta < self.tolerance || iterations >= self.max_iterations || expired {
                return (iterations, parity, expired && delta >= self.tolerance);
            }
        }
    }
}

/// Runs personalized PageRank with restart over a [`FrozenGraph`], with
/// flat score buffers and `budget.jobs()` worker threads.
///
/// The math matches [`crate::pagerank::personalized_pagerank`]: undirected
/// walks, temporal-overlap edges at 0.4 conductance, automatic edges
/// droppable via `config.include_automatic_edges` (applied through the
/// snapshot's per-kind bitsets), restart mass `1 − damping` plus whatever
/// strands on degree-0 nodes, L1 convergence. `budget.deadline()` is
/// honored at iteration boundaries: an expired deadline returns the
/// partially-converged scores with `truncated` set rather than blocking
/// the interactive bound.
///
/// Scores are **bit-identical for any job count**: work is split into
/// fixed-size chunks whose internal accumulation order never changes, and
/// cross-chunk reductions fold in chunk-index order on every worker.
pub fn personalized_pagerank_frozen(
    frozen: &FrozenGraph,
    seeds: &[(NodeId, f64)],
    config: &PageRankConfig,
    budget: &Budget,
) -> FrozenScores {
    let n = frozen.n;
    let mut restart = vec![0.0f64; n];
    let mut total = 0.0;
    for &(node, w) in seeds {
        if node.as_usize() < n && w > 0.0 {
            restart[node.as_usize()] += w;
            total += w;
        }
    }
    if total <= 0.0 {
        return FrozenScores::default();
    }
    for r in &mut restart {
        *r /= total;
    }
    if config.max_iterations == 0 {
        // Zero iterations means the walk never leaves the seeds.
        return FrozenScores {
            entries: restart
                .iter()
                .enumerate()
                .filter_map(|(i, &s)| (s > 0.0).then_some((i as u32, s)))
                .collect(),
            iterations: 0,
            truncated: false,
        };
    }

    // Per-slot pull coefficients were folded at snapshot time (see
    // [`FrozenGraph::build`]): pick the table matching the automatic-edge
    // setting, and apply damping once per node inside the kernel.
    let pull_base: &[f64] = if config.include_automatic_edges {
        &frozen.pull_base
    } else {
        &frozen.pull_base_noauto
    };

    let chunks = n.div_ceil(CHUNK).max(1);
    let jobs = budget.jobs().min(chunks).clamp(1, MAX_JOBS);
    let deadline = budget.deadline().map(|d| {
        let clock = budget.clock().cloned().unwrap_or_else(ClockHandle::real);
        (clock.start(), d)
    });
    let to_atomics =
        |v: &[f64]| -> Vec<AtomicU64> { v.iter().map(|x| AtomicU64::new(x.to_bits())).collect() };
    let state = KernelState {
        frozen,
        pull_base,
        damping: config.damping,
        tolerance: config.tolerance,
        max_iterations: config.max_iterations.max(1),
        chunks,
        bufs: [to_atomics(&restart), to_atomics(&vec![0.0; n])],
        pushed: (0..chunks).map(|_| AtomicU64::new(0)).collect(),
        deltas: (0..chunks).map(|_| AtomicU64::new(0)).collect(),
        counter_a: AtomicUsize::new(0),
        counter_b: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
        barrier: Barrier::new(jobs),
        restart,
        deadline,
    };

    let (iterations, parity, truncated) = if jobs == 1 {
        state.worker()
    } else {
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(jobs - 1);
            for _ in 1..jobs {
                handles.push(scope.spawn(|| state.worker()));
            }
            let result = state.worker();
            for h in handles {
                let _ = h.join();
            }
            result
        })
    };

    let entries: Vec<(u32, f64)> = state.bufs[parity]
        .iter()
        .enumerate()
        .filter_map(|(i, a)| {
            let s = f64::from_bits(a.load(Ordering::Relaxed));
            (s > 0.0).then_some((i as u32, s))
        })
        .collect();
    FrozenScores {
        entries,
        iterations,
        truncated,
    }
}

// ---------------------------------------------------------------------------
// Frozen neighborhood expansion
// ---------------------------------------------------------------------------

/// Result of [`expand_frozen`]: sparse accumulated relevance, sorted by
/// node id — the cacheable twin of
/// [`crate::neighborhood::Expansion`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrozenExpansion {
    /// `(node, weight)` for every reached node, ascending id.
    pub entries: Vec<(u32, f64)>,
    /// `true` if a budget limit stopped the expansion early.
    pub truncated: bool,
}

impl FrozenExpansion {
    /// Converts into the map-based [`crate::neighborhood::Expansion`]
    /// shape (for the optional HITS pass, which wants a membership map).
    pub fn to_expansion(&self) -> crate::neighborhood::Expansion {
        crate::neighborhood::Expansion {
            weight: self
                .entries
                .iter()
                .map(|&(i, w)| (NodeId::new(i), w))
                .collect(),
            truncated: self.truncated,
        }
    }
}

/// Layered weighted expansion over a [`FrozenGraph`] — the same spread
/// semantics as [`crate::neighborhood::expand`] (per-hop decay, per-kind
/// multipliers, no echo back to reached layers, heaviest-first `max_nodes`
/// truncation, wall-clock deadline), but over CSR rows and flat buffers
/// instead of hash maps, and with a deterministic accumulation order.
pub fn expand_frozen(
    frozen: &FrozenGraph,
    seeds: &[(NodeId, f64)],
    config: &ExpansionConfig,
    budget: &Budget,
) -> FrozenExpansion {
    let n = frozen.n;
    let clock = budget.deadline().map(|d| {
        let handle = budget.clock().cloned().unwrap_or_else(ClockHandle::real);
        (handle.start(), d)
    });
    let mut kind_weight = [1.0f64; 16];
    for kind in EdgeKind::ALL {
        kind_weight[kind.code() as usize] = config.weight_of(kind);
    }
    let mut weight = vec![0.0f64; n];
    let mut reached = vec![false; n];
    let mut reached_ids: Vec<u32> = Vec::new();
    let mut truncated = false;
    let mut frontier: Vec<(u32, f64)> = Vec::new();
    for &(node, w) in seeds {
        if node.as_usize() < n && w > 0.0 {
            let i = node.index();
            if !reached[i as usize] {
                reached[i as usize] = true;
                reached_ids.push(i);
            }
            weight[i as usize] += w;
            frontier.push((i, w));
        }
    }
    let max_hops = budget
        .max_depth()
        .map_or(config.max_hops, |d| d.min(config.max_hops));

    let mut next_weight = vec![0.0f64; n];
    let mut touched: Vec<u32> = Vec::new();
    'hops: for _hop in 0..max_hops {
        if frontier.is_empty() {
            break;
        }
        for &(node, w) in &frontier {
            if let Some((ref t0, limit)) = clock {
                if t0.elapsed() >= limit {
                    truncated = true;
                    break 'hops;
                }
            }
            let spread_base = w * config.decay;
            for s in frozen.fwd_range(node as usize) {
                let nbr = frozen.fwd_targets[s];
                if reached[nbr as usize] {
                    continue; // layered: no echo back to reached nodes
                }
                let spread = spread_base * kind_weight[frozen.fwd_kinds[s] as usize];
                if spread < config.min_weight {
                    continue;
                }
                if next_weight[nbr as usize] == 0.0 {
                    touched.push(nbr);
                }
                next_weight[nbr as usize] += spread;
            }
            for s in frozen.rev_range(node as usize) {
                let nbr = frozen.rev_targets[s];
                if reached[nbr as usize] {
                    continue;
                }
                let spread = spread_base * kind_weight[frozen.rev_kinds[s] as usize];
                if spread < config.min_weight {
                    continue;
                }
                if next_weight[nbr as usize] == 0.0 {
                    touched.push(nbr);
                }
                next_weight[nbr as usize] += spread;
            }
        }
        if let Some(max) = budget.max_nodes() {
            if reached_ids.len() + touched.len() > max {
                truncated = true;
                // Keep the heaviest next-layer entries up to the cap.
                let mut entries: Vec<(u32, f64)> = touched
                    .iter()
                    .map(|&i| (i, next_weight[i as usize]))
                    .collect();
                entries.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                });
                entries.truncate(max.saturating_sub(reached_ids.len()));
                for &(i, w) in &entries {
                    reached[i as usize] = true;
                    reached_ids.push(i);
                    weight[i as usize] += w;
                }
                for &i in &touched {
                    next_weight[i as usize] = 0.0;
                }
                touched.clear();
                break;
            }
        }
        frontier.clear();
        for &i in &touched {
            let w = next_weight[i as usize];
            next_weight[i as usize] = 0.0;
            reached[i as usize] = true;
            reached_ids.push(i);
            weight[i as usize] += w;
            frontier.push((i, w));
        }
        touched.clear();
    }
    reached_ids.sort_unstable();
    FrozenExpansion {
        entries: reached_ids
            .into_iter()
            .map(|i| (i, weight[i as usize]))
            .collect(),
        truncated,
    }
}

// ---------------------------------------------------------------------------
// Epoch-keyed score cache
// ---------------------------------------------------------------------------

/// Which query family a cache entry belongs to (same seeds hash the same
/// for PageRank and expansion; the domain keeps their entries apart).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheDomain {
    /// Personalized-PageRank scores.
    PageRank,
    /// Neighborhood-expansion weights.
    Expansion,
}

/// A cache key: graph epoch + query domain + seed/config fingerprint.
/// Mutations bump the epoch, so stale entries can never be returned —
/// they simply stop matching and are purged on the next insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`ProvenanceGraph::epoch`] at compute time.
    pub epoch: u64,
    /// Query family.
    pub domain: CacheDomain,
    /// [`fingerprint_ppr`] / [`fingerprint_expansion`] over seeds+config.
    pub fingerprint: u64,
}

/// A cached sparse score vector (PageRank scores or expansion weights).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CachedScores {
    /// `(node, score)` ascending by node id.
    pub entries: Vec<(u32, f64)>,
    /// Iterations the producing walk performed (0 for expansions).
    pub iterations: usize,
    /// Whether the producing walk truncated itself (deterministic
    /// `max_nodes` truncation only — deadline-truncated results are
    /// never cached).
    pub truncated: bool,
}

impl CachedScores {
    fn cost_bytes(&self) -> usize {
        // Entry storage plus map/Arc bookkeeping overhead.
        self.entries.len() * 16 + 96
    }
}

/// Counters and occupancy for one [`ScoreCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a cached value.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries dropped (stale epoch or LRU byte pressure).
    pub evictions: u64,
    /// Live entries.
    pub entries: usize,
    /// Estimated bytes held.
    pub bytes: usize,
}

struct CacheSlot {
    value: Arc<CachedScores>,
    bytes: usize,
    last_used: u64,
}

struct CacheInner {
    map: HashMap<CacheKey, CacheSlot>,
    bytes: usize,
    budget: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A byte-budgeted, epoch-keyed LRU cache of converged walk scores,
/// shared by the `ppr`, `context`, and `personalize` query paths.
///
/// Thread-safe behind one mutex: lookups copy an [`Arc`] out, so the
/// lock is held only for the map probe, never while scores are consumed.
pub struct ScoreCache {
    inner: Mutex<CacheInner>,
}

impl std::fmt::Debug for ScoreCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScoreCache")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for ScoreCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ScoreCache {
    /// Default byte budget: generous for thousands-of-nodes histories,
    /// bounded for the paper's 25k-node scale.
    pub const DEFAULT_BUDGET_BYTES: usize = 8 * 1024 * 1024;

    /// A cache with the default byte budget.
    pub fn new() -> Self {
        Self::with_budget(Self::DEFAULT_BUDGET_BYTES)
    }

    /// A cache that evicts least-recently-used entries once the estimated
    /// held bytes exceed `budget_bytes`.
    pub fn with_budget(budget_bytes: usize) -> Self {
        ScoreCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                bytes: 0,
                budget: budget_bytes.max(1),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Looks up `key`, counting a hit or miss and refreshing recency.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CachedScores>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(slot) => {
                slot.last_used = tick;
                let value = slot.value.clone();
                inner.hits += 1;
                Some(value)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts `value` under `key`, purging entries from older epochs and
    /// then least-recently-used entries until the byte budget holds.
    /// Returns how many entries were evicted.
    pub fn put(&self, key: CacheKey, value: Arc<CachedScores>) -> u64 {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let bytes = value.cost_bytes();
        if let Some(old) = inner.map.insert(
            key,
            CacheSlot {
                value,
                bytes,
                last_used: tick,
            },
        ) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        let mut evicted = 0u64;
        // Stale epochs can never match again; drop them first.
        let stale: Vec<CacheKey> = inner
            .map
            .keys()
            .filter(|k| k.epoch != key.epoch)
            .copied()
            .collect();
        for k in stale {
            if let Some(slot) = inner.map.remove(&k) {
                inner.bytes -= slot.bytes;
                evicted += 1;
            }
        }
        // Then LRU pressure; the entry just inserted has the newest tick,
        // so it survives unless it alone exceeds the budget.
        while inner.bytes > inner.budget && inner.map.len() > 1 {
            let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| *k)
            else {
                break;
            };
            if let Some(slot) = inner.map.remove(&oldest) {
                inner.bytes -= slot.bytes;
                evicted += 1;
            }
        }
        inner.evictions += evicted;
        evicted
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
            bytes: inner.bytes,
        }
    }
}

#[inline]
fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01b3)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn mix_seeds(mut h: u64, seeds: &[(NodeId, f64)]) -> u64 {
    let mut canon: Vec<(u32, u64)> = seeds
        .iter()
        .map(|&(n, w)| (n.index(), w.to_bits()))
        .collect();
    canon.sort_unstable();
    h = mix(h, canon.len() as u64);
    for (n, w) in canon {
        h = mix(h, u64::from(n));
        h = mix(h, w);
    }
    h
}

fn mix_budget(mut h: u64, budget: &Budget) -> u64 {
    // Only the deterministic caps participate: the deadline shapes
    // *whether* a result is cacheable (truncated results are not), never
    // what a complete result contains, and jobs never changes scores.
    h = mix(h, budget.max_nodes().map_or(u64::MAX, |v| v as u64));
    h = mix(h, budget.max_depth().map_or(u64::MAX, |v| v as u64));
    h
}

/// Fingerprints a PageRank request: canonicalized seed set, the scoring
/// parameters of [`PageRankConfig`], and the deterministic budget caps.
pub fn fingerprint_ppr(seeds: &[(NodeId, f64)], config: &PageRankConfig, budget: &Budget) -> u64 {
    let mut h = mix(FNV_OFFSET, 0x7070_7252); // "ppr" domain tag
    h = mix_seeds(h, seeds);
    h = mix(h, config.damping.to_bits());
    h = mix(h, config.max_iterations as u64);
    h = mix(h, config.tolerance.to_bits());
    h = mix(h, u64::from(config.include_automatic_edges));
    mix_budget(h, budget)
}

/// Fingerprints an expansion request: canonicalized seed set, every
/// [`ExpansionConfig`] knob (kind weights in declaration order), and the
/// deterministic budget caps.
pub fn fingerprint_expansion(
    seeds: &[(NodeId, f64)],
    config: &ExpansionConfig,
    budget: &Budget,
) -> u64 {
    let mut h = mix(FNV_OFFSET, 0x6578_7061); // "expa" domain tag
    h = mix_seeds(h, seeds);
    h = mix(h, config.decay.to_bits());
    h = mix(h, config.max_hops as u64);
    h = mix(h, config.min_weight.to_bits());
    h = mix(h, config.kind_weights.len() as u64);
    for &(kind, w) in &config.kind_weights {
        h = mix(h, u64::from(kind.code()));
        h = mix(h, w.to_bits());
    }
    mix_budget(h, budget)
}

// ---------------------------------------------------------------------------
// Snapshot handle
// ---------------------------------------------------------------------------

/// Owns the current [`FrozenGraph`] snapshot and rebuilds it lazily when
/// the live graph's epoch moves — the frozen half of the frozen/live
/// split. Readers share snapshots via [`Arc`], so a rebuild never
/// invalidates a walk already in flight.
#[derive(Default)]
pub struct FrozenHandle {
    slot: Mutex<Option<Arc<FrozenGraph>>>,
    builds: AtomicU64,
    last_build_us: AtomicU64,
}

impl std::fmt::Debug for FrozenHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrozenHandle")
            .field("builds", &self.builds())
            .field("last_build_us", &self.last_build_us())
            .finish()
    }
}

impl FrozenHandle {
    /// An empty handle (first snapshot builds on demand).
    pub fn new() -> Self {
        Self::default()
    }

    /// The current snapshot of `graph`: cached while the epoch matches,
    /// rebuilt (and timed) when it does not.
    pub fn snapshot(&self, graph: &ProvenanceGraph) -> Arc<FrozenGraph> {
        let mut slot = self
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(f) = slot.as_ref() {
            if f.epoch() == graph.epoch() {
                return f.clone();
            }
        }
        let sw = ClockHandle::real().start();
        let f = Arc::new(FrozenGraph::build(graph));
        self.builds.fetch_add(1, Ordering::Relaxed);
        self.last_build_us
            .store(sw.elapsed().as_micros() as u64, Ordering::Relaxed);
        *slot = Some(f.clone());
        f
    }

    /// How many CSR rebuilds this handle has performed.
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Wall time of the most recent rebuild, in microseconds.
    pub fn last_build_us(&self) -> u64 {
        self.last_build_us.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighborhood::expand;
    use crate::node::{Node, NodeKind};
    use crate::pagerank::personalized_pagerank;
    use crate::time::Timestamp;
    use proptest::prelude::*;

    fn t(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    /// A deterministic tangled history: a long chain with periodic
    /// cross-links, overlap edges, and automatic edges.
    fn tangled(n: usize) -> ProvenanceGraph {
        let mut g = ProvenanceGraph::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| g.add_node(Node::new(NodeKind::PageVisit, format!("u{i}"), t(i as i64))))
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[1], w[0], EdgeKind::Link, t(1)).unwrap();
        }
        for i in (2..n).step_by(3) {
            g.add_edge(ids[i], ids[i / 2], EdgeKind::TemporalOverlap, t(2))
                .unwrap();
        }
        for i in (4..n).step_by(5) {
            g.add_edge(ids[i], ids[i - 3], EdgeKind::Redirect, t(3))
                .unwrap();
        }
        g
    }

    #[test]
    fn csr_matches_live_adjacency_and_kinds() {
        let g = tangled(40);
        let f = FrozenGraph::build(&g);
        assert_eq!(f.node_count(), g.node_count());
        assert_eq!(f.edge_count(), g.edge_count());
        assert_eq!(f.epoch(), g.epoch());
        for id in g.node_ids() {
            let live_out: Vec<(u32, EdgeKind)> = g
                .parents(id)
                .map(|(e, p)| (p.index(), g.edge(e).unwrap().kind()))
                .collect();
            let frozen_out: Vec<(u32, EdgeKind)> = f.out_edges_of(id.index()).collect();
            assert_eq!(live_out, frozen_out, "out row of {id:?}");
            let live_in: Vec<(u32, EdgeKind)> = g
                .children(id)
                .map(|(e, c)| (c.index(), g.edge(e).unwrap().kind()))
                .collect();
            let frozen_in: Vec<(u32, EdgeKind)> = f.in_edges_of(id.index()).collect();
            assert_eq!(live_in, frozen_in, "in row of {id:?}");
        }
    }

    #[test]
    fn determinism_across_one_two_and_eight_jobs() {
        let g = tangled(3000);
        let f = FrozenGraph::build(&g);
        let seeds = vec![
            (NodeId::new(0), 1.0),
            (NodeId::new(1500), 0.5),
            (NodeId::new(2999), 0.25),
        ];
        let config = PageRankConfig::default();
        let runs: Vec<FrozenScores> = [1usize, 2, 8]
            .iter()
            .map(|&jobs| {
                personalized_pagerank_frozen(&f, &seeds, &config, &Budget::new().with_jobs(jobs))
            })
            .collect();
        assert!(!runs[0].entries.is_empty());
        for other in &runs[1..] {
            assert_eq!(runs[0].iterations, other.iterations);
            assert_eq!(runs[0].entries.len(), other.entries.len());
            for (a, b) in runs[0].entries.iter().zip(&other.entries) {
                assert_eq!(a.0, b.0);
                assert_eq!(
                    a.1.to_bits(),
                    b.1.to_bits(),
                    "node {} diverges across job counts",
                    a.0
                );
            }
        }
    }

    #[test]
    fn kernel_agrees_with_wrapper_entry_point() {
        let g = tangled(200);
        let f = FrozenGraph::build(&g);
        let seeds = vec![(NodeId::new(7), 1.0)];
        let config = PageRankConfig::default();
        let from_kernel =
            personalized_pagerank_frozen(&f, &seeds, &config, &Budget::new()).into_scores();
        let from_wrapper = personalized_pagerank(&g, &seeds, &config);
        assert_eq!(from_kernel, from_wrapper);
    }

    #[test]
    fn automatic_edge_filter_uses_the_bitsets() {
        let mut g = ProvenanceGraph::new();
        let seed = g.add_node(Node::new(NodeKind::PageVisit, "s", t(0)));
        let by_link = g.add_node(Node::new(NodeKind::PageVisit, "l", t(1)));
        let by_redirect = g.add_node(Node::new(NodeKind::PageVisit, "r", t(1)));
        g.add_edge(by_link, seed, EdgeKind::Link, t(1)).unwrap();
        g.add_edge(by_redirect, seed, EdgeKind::Redirect, t(1))
            .unwrap();
        let f = FrozenGraph::build(&g);
        assert_eq!(f.kind_count(EdgeKind::Link), 1);
        assert_eq!(f.kind_count(EdgeKind::Redirect), 1);
        let config = PageRankConfig {
            include_automatic_edges: false,
            ..PageRankConfig::default()
        };
        let scores =
            personalized_pagerank_frozen(&f, &[(seed, 1.0)], &config, &Budget::new()).into_scores();
        assert!(scores.score_of(by_link) > 0.0);
        assert_eq!(
            scores.score_of(by_redirect),
            0.0,
            "redirect carries no mass"
        );
    }

    #[test]
    fn zero_deadline_truncates_at_an_iteration_boundary() {
        let g = tangled(500);
        let f = FrozenGraph::build(&g);
        let scores = personalized_pagerank_frozen(
            &f,
            &[(NodeId::new(0), 1.0)],
            &PageRankConfig::default(),
            &Budget::new().with_deadline(Duration::ZERO),
        );
        assert!(scores.truncated);
        assert!(scores.iterations >= 1, "at least one iteration completes");
        assert!(!scores.entries.is_empty(), "partial scores still returned");
    }

    #[test]
    fn expansion_matches_the_live_implementation() {
        let g = tangled(60);
        let f = FrozenGraph::build(&g);
        let seeds = vec![(NodeId::new(0), 1.0), (NodeId::new(30), 0.7)];
        let config = ExpansionConfig::default();
        let live = expand(&g, &seeds, &config, &Budget::new());
        let frozen = expand_frozen(&f, &seeds, &config, &Budget::new());
        assert_eq!(live.weight.len(), frozen.entries.len());
        for &(node, w) in &frozen.entries {
            let lw = live.weight_of(NodeId::new(node));
            assert!(
                (lw - w).abs() < 1e-12,
                "node {node}: live {lw} vs frozen {w}"
            );
        }
        assert_eq!(live.truncated, frozen.truncated);
        // max_nodes truncation keeps the same heaviest set.
        let budget = Budget::new().with_max_nodes(10);
        let live = expand(&g, &seeds, &config, &budget);
        let frozen = expand_frozen(&f, &seeds, &config, &budget);
        assert!(live.truncated && frozen.truncated);
        assert_eq!(live.weight.len(), frozen.entries.len());
        for &(node, w) in &frozen.entries {
            assert!((live.weight_of(NodeId::new(node)) - w).abs() < 1e-12);
        }
    }

    #[test]
    fn cache_is_epoch_keyed_and_byte_budgeted() {
        // Each value(4) entry costs 4 * 16 + 96 = 160 bytes; a 320-byte
        // budget holds exactly two.
        let cache = ScoreCache::with_budget(2 * 160);
        let value = |n: usize| {
            Arc::new(CachedScores {
                entries: (0..n as u32).map(|i| (i, 1.0)).collect(),
                iterations: 3,
                truncated: false,
            })
        };
        let key = |epoch, fp| CacheKey {
            epoch,
            domain: CacheDomain::PageRank,
            fingerprint: fp,
        };
        assert!(cache.get(&key(1, 1)).is_none());
        cache.put(key(1, 1), value(4));
        assert!(cache.get(&key(1, 1)).is_some(), "same epoch hits");
        assert!(cache.get(&key(2, 1)).is_none(), "newer epoch misses");
        // Inserting at epoch 2 purges every epoch-1 entry.
        cache.put(key(2, 1), value(4));
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert!(stats.evictions >= 1, "stale epoch evicted");
        // LRU byte pressure: the least recently used entry goes first.
        cache.put(key(2, 2), value(4));
        let _ = cache.get(&key(2, 1)); // refresh fp=1
        cache.put(key(2, 3), value(4)); // over budget: evicts fp=2
        assert!(cache.get(&key(2, 1)).is_some(), "refreshed entry kept");
        assert!(cache.get(&key(2, 2)).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(2, 3)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 4);
        assert!(stats.bytes <= 2 * 160);
    }

    #[test]
    fn fingerprints_separate_seeds_configs_and_budgets() {
        let seeds_a = vec![(NodeId::new(1), 1.0), (NodeId::new(2), 0.5)];
        let seeds_b = vec![(NodeId::new(2), 0.5), (NodeId::new(1), 1.0)];
        let seeds_c = vec![(NodeId::new(1), 1.0)];
        let cfg = PageRankConfig::default();
        let budget = Budget::new();
        assert_eq!(
            fingerprint_ppr(&seeds_a, &cfg, &budget),
            fingerprint_ppr(&seeds_b, &cfg, &budget),
            "seed order is canonicalized"
        );
        assert_ne!(
            fingerprint_ppr(&seeds_a, &cfg, &budget),
            fingerprint_ppr(&seeds_c, &cfg, &budget)
        );
        let other_cfg = PageRankConfig {
            damping: 0.3,
            ..PageRankConfig::default()
        };
        assert_ne!(
            fingerprint_ppr(&seeds_a, &cfg, &budget),
            fingerprint_ppr(&seeds_a, &other_cfg, &budget)
        );
        assert_ne!(
            fingerprint_ppr(&seeds_a, &cfg, &budget),
            fingerprint_ppr(&seeds_a, &cfg, &Budget::new().with_max_nodes(5))
        );
        assert_eq!(
            fingerprint_ppr(&seeds_a, &cfg, &budget),
            fingerprint_ppr(&seeds_a, &cfg, &Budget::new().with_jobs(8)),
            "jobs never changes scores, so it is not part of the key"
        );
        assert_ne!(
            fingerprint_ppr(&seeds_a, &cfg, &budget),
            fingerprint_expansion(&seeds_a, &ExpansionConfig::default(), &budget),
            "domains are tagged apart"
        );
    }

    #[test]
    fn handle_rebuilds_only_when_the_epoch_moves() {
        let mut g = tangled(10);
        let handle = FrozenHandle::new();
        let a = handle.snapshot(&g);
        let b = handle.snapshot(&g);
        assert!(Arc::ptr_eq(&a, &b), "same epoch: shared snapshot");
        assert_eq!(handle.builds(), 1);
        g.add_node(Node::new(NodeKind::PageVisit, "new", t(99)));
        let c = handle.snapshot(&g);
        assert!(!Arc::ptr_eq(&a, &c), "mutation invalidates the snapshot");
        assert_eq!(handle.builds(), 2);
        assert_eq!(c.node_count(), 11);
    }

    proptest! {
        /// The CSR snapshot round-trips every node, edge, and kind filter
        /// of the live graph: adjacency rows match in content and order,
        /// per-kind bitset counts match live kind counts, and the
        /// automatic mask marks exactly the automatic-kind slots.
        #[test]
        fn csr_round_trips_random_graphs(
            links in prop::collection::vec((1u8..30, 0u8..30, 0u8..15), 0..120),
        ) {
            let mut g = ProvenanceGraph::new();
            for i in 0..30 {
                g.add_node(Node::new(NodeKind::PageVisit, format!("u{i}"), t(i)));
            }
            for &(src, dst, k) in &links {
                let src = u32::from(src.max(1)) % 30;
                let dst = u32::from(dst) % src.max(1);
                let kind = EdgeKind::from_code(k).unwrap_or(EdgeKind::Link);
                let _ = g.add_edge(NodeId::new(src), NodeId::new(dst), kind, t(i64::from(src)));
            }
            let f = FrozenGraph::build(&g);
            prop_assert_eq!(f.node_count(), g.node_count());
            prop_assert_eq!(f.edge_count(), g.edge_count());
            for id in g.node_ids() {
                let live_out: Vec<(u32, EdgeKind)> = g
                    .parents(id)
                    .map(|(e, p)| (p.index(), g.edge(e).unwrap().kind()))
                    .collect();
                let frozen_out: Vec<(u32, EdgeKind)> = f.out_edges_of(id.index()).collect();
                prop_assert_eq!(live_out, frozen_out);
                let live_in: Vec<(u32, EdgeKind)> = g
                    .children(id)
                    .map(|(e, c)| (c.index(), g.edge(e).unwrap().kind()))
                    .collect();
                let frozen_in: Vec<(u32, EdgeKind)> = f.in_edges_of(id.index()).collect();
                prop_assert_eq!(live_in, frozen_in);
            }
            for kind in EdgeKind::ALL {
                let live = g.edges().filter(|(_, e)| e.kind() == kind).count();
                prop_assert_eq!(f.kind_count(kind), live);
                prop_assert_eq!(f.kind_count_rev(kind), live);
            }
            let mut slot = 0;
            for id in g.node_ids() {
                for (_, kind) in f.out_edges_of(id.index()) {
                    prop_assert_eq!(f.fwd_slot_is_automatic(slot), kind.is_automatic());
                    slot += 1;
                }
            }
            // The merged pull row is the forward row followed by the
            // reverse row, with the automatic mask carried across.
            for id in g.node_ids() {
                let i = id.index() as usize;
                let merged: Vec<(u32, EdgeKind)> = f
                    .out_edges_of(id.index())
                    .chain(f.in_edges_of(id.index()))
                    .collect();
                let pull: Vec<(u32, EdgeKind)> = f
                    .pull_range(i)
                    .map(|s| {
                        prop_assert_eq!(
                            bit_get(&f.automatic_pull, s),
                            EdgeKind::from_code(f.pull_kinds[s]).unwrap().is_automatic()
                        );
                        Ok((
                            f.pull_targets[s],
                            EdgeKind::from_code(f.pull_kinds[s]).unwrap(),
                        ))
                    })
                    .collect::<Result<_, _>>()?;
                prop_assert_eq!(merged, pull);
            }
        }

        /// Parallel and serial kernels agree bit-for-bit on random DAGs.
        #[test]
        fn parallel_kernel_is_bit_identical_on_random_graphs(
            links in prop::collection::vec((1u8..25, 0u8..25), 0..80),
            seed in 0u8..25,
        ) {
            let mut g = ProvenanceGraph::new();
            for i in 0..26 {
                g.add_node(Node::new(NodeKind::PageVisit, format!("u{i}"), t(i)));
            }
            for &(src, dst) in &links {
                let src = u32::from(src.max(1));
                let dst = u32::from(dst) % src;
                let _ = g.add_edge(NodeId::new(src % 26), NodeId::new(dst), EdgeKind::Link, t(1));
            }
            let f = FrozenGraph::build(&g);
            let seeds = vec![(NodeId::new(u32::from(seed) % 26), 1.0)];
            let config = PageRankConfig::default();
            let serial = personalized_pagerank_frozen(&f, &seeds, &config, &Budget::new());
            let parallel =
                personalized_pagerank_frozen(&f, &seeds, &config, &Budget::new().with_jobs(4));
            prop_assert_eq!(serial.iterations, parallel.iterations);
            prop_assert_eq!(serial.entries.len(), parallel.entries.len());
            for (a, b) in serial.entries.iter().zip(&parallel.entries) {
                prop_assert_eq!(a.0, b.0);
                prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }
    }
}
