//! Edge kinds and edge payloads.
//!
//! "Every relationship in the browser history corresponds to an action taken
//! by the browser to obtain one set of data from another" (§3). Edges are
//! directed **derives-from** relationships: an edge `src → dst` states that
//! the object at `src` was derived from (caused by, obtained via) the object
//! at `dst`. Ancestor traversal therefore follows edges forward, and
//! descendant traversal follows them backward — matching the provenance
//! convention used by PASS.

use crate::attr::AttrMap;
use crate::ids::NodeId;
use crate::time::Timestamp;
use core::fmt;

/// The browser action that generated a relationship.
///
/// This is a superset of the HTTP referrer, modelled on Firefox's
/// "transitions" table (§3) plus the second-class relationships §3.2 argues
/// should be first-class (typed-location navigations, new tabs, temporal
/// overlap) and the §3.3 object relationships (search, form, bookmark,
/// download).
///
/// # Examples
///
/// ```
/// use bp_graph::EdgeKind;
/// assert!(EdgeKind::Redirect.is_automatic());
/// assert!(EdgeKind::Link.is_user_action());
/// assert!(!EdgeKind::TemporalOverlap.is_causal());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeKind {
    /// The user clicked a hyperlink (the classic referrer relationship).
    Link,
    /// The user typed a URL into the location bar (or accepted an
    /// autocompletion) — a relationship most browsers drop (§3.2).
    TypedLocation,
    /// The user clicked a bookmark; connects the visit to the bookmark node.
    BookmarkClick,
    /// The server redirected the browser (HTTP 3xx or meta refresh).
    /// Automatic — "not generated as the result of a user action" (§3.2).
    Redirect,
    /// Top-level page loaded embedded content (frame, image, script).
    /// Automatic, like [`EdgeKind::Redirect`].
    Embed,
    /// The user submitted a form; connects the result page to the form
    /// entry node ("deep web" capture, §3.3).
    FormSubmit,
    /// A web search produced this page; connects a visit to the
    /// [`NodeKind::SearchTerm`](crate::NodeKind::SearchTerm) node in its
    /// lineage (§3.3).
    SearchResult,
    /// A file was downloaded from a page.
    DownloadFrom,
    /// The user opened a page in a new tab from an existing page.
    NewTab,
    /// The user reloaded the page (new visit version derives from the old).
    Reload,
    /// The user navigated with back/forward buttons (new visit version
    /// derives from the visit navigated away from).
    BackForward,
    /// The visit instance is a new version of a page previously visited;
    /// connects successive versions of the same logical object (§3.1).
    VersionOf,
    /// The visit instantiates a logical [`NodeKind::Page`](crate::NodeKind::Page)
    /// node; connects instance to its timeless page object.
    InstanceOf,
    /// Two objects were open during overlapping time spans (§3.2). The only
    /// non-causal relationship; conceptually undirected, stored with the
    /// paper's arbitrary ordering rule ("the first node opened in a time
    /// span points to later nodes" — here the later node derives-from the
    /// earlier one, keeping the DAG invariant).
    TemporalOverlap,
    /// The bookmark object was created from a page visit.
    BookmarkCreated,
}

impl EdgeKind {
    /// All edge kinds, in stable encoding order.
    pub const ALL: [EdgeKind; 15] = [
        EdgeKind::Link,
        EdgeKind::TypedLocation,
        EdgeKind::BookmarkClick,
        EdgeKind::Redirect,
        EdgeKind::Embed,
        EdgeKind::FormSubmit,
        EdgeKind::SearchResult,
        EdgeKind::DownloadFrom,
        EdgeKind::NewTab,
        EdgeKind::Reload,
        EdgeKind::BackForward,
        EdgeKind::VersionOf,
        EdgeKind::InstanceOf,
        EdgeKind::TemporalOverlap,
        EdgeKind::BookmarkCreated,
    ];

    /// Stable small-integer code used by the storage layer.
    pub const fn code(self) -> u8 {
        match self {
            EdgeKind::Link => 0,
            EdgeKind::TypedLocation => 1,
            EdgeKind::BookmarkClick => 2,
            EdgeKind::Redirect => 3,
            EdgeKind::Embed => 4,
            EdgeKind::FormSubmit => 5,
            EdgeKind::SearchResult => 6,
            EdgeKind::DownloadFrom => 7,
            EdgeKind::NewTab => 8,
            EdgeKind::Reload => 9,
            EdgeKind::BackForward => 10,
            EdgeKind::VersionOf => 11,
            EdgeKind::InstanceOf => 12,
            EdgeKind::TemporalOverlap => 13,
            EdgeKind::BookmarkCreated => 14,
        }
    }

    /// Decodes a storage code back into a kind.
    pub fn from_code(code: u8) -> Option<EdgeKind> {
        EdgeKind::ALL.get(code as usize).copied()
    }

    /// Snake-case label, used by the query language and DOT export.
    pub const fn label(self) -> &'static str {
        match self {
            EdgeKind::Link => "link",
            EdgeKind::TypedLocation => "typed",
            EdgeKind::BookmarkClick => "bookmark_click",
            EdgeKind::Redirect => "redirect",
            EdgeKind::Embed => "embed",
            EdgeKind::FormSubmit => "form_submit",
            EdgeKind::SearchResult => "search_result",
            EdgeKind::DownloadFrom => "download_from",
            EdgeKind::NewTab => "new_tab",
            EdgeKind::Reload => "reload",
            EdgeKind::BackForward => "back_forward",
            EdgeKind::VersionOf => "version_of",
            EdgeKind::InstanceOf => "instance_of",
            EdgeKind::TemporalOverlap => "temporal_overlap",
            EdgeKind::BookmarkCreated => "bookmark_created",
        }
    }

    /// Parses a label produced by [`EdgeKind::label`].
    pub fn from_label(label: &str) -> Option<EdgeKind> {
        EdgeKind::ALL.into_iter().find(|k| k.label() == label)
    }

    /// Relationships generated automatically rather than by a user action
    /// (§3.2: redirects and inner content are "a special case ... not
    /// generated as the result of a user action"). Personalization
    /// algorithms may wish to exclude these.
    pub const fn is_automatic(self) -> bool {
        matches!(
            self,
            EdgeKind::Redirect | EdgeKind::Embed | EdgeKind::VersionOf | EdgeKind::InstanceOf
        )
    }

    /// Relationships generated by a deliberate user action.
    pub const fn is_user_action(self) -> bool {
        matches!(
            self,
            EdgeKind::Link
                | EdgeKind::TypedLocation
                | EdgeKind::BookmarkClick
                | EdgeKind::FormSubmit
                | EdgeKind::SearchResult
                | EdgeKind::DownloadFrom
                | EdgeKind::NewTab
                | EdgeKind::Reload
                | EdgeKind::BackForward
                | EdgeKind::BookmarkCreated
        )
    }

    /// Causal relationships participate in lineage. Temporal overlap is
    /// associative context, not causality, and is excluded from ancestor
    /// queries such as download lineage.
    pub const fn is_causal(self) -> bool {
        !matches!(self, EdgeKind::TemporalOverlap)
    }

    /// Relationships §3.2 calls "second-class citizens" in today's browsers:
    /// ones most browsers fail to record at all. Used by ablation A4.
    pub const fn is_second_class(self) -> bool {
        matches!(
            self,
            EdgeKind::TypedLocation
                | EdgeKind::NewTab
                | EdgeKind::TemporalOverlap
                | EdgeKind::BookmarkClick
                | EdgeKind::SearchResult
                | EdgeKind::FormSubmit
        )
    }
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The payload of one directed derives-from edge.
///
/// Edges are time-stamped (the §3.1 "time stamping edges" design point:
/// every traversal is an event with a time) and may carry attributes.
///
/// # Examples
///
/// ```
/// use bp_graph::{Edge, EdgeKind, NodeId, Timestamp};
/// let e = Edge::new(NodeId::new(1), NodeId::new(0), EdgeKind::Link, Timestamp::from_secs(5));
/// assert_eq!(e.src(), NodeId::new(1));
/// assert_eq!(e.dst(), NodeId::new(0));
/// assert!(e.kind().is_causal());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    src: NodeId,
    dst: NodeId,
    kind: EdgeKind,
    at: Timestamp,
    attrs: AttrMap,
}

impl Edge {
    /// Creates an edge stating that `src` derives from `dst` at time `at`.
    pub fn new(src: NodeId, dst: NodeId, kind: EdgeKind, at: Timestamp) -> Self {
        Edge {
            src,
            dst,
            kind,
            at,
            attrs: AttrMap::new(),
        }
    }

    /// Builder-style attribute attachment.
    #[must_use]
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<crate::AttrValue>) -> Self {
        self.attrs.set(key, value);
        self
    }

    /// The derived (newer) endpoint.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// The source-of-derivation (older) endpoint.
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// The action that generated the relationship.
    pub fn kind(&self) -> EdgeKind {
        self.kind
    }

    /// When the action occurred.
    pub fn at(&self) -> Timestamp {
        self.at
    }

    /// Immutable view of the attributes.
    pub fn attrs(&self) -> &AttrMap {
        &self.attrs
    }

    /// Mutable view of the attributes.
    pub fn attrs_mut(&mut self) -> &mut AttrMap {
        &mut self.attrs
    }

    /// Approximate encoded size in bytes, for experiment E1.
    pub fn size_bytes(&self) -> usize {
        // src + dst + kind + timestamp + attrs
        4 + 4 + 1 + 8 + self.attrs.size_bytes()
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -[{}]-> {}", self.src, self.kind, self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_roundtrip() {
        for kind in EdgeKind::ALL {
            assert_eq!(EdgeKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(EdgeKind::from_code(99), None);
    }

    #[test]
    fn kind_labels_roundtrip() {
        for kind in EdgeKind::ALL {
            assert_eq!(EdgeKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(EdgeKind::from_label("bogus"), None);
    }

    #[test]
    fn codes_match_all_order() {
        for (i, kind) in EdgeKind::ALL.iter().enumerate() {
            assert_eq!(kind.code() as usize, i, "ALL order must match codes");
        }
    }

    #[test]
    fn automatic_vs_user_action_partition_causal_kinds() {
        for kind in EdgeKind::ALL {
            if kind == EdgeKind::TemporalOverlap {
                continue; // neither: associative context
            }
            assert!(
                kind.is_automatic() ^ kind.is_user_action(),
                "{kind} must be exactly one of automatic/user-action"
            );
        }
    }

    #[test]
    fn temporal_overlap_is_the_only_non_causal_kind() {
        let non_causal: Vec<EdgeKind> = EdgeKind::ALL
            .into_iter()
            .filter(|k| !k.is_causal())
            .collect();
        assert_eq!(non_causal, vec![EdgeKind::TemporalOverlap]);
    }

    #[test]
    fn second_class_includes_typed_and_new_tab() {
        assert!(EdgeKind::TypedLocation.is_second_class());
        assert!(EdgeKind::NewTab.is_second_class());
        assert!(!EdgeKind::Link.is_second_class());
        assert!(!EdgeKind::Redirect.is_second_class());
    }

    #[test]
    fn edge_accessors() {
        let e = Edge::new(
            NodeId::new(2),
            NodeId::new(1),
            EdgeKind::Redirect,
            Timestamp::from_secs(3),
        )
        .with_attr("status", 301i64);
        assert_eq!(e.src().index(), 2);
        assert_eq!(e.dst().index(), 1);
        assert_eq!(e.at(), Timestamp::from_secs(3));
        assert_eq!(e.attrs().get_int("status"), Some(301));
    }

    #[test]
    fn edge_size_includes_attrs() {
        let bare = Edge::new(
            NodeId::new(0),
            NodeId::new(1),
            EdgeKind::Link,
            Timestamp::EPOCH,
        );
        assert_eq!(bare.size_bytes(), 17);
        let attributed = bare.clone().with_attr("k", "vv");
        assert_eq!(attributed.size_bytes(), 17 + 1 + 2);
    }

    #[test]
    fn display_shows_direction() {
        let e = Edge::new(
            NodeId::new(5),
            NodeId::new(4),
            EdgeKind::Link,
            Timestamp::EPOCH,
        );
        assert_eq!(e.to_string(), "n5 -[link]-> n4");
    }
}
