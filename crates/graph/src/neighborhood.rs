//! Weighted graph-neighborhood expansion.
//!
//! "We implement Contextual History Search as a graph neighborhood
//! expansion algorithm" (§4), following Shah et al.'s provenance-based
//! desktop search: start from a seed set of textual hits and spread
//! relevance to provenance neighbors with per-hop decay, so that "as a
//! first-generation descendant of the rosebud web search page, Citizen Kane
//! would receive substantial weight" (§2.1).

use crate::edge::EdgeKind;
use crate::graph::ProvenanceGraph;
use crate::ids::NodeId;
use crate::traverse::Budget;
use bp_obs::clock::ClockHandle;
use std::collections::HashMap;

/// Configuration for [`expand`].
#[derive(Debug, Clone)]
pub struct ExpansionConfig {
    /// Multiplicative decay applied per hop (0 < decay < 1). A decay of
    /// 0.5 gives first-generation neighbors half the seed's weight.
    pub decay: f64,
    /// Maximum hops to spread.
    pub max_hops: usize,
    /// Per-edge-kind multiplier; kinds absent from the map use 1.0.
    /// Callers de-emphasize automatic edges here (§3.2 "unify edges" —
    /// a redirect hop should cost nothing, set its weight near 1.0;
    /// an overlap edge carries weaker evidence, set it below 1.0).
    pub kind_weights: Vec<(EdgeKind, f64)>,
    /// Weights below this threshold stop spreading (keeps the frontier
    /// small on 25k-node histories).
    pub min_weight: f64,
}

impl Default for ExpansionConfig {
    fn default() -> Self {
        ExpansionConfig {
            decay: 0.5,
            max_hops: 3,
            kind_weights: vec![
                // Redirect/embed hops are mechanical; traversing them
                // should not dilute relevance (the §3.2 unification).
                (EdgeKind::Redirect, 1.0),
                (EdgeKind::Embed, 0.8),
                // Temporal association is weaker evidence than navigation.
                (EdgeKind::TemporalOverlap, 0.4),
                // Version edges connect instances of the same object.
                (EdgeKind::VersionOf, 1.0),
                (EdgeKind::InstanceOf, 1.0),
            ],
            min_weight: 1e-4,
        }
    }
}

impl ExpansionConfig {
    pub(crate) fn weight_of(&self, kind: EdgeKind) -> f64 {
        self.kind_weights
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(1.0, |(_, w)| *w)
    }
}

/// Result of a neighborhood expansion: accumulated relevance per node.
#[derive(Debug, Clone, Default)]
pub struct Expansion {
    /// Relevance mass accumulated at each reached node (seeds included).
    pub weight: HashMap<NodeId, f64>,
    /// `true` if a budget limit stopped the expansion early.
    pub truncated: bool,
}

impl Expansion {
    /// Nodes sorted by descending accumulated weight, ties broken by id
    /// for determinism.
    pub fn ranked(&self) -> Vec<(NodeId, f64)> {
        let mut v: Vec<(NodeId, f64)> = self.weight.iter().map(|(&n, &w)| (n, w)).collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        v
    }

    /// Weight of one node (0.0 if unreached).
    pub fn weight_of(&self, node: NodeId) -> f64 {
        self.weight.get(&node).copied().unwrap_or(0.0)
    }
}

/// Spreads relevance from weighted `seeds` outward through the provenance
/// graph (both directions — context flows along an edge either way), with
/// per-hop decay and per-kind multipliers, within `budget`.
///
/// Expansion is layered: a node accumulates weight from every path that
/// first reaches it (all arrivals within its BFS layer sum), so a node
/// connected to several seeds outranks a node connected to one — exactly
/// the "relevance of their provenance neighbors" reordering of Shah et al.
/// Weight never echoes back to already-reached nodes, so a single
/// seed–neighbor pair cannot inflate each other by bouncing.
pub fn expand(
    graph: &ProvenanceGraph,
    seeds: &[(NodeId, f64)],
    config: &ExpansionConfig,
    budget: &Budget,
) -> Expansion {
    let clock = budget.deadline().map(|d| {
        let handle = budget.clock().cloned().unwrap_or_else(ClockHandle::real);
        (handle.start(), d)
    });
    let mut out = Expansion::default();
    // Frontier holds (node, incoming weight) for the current hop.
    let mut frontier: Vec<(NodeId, f64)> = Vec::new();
    for &(n, w) in seeds {
        if n.as_usize() < graph.node_count() && w > 0.0 {
            *out.weight.entry(n).or_insert(0.0) += w;
            frontier.push((n, w));
        }
    }
    let max_hops = budget
        .max_depth()
        .map_or(config.max_hops, |d| d.min(config.max_hops));

    for _hop in 0..max_hops {
        if frontier.is_empty() {
            break;
        }
        let mut next: HashMap<NodeId, f64> = HashMap::new();
        for &(node, w) in &frontier {
            if let Some((ref t0, limit)) = clock {
                // `>=` so a zero deadline expires on the first check
                // despite the stopwatch's microsecond resolution.
                if t0.elapsed() >= limit {
                    out.truncated = true;
                    return out;
                }
            }
            for (eid, nbr) in graph.neighbors(node) {
                if out.weight.contains_key(&nbr) {
                    continue; // layered: no echo back to reached nodes
                }
                let Ok(edge) = graph.edge(eid) else { continue };
                let spread = w * config.decay * config.weight_of(edge.kind());
                if spread < config.min_weight {
                    continue;
                }
                *next.entry(nbr).or_insert(0.0) += spread;
            }
        }
        if let Some(max) = budget.max_nodes() {
            if out.weight.len() + next.len() > max {
                out.truncated = true;
                // Keep the heaviest entries up to the cap.
                let mut entries: Vec<(NodeId, f64)> = next.into_iter().collect();
                entries.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                });
                entries.truncate(max.saturating_sub(out.weight.len()));
                for (n, w) in &entries {
                    *out.weight.entry(*n).or_insert(0.0) += *w;
                }
                return out;
            }
        }
        frontier = next.iter().map(|(&n, &w)| (n, w)).collect();
        for (n, w) in next {
            *out.weight.entry(n).or_insert(0.0) += w;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Node, NodeKind};
    use crate::time::Timestamp;

    fn t(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    /// rosebud scenario: search page --(link)--> kane visit.
    fn rosebud() -> (ProvenanceGraph, NodeId, NodeId) {
        let mut g = ProvenanceGraph::new();
        let search = g.add_node(Node::new(NodeKind::PageVisit, "http://se/?q=rosebud", t(1)));
        let kane = g.add_node(Node::new(NodeKind::PageVisit, "http://films/kane", t(2)));
        g.add_edge(kane, search, EdgeKind::Link, t(2)).unwrap();
        (g, search, kane)
    }

    #[test]
    fn first_generation_descendant_gets_substantial_weight() {
        let (g, search, kane) = rosebud();
        let exp = expand(
            &g,
            &[(search, 1.0)],
            &ExpansionConfig::default(),
            &Budget::new(),
        );
        assert_eq!(exp.weight_of(search), 1.0);
        assert!(
            (exp.weight_of(kane) - 0.5).abs() < 1e-12,
            "one hop at decay 0.5"
        );
    }

    #[test]
    fn weight_decays_per_hop() {
        let mut g = ProvenanceGraph::new();
        let ids: Vec<NodeId> = (0..4)
            .map(|i| g.add_node(Node::new(NodeKind::PageVisit, format!("u{i}"), t(i))))
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[1], w[0], EdgeKind::Link, t(1)).unwrap();
        }
        let exp = expand(
            &g,
            &[(ids[0], 1.0)],
            &ExpansionConfig::default(),
            &Budget::new(),
        );
        assert!(exp.weight_of(ids[1]) > exp.weight_of(ids[2]));
        assert!(exp.weight_of(ids[2]) > exp.weight_of(ids[3]));
    }

    #[test]
    fn multiple_seeds_accumulate() {
        let mut g = ProvenanceGraph::new();
        let a = g.add_node(Node::new(NodeKind::PageVisit, "a", t(0)));
        let b = g.add_node(Node::new(NodeKind::PageVisit, "b", t(0)));
        let mid = g.add_node(Node::new(NodeKind::PageVisit, "mid", t(1)));
        g.add_edge(mid, a, EdgeKind::Link, t(1)).unwrap();
        g.add_edge(mid, b, EdgeKind::Link, t(1)).unwrap();
        let exp = expand(
            &g,
            &[(a, 1.0), (b, 1.0)],
            &ExpansionConfig::default(),
            &Budget::new(),
        );
        assert!(
            (exp.weight_of(mid) - 1.0).abs() < 1e-9,
            "two seeds at 0.5 each = 1.0, got {}",
            exp.weight_of(mid)
        );
    }

    #[test]
    fn overlap_edges_spread_less_than_links() {
        let mut g = ProvenanceGraph::new();
        let seed = g.add_node(Node::new(NodeKind::PageVisit, "s", t(0)));
        let by_link = g.add_node(Node::new(NodeKind::PageVisit, "l", t(1)));
        let by_overlap = g.add_node(Node::new(NodeKind::PageVisit, "o", t(1)));
        g.add_edge(by_link, seed, EdgeKind::Link, t(1)).unwrap();
        g.add_edge(by_overlap, seed, EdgeKind::TemporalOverlap, t(1))
            .unwrap();
        let exp = expand(
            &g,
            &[(seed, 1.0)],
            &ExpansionConfig::default(),
            &Budget::new(),
        );
        assert!(exp.weight_of(by_link) > exp.weight_of(by_overlap));
        assert!(exp.weight_of(by_overlap) > 0.0);
    }

    #[test]
    fn ranked_is_descending_and_deterministic() {
        let (g, search, kane) = rosebud();
        let exp = expand(
            &g,
            &[(search, 1.0)],
            &ExpansionConfig::default(),
            &Budget::new(),
        );
        let ranked = exp.ranked();
        assert_eq!(ranked[0].0, search);
        assert_eq!(ranked[1].0, kane);
    }

    #[test]
    fn min_weight_prunes_deep_spread() {
        let mut g = ProvenanceGraph::new();
        let ids: Vec<NodeId> = (0..20)
            .map(|i| g.add_node(Node::new(NodeKind::PageVisit, format!("u{i}"), t(i))))
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[1], w[0], EdgeKind::Link, t(1)).unwrap();
        }
        let cfg = ExpansionConfig {
            max_hops: 20,
            min_weight: 0.2,
            ..ExpansionConfig::default()
        };
        let exp = expand(&g, &[(ids[0], 1.0)], &cfg, &Budget::new());
        // 0.5^3 = 0.125 < 0.2 so spread stops after 2 hops.
        assert!(exp.weight.contains_key(&ids[2]));
        assert!(!exp.weight.contains_key(&ids[3]));
    }

    #[test]
    fn node_budget_truncates() {
        let mut g = ProvenanceGraph::new();
        let seed = g.add_node(Node::new(NodeKind::PageVisit, "s", t(0)));
        for i in 0..50 {
            let v = g.add_node(Node::new(NodeKind::PageVisit, format!("u{i}"), t(i + 1)));
            g.add_edge(v, seed, EdgeKind::Link, t(i + 1)).unwrap();
        }
        let exp = expand(
            &g,
            &[(seed, 1.0)],
            &ExpansionConfig::default(),
            &Budget::new().with_max_nodes(10),
        );
        assert!(exp.truncated);
        assert!(exp.weight.len() <= 10);
    }

    #[test]
    fn empty_and_invalid_seeds() {
        let (g, ..) = rosebud();
        let exp = expand(&g, &[], &ExpansionConfig::default(), &Budget::new());
        assert!(exp.weight.is_empty());
        let exp2 = expand(
            &g,
            &[(NodeId::new(99), 1.0), (NodeId::new(0), 0.0)],
            &ExpansionConfig::default(),
            &Budget::new(),
        );
        assert!(exp2.weight.is_empty());
    }
}
