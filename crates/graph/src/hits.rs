//! Kleinberg's HITS on history subgraphs.
//!
//! §3 observes that "many web search algorithms, such as Kleinberg's HITS,
//! are graph algorithms that exploit the relationships between pages" yet
//! "there are no graph algorithms applied to the history in any modern
//! browser". Contextual history search (§4) is implemented "as a graph
//! neighborhood expansion algorithm, similar to web search algorithms such
//! as Kleinberg's HITS". This module supplies HITS itself, run over an
//! arbitrary node subset of the provenance graph (typically the textual-hit
//! neighborhood — the classic HITS "base set").

use crate::edge::EdgeKind;
use crate::graph::ProvenanceGraph;
use crate::ids::NodeId;
use std::collections::HashMap;

/// Per-node hub and authority scores produced by [`hits`].
#[derive(Debug, Clone, PartialEq)]
pub struct HitsScores {
    /// Authority score per node: how much the node is *derived from* by
    /// good hubs (a page many journeys led to).
    pub authority: HashMap<NodeId, f64>,
    /// Hub score per node: how much the node *derives from* good
    /// authorities (a page that led to many good destinations).
    pub hub: HashMap<NodeId, f64>,
    /// Number of power iterations actually performed.
    pub iterations: usize,
}

impl HitsScores {
    /// Nodes sorted by descending authority.
    pub fn top_authorities(&self, k: usize) -> Vec<(NodeId, f64)> {
        let mut v: Vec<(NodeId, f64)> = self.authority.iter().map(|(&n, &s)| (n, s)).collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        v.truncate(k);
        v
    }

    /// Nodes sorted by descending hub score.
    pub fn top_hubs(&self, k: usize) -> Vec<(NodeId, f64)> {
        let mut v: Vec<(NodeId, f64)> = self.hub.iter().map(|(&n, &s)| (n, s)).collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        v.truncate(k);
        v
    }
}

/// Configuration for [`hits`].
#[derive(Debug, Clone)]
pub struct HitsConfig {
    /// Maximum power iterations (the classic value of 20–50 converges on
    /// history-scale graphs well before this).
    pub max_iterations: usize,
    /// L2 convergence threshold on the authority vector.
    pub tolerance: f64,
    /// Whether automatic edges (redirect/embed/version bookkeeping)
    /// contribute; §3.2 suggests personalization algorithms exclude them.
    pub include_automatic_edges: bool,
}

impl Default for HitsConfig {
    fn default() -> Self {
        HitsConfig {
            max_iterations: 50,
            tolerance: 1e-9,
            include_automatic_edges: false,
        }
    }
}

/// Runs HITS restricted to `base_set`, following edges of the provenance
/// graph in both roles: an edge `src → dst` (src derives from dst) makes
/// `src` a *hub pointing at* `dst`, and `dst` an *authority*.
///
/// In browser terms: pages that many navigation journeys passed *through*
/// become hubs; pages journeys *arrived at* become authorities. Temporal
/// overlap edges never contribute (they are not navigational).
///
/// Returns uniform zero scores for an empty base set.
pub fn hits(graph: &ProvenanceGraph, base_set: &[NodeId], config: &HitsConfig) -> HitsScores {
    let mut in_set = vec![false; graph.node_count()];
    for &n in base_set {
        if n.as_usize() < in_set.len() {
            in_set[n.as_usize()] = true;
        }
    }
    let members: Vec<NodeId> = base_set
        .iter()
        .copied()
        .filter(|n| n.as_usize() < graph.node_count())
        .collect();
    if members.is_empty() {
        return HitsScores {
            authority: HashMap::new(),
            hub: HashMap::new(),
            iterations: 0,
        };
    }

    let edge_ok = |kind: EdgeKind| {
        kind.is_causal() && (config.include_automatic_edges || !kind.is_automatic())
    };

    // Precompute the induced adjacency: (hub_index, authority_index)
    // pairs, iterating members in order so floating-point accumulation
    // (and therefore the scores) is deterministic run to run.
    let index_of: HashMap<NodeId, usize> =
        members.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut arcs: Vec<(usize, usize)> = Vec::new();
    for (i, &node) in members.iter().enumerate() {
        // bp-lint: allow(L009): the base set is the caller's already-budgeted expansion result, so this loop touches at most Budget::max_nodes members — the deadline was honored upstream
        for (eid, parent) in graph.parents(node) {
            // Adjacency lists only hold live edges; a miss would mean the
            // graph's internal invariant broke, and skipping the arc
            // degrades better than aborting a query (L002).
            let Ok(edge) = graph.edge(eid) else { continue };
            let kind = edge.kind();
            if edge_ok(kind) {
                if let Some(&j) = index_of.get(&parent) {
                    arcs.push((i, j)); // node is hub, parent is authority
                }
            }
        }
    }

    let n = members.len();
    let mut auth = vec![1.0f64; n];
    let mut hub = vec![1.0f64; n];
    let mut iterations = 0;
    for _ in 0..config.max_iterations {
        iterations += 1;
        let mut new_auth = vec![0.0f64; n];
        for &(h, a) in &arcs {
            new_auth[a] += hub[h];
        }
        let mut new_hub = vec![0.0f64; n];
        for &(h, a) in &arcs {
            new_hub[h] += new_auth[a];
        }
        normalize(&mut new_auth);
        normalize(&mut new_hub);
        let delta: f64 = new_auth
            .iter()
            .zip(&auth)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        auth = new_auth;
        hub = new_hub;
        if delta.sqrt() < config.tolerance {
            break;
        }
    }

    HitsScores {
        authority: members
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, auth[i]))
            .collect(),
        hub: members
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, hub[i]))
            .collect(),
        iterations,
    }
}

fn normalize(v: &mut [f64]) {
    let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Node, NodeKind};
    use crate::time::Timestamp;

    fn t(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    /// Star: many visits all derive from one search page (the authority).
    fn star() -> (ProvenanceGraph, NodeId, Vec<NodeId>) {
        let mut g = ProvenanceGraph::new();
        let hubed = g.add_node(Node::new(NodeKind::PageVisit, "http://se/?q=x", t(0)));
        let leaves: Vec<NodeId> = (0..5)
            .map(|i| {
                let v = g.add_node(Node::new(
                    NodeKind::PageVisit,
                    format!("http://r{i}/"),
                    t(i + 1),
                ));
                g.add_edge(v, hubed, EdgeKind::Link, t(i + 1)).unwrap();
                v
            })
            .collect();
        (g, hubed, leaves)
    }

    #[test]
    fn star_center_is_top_authority() {
        let (g, center, leaves) = star();
        let mut base = vec![center];
        base.extend(&leaves);
        let scores = hits(&g, &base, &HitsConfig::default());
        let top = scores.top_authorities(1);
        assert_eq!(top[0].0, center);
        assert!(top[0].1 > 0.99, "center holds all authority: {}", top[0].1);
        // All leaves are equal hubs.
        let hubs = scores.top_hubs(5);
        for (n, s) in hubs {
            assert!(leaves.contains(&n));
            assert!((s - 1.0 / (5f64).sqrt()).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_base_set() {
        let (g, ..) = star();
        let scores = hits(&g, &[], &HitsConfig::default());
        assert!(scores.authority.is_empty());
        assert_eq!(scores.iterations, 0);
    }

    #[test]
    fn base_set_restricts_computation() {
        let (g, center, leaves) = star();
        // Base set excludes the center: no arcs at all, scores stay uniform.
        let scores = hits(&g, &leaves, &HitsConfig::default());
        assert!(!scores.authority.contains_key(&center));
        for &l in &leaves {
            assert_eq!(scores.authority[&l], 0.0);
        }
    }

    #[test]
    fn out_of_range_ids_ignored() {
        let (g, center, _) = star();
        let scores = hits(&g, &[center, NodeId::new(999)], &HitsConfig::default());
        assert_eq!(scores.authority.len(), 1);
    }

    #[test]
    fn automatic_edges_excluded_by_default() {
        let mut g = ProvenanceGraph::new();
        let a = g.add_node(Node::new(NodeKind::PageVisit, "a", t(0)));
        let b = g.add_node(Node::new(NodeKind::PageVisit, "b", t(1)));
        g.add_edge(b, a, EdgeKind::Redirect, t(1)).unwrap();
        let excl = hits(&g, &[a, b], &HitsConfig::default());
        assert_eq!(excl.authority[&a], 0.0, "redirect must not grant authority");
        let incl = hits(
            &g,
            &[a, b],
            &HitsConfig {
                include_automatic_edges: true,
                ..HitsConfig::default()
            },
        );
        assert!(incl.authority[&a] > 0.9);
    }

    #[test]
    fn converges_quickly_on_small_graphs() {
        let (g, center, leaves) = star();
        let mut base = vec![center];
        base.extend(&leaves);
        let scores = hits(&g, &base, &HitsConfig::default());
        assert!(scores.iterations <= 5, "star converges almost immediately");
    }

    mod proptests {
        use super::super::*;
        use crate::node::{Node, NodeKind};
        use crate::time::Timestamp;
        use proptest::prelude::*;

        proptest! {
            /// HITS scores are finite, nonnegative, L2-normalized (or all
            /// zero), and deterministic for any random DAG.
            #[test]
            fn scores_are_normalized_and_deterministic(
                links in prop::collection::vec((1u8..30, 0u8..30), 0..80)
            ) {
                let mut g = ProvenanceGraph::new();
                for i in 0..31 {
                    g.add_node(Node::new(
                        NodeKind::PageVisit,
                        format!("u{i}"),
                        Timestamp::from_secs(i),
                    ));
                }
                for &(src, dst) in &links {
                    let src = u32::from(src.max(1));
                    let dst = u32::from(dst) % src;
                    let _ = g.add_edge(
                        NodeId::new(src % 31),
                        NodeId::new(dst),
                        EdgeKind::Link,
                        Timestamp::from_secs(i64::from(src)),
                    );
                }
                let base: Vec<NodeId> = g.node_ids().collect();
                let a = hits(&g, &base, &HitsConfig::default());
                let b = hits(&g, &base, &HitsConfig::default());
                for (&n, &score) in &a.authority {
                    prop_assert!(score.is_finite() && score >= 0.0);
                    prop_assert_eq!(b.authority[&n], score, "deterministic");
                }
                let norm: f64 = a.authority.values().map(|s| s * s).sum();
                prop_assert!(
                    norm < 1e-12 || (norm - 1.0).abs() < 1e-6,
                    "authority vector normalized or zero, got ||a||² = {norm}"
                );
            }
        }
    }

    #[test]
    fn two_communities_rank_internally() {
        // Two disjoint stars; each center should out-rank all leaves.
        let mut g = ProvenanceGraph::new();
        let mk_star = |g: &mut ProvenanceGraph, tag: &str, base: i64| {
            let c = g.add_node(Node::new(
                NodeKind::PageVisit,
                format!("http://{tag}/"),
                t(base),
            ));
            for i in 0..3 {
                let v = g.add_node(Node::new(
                    NodeKind::PageVisit,
                    format!("http://{tag}/{i}"),
                    t(base + i + 1),
                ));
                g.add_edge(v, c, EdgeKind::Link, t(base + i + 1)).unwrap();
            }
            c
        };
        let c1 = mk_star(&mut g, "one", 0);
        let c2 = mk_star(&mut g, "two", 100);
        let base: Vec<NodeId> = g.node_ids().collect();
        let scores = hits(&g, &base, &HitsConfig::default());
        let top2 = scores.top_authorities(2);
        let tops: Vec<NodeId> = top2.iter().map(|(n, _)| *n).collect();
        assert!(tops.contains(&c1) && tops.contains(&c2));
    }
}
