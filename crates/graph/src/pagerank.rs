//! Personalized PageRank with restart.
//!
//! §4's future work calls for "more intelligent algorithms that can
//! respond to our use case queries with high-quality results", building on
//! "existing information retrieval research on web search". Personalized
//! PageRank (random walk with restart to a seed distribution) is the
//! standard next step beyond one-shot neighborhood expansion: relevance
//! mass circulates until a fixed point, so multi-path connectivity counts
//! and distant-but-well-connected nodes surface.
//!
//! Walks treat provenance edges as undirected (context flows both ways
//! along a derivation), like [`crate::neighborhood`].

use crate::graph::ProvenanceGraph;
use crate::ids::NodeId;
use crate::traverse::Budget;
use std::collections::HashMap;

/// Configuration for [`personalized_pagerank`].
#[derive(Debug, Clone)]
pub struct PageRankConfig {
    /// Probability of continuing the walk (1 − restart probability).
    /// The classic 0.85 biases toward exploration; smaller values stay
    /// closer to the seeds (more "contextual").
    pub damping: f64,
    /// Maximum power iterations.
    pub max_iterations: usize,
    /// L1 convergence threshold.
    pub tolerance: f64,
    /// Whether automatic edges (redirect/embed/bookkeeping) carry mass.
    pub include_automatic_edges: bool,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.7,
            max_iterations: 50,
            tolerance: 1e-9,
            include_automatic_edges: true,
        }
    }
}

/// The converged scores.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PageRankScores {
    /// Stationary probability mass per node (sums to ~1 over the reachable
    /// component).
    pub score: HashMap<NodeId, f64>,
    /// Iterations performed.
    pub iterations: usize,
}

impl PageRankScores {
    /// Score of one node (0.0 if never reached).
    pub fn score_of(&self, node: NodeId) -> f64 {
        self.score.get(&node).copied().unwrap_or(0.0)
    }

    /// Nodes by descending score, ties broken by id.
    pub fn ranked(&self) -> Vec<(NodeId, f64)> {
        let mut v: Vec<(NodeId, f64)> = self.score.iter().map(|(&n, &s)| (n, s)).collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        v
    }
}

/// Runs personalized PageRank from weighted `seeds` over the undirected
/// view of the provenance graph. Temporal-overlap edges participate at
/// reduced conductance (they are association, not navigation).
///
/// Seeds with nonpositive weight or out-of-range ids are ignored; an
/// effectively empty seed set yields empty scores.
///
/// This is the convenience entry point: it snapshots the graph into a
/// [`crate::frozen::FrozenGraph`] and runs the flat-buffer kernel
/// ([`crate::frozen::personalized_pagerank_frozen`]) serially with an
/// unbounded [`Budget`]. Hot paths that amortize the snapshot (and want
/// parallelism, deadlines, or the score cache) hold a
/// [`crate::frozen::FrozenHandle`] and call the kernel directly.
pub fn personalized_pagerank(
    graph: &ProvenanceGraph,
    seeds: &[(NodeId, f64)],
    config: &PageRankConfig,
) -> PageRankScores {
    let frozen = crate::frozen::FrozenGraph::build(graph);
    crate::frozen::personalized_pagerank_frozen(&frozen, seeds, config, &Budget::new())
        .into_scores()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::EdgeKind;
    use crate::node::{Node, NodeKind};
    use crate::time::Timestamp;
    use proptest::prelude::*;

    fn t(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn chain(n: usize) -> (ProvenanceGraph, Vec<NodeId>) {
        let mut g = ProvenanceGraph::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| g.add_node(Node::new(NodeKind::PageVisit, format!("u{i}"), t(i as i64))))
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[1], w[0], EdgeKind::Link, t(1)).unwrap();
        }
        (g, ids)
    }

    #[test]
    fn mass_concentrates_near_the_seed() {
        let (g, ids) = chain(6);
        let scores = personalized_pagerank(&g, &[(ids[0], 1.0)], &PageRankConfig::default());
        assert!(scores.score_of(ids[0]) > scores.score_of(ids[1]));
        assert!(scores.score_of(ids[1]) > scores.score_of(ids[3]));
        assert!(scores.score_of(ids[5]) > 0.0, "whole chain reached");
        let ranked = scores.ranked();
        assert_eq!(ranked[0].0, ids[0]);
    }

    #[test]
    fn multi_path_connectivity_beats_single_path() {
        // Two candidates one hop from the seed cluster: one reachable by
        // two paths, one by a single path. PPR must prefer the former.
        let mut g = ProvenanceGraph::new();
        let s1 = g.add_node(Node::new(NodeKind::PageVisit, "s1", t(0)));
        let s2 = g.add_node(Node::new(NodeKind::PageVisit, "s2", t(0)));
        let double = g.add_node(Node::new(NodeKind::PageVisit, "double", t(1)));
        let single = g.add_node(Node::new(NodeKind::PageVisit, "single", t(1)));
        g.add_edge(double, s1, EdgeKind::Link, t(1)).unwrap();
        g.add_edge(double, s2, EdgeKind::Link, t(1)).unwrap();
        g.add_edge(single, s1, EdgeKind::Link, t(1)).unwrap();
        let scores = personalized_pagerank(&g, &[(s1, 1.0), (s2, 1.0)], &PageRankConfig::default());
        assert!(
            scores.score_of(double) > scores.score_of(single),
            "{} vs {}",
            scores.score_of(double),
            scores.score_of(single)
        );
    }

    #[test]
    fn empty_or_invalid_seeds_yield_empty_scores() {
        let (g, _) = chain(3);
        assert_eq!(
            personalized_pagerank(&g, &[], &PageRankConfig::default()),
            PageRankScores::default()
        );
        assert_eq!(
            personalized_pagerank(
                &g,
                &[(NodeId::new(99), 1.0), (NodeId::new(0), -2.0)],
                &PageRankConfig::default()
            ),
            PageRankScores::default()
        );
    }

    #[test]
    fn smaller_damping_stays_closer_to_seeds() {
        let (g, ids) = chain(8);
        let near = personalized_pagerank(
            &g,
            &[(ids[0], 1.0)],
            &PageRankConfig {
                damping: 0.3,
                ..PageRankConfig::default()
            },
        );
        let far = personalized_pagerank(
            &g,
            &[(ids[0], 1.0)],
            &PageRankConfig {
                damping: 0.9,
                ..PageRankConfig::default()
            },
        );
        assert!(near.score_of(ids[0]) > far.score_of(ids[0]));
        assert!(near.score_of(ids[7]) < far.score_of(ids[7]));
    }

    #[test]
    fn overlap_edges_conduct_less_than_links() {
        let mut g = ProvenanceGraph::new();
        let seed = g.add_node(Node::new(NodeKind::PageVisit, "s", t(0)));
        let by_link = g.add_node(Node::new(NodeKind::PageVisit, "l", t(1)));
        let by_overlap = g.add_node(Node::new(NodeKind::PageVisit, "o", t(1)));
        g.add_edge(by_link, seed, EdgeKind::Link, t(1)).unwrap();
        g.add_edge(by_overlap, seed, EdgeKind::TemporalOverlap, t(1))
            .unwrap();
        let scores = personalized_pagerank(&g, &[(seed, 1.0)], &PageRankConfig::default());
        assert!(scores.score_of(by_link) > scores.score_of(by_overlap));
    }

    proptest! {
        /// Scores are a (sub)probability distribution: nonnegative and
        /// summing to ≤ 1 + ε, for any random history DAG.
        #[test]
        fn scores_form_a_distribution(
            links in prop::collection::vec((1u8..25, 0u8..25), 0..60),
            seed in 0u8..25,
        ) {
            let mut g = ProvenanceGraph::new();
            for i in 0..26 {
                g.add_node(Node::new(NodeKind::PageVisit, format!("u{i}"), t(i)));
            }
            for &(src, dst) in &links {
                let src = u32::from(src.max(1));
                let dst = u32::from(dst) % src;
                let _ = g.add_edge(
                    NodeId::new(src % 26),
                    NodeId::new(dst),
                    EdgeKind::Link,
                    t(i64::from(src)),
                );
            }
            let scores = personalized_pagerank(
                &g,
                &[(NodeId::new(u32::from(seed) % 26), 1.0)],
                &PageRankConfig::default(),
            );
            let total: f64 = scores.score.values().sum();
            prop_assert!(total <= 1.0 + 1e-9, "total {total}");
            for &s in scores.score.values() {
                prop_assert!(s.is_finite() && s >= 0.0);
            }
        }
    }
}
