//! The in-memory versioned provenance graph.
//!
//! [`ProvenanceGraph`] is the homogeneous graph store of §3.4: every history
//! object (page, visit, bookmark, search term, download, form entry, tab) is
//! a node; every browser action is a typed, time-stamped derives-from edge.
//! The structure maintains the provenance invariant — **acyclicity** — at
//! every insertion, using the §3.1 versioning scheme to break would-be
//! cycles instead of rejecting them.

use crate::edge::{Edge, EdgeKind};
use crate::error::GraphError;
use crate::ids::{EdgeId, NodeId, Version};
use crate::node::{Node, NodeKind};
use crate::time::Timestamp;
use std::collections::HashMap;

/// A directed acyclic multigraph of browser history objects.
///
/// Nodes and edges live in append-only arenas; identifiers are dense indexes
/// and are never reused. Adjacency is indexed in both directions:
/// *out*-edges follow derivation (`src → dst`, toward ancestors) and
/// *in*-edges reverse it (toward descendants).
///
/// # Acyclicity
///
/// [`add_edge`](Self::add_edge) rejects edges that would close a cycle with
/// [`GraphError::WouldCycle`]. The higher-level capture layer in `bp-core`
/// avoids ever triggering this by creating a **new version** of the
/// destination visit when the user returns to an already-visited page —
/// exactly the scheme §3.1 describes ("a cycle implies that a new version of
/// some object in the cycle must be created"). The invariant is
/// property-tested in this crate and re-checked end-to-end in the
/// integration suite.
///
/// # Examples
///
/// ```
/// use bp_graph::{ProvenanceGraph, Node, NodeKind, EdgeKind, Timestamp};
///
/// let mut g = ProvenanceGraph::new();
/// let t = Timestamp::from_secs(1);
/// let search = g.add_node(Node::new(NodeKind::SearchTerm, "rosebud", t));
/// let kane = g.add_node(Node::new(NodeKind::PageVisit, "http://films.example/kane", t));
/// g.add_edge(kane, search, EdgeKind::SearchResult, t)?;
/// assert_eq!(g.node_count(), 2);
/// assert_eq!(g.out_degree(kane), 1);
/// # Ok::<(), bp_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProvenanceGraph {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    /// Out-adjacency: edges whose `src` is this node (toward ancestors).
    out_edges: Vec<Vec<EdgeId>>,
    /// In-adjacency: edges whose `dst` is this node (toward descendants).
    in_edges: Vec<Vec<EdgeId>>,
    /// Latest version per (kind, key) for versioned kinds.
    latest_version: HashMap<(NodeKind, String), (NodeId, Version)>,
    /// `true` while every edge points from a newer node to an older node
    /// (`src > dst`). Browser capture always appends in that order, so the
    /// expensive reachability check can be skipped: a high→low edge cannot
    /// close a cycle in a high→low graph. The first low→high edge clears
    /// the flag and reinstates full checking.
    monotone: bool,
    /// Monotonically increasing mutation counter. Every structural or
    /// content mutation bumps it, so read-optimized snapshots
    /// ([`crate::frozen::FrozenGraph`]) and epoch-keyed score caches can
    /// detect staleness with a single integer compare.
    epoch: u64,
}

impl Default for ProvenanceGraph {
    fn default() -> Self {
        Self::with_capacity(0, 0)
    }
}

impl ProvenanceGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with room for `nodes` nodes and `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        ProvenanceGraph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            out_edges: Vec::with_capacity(nodes),
            in_edges: Vec::with_capacity(nodes),
            latest_version: HashMap::new(),
            monotone: true,
            epoch: 0,
        }
    }

    /// The graph's mutation epoch: bumped on every mutation (node or edge
    /// insertion, mutable node borrow, redaction). Two reads of the same
    /// graph with equal epochs are guaranteed to have observed identical
    /// contents, which is what lets [`crate::frozen::FrozenGraph`]
    /// snapshots and cached query scores be reused without re-validation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a node and returns its identifier.
    ///
    /// If the node's kind is versioned (see [`NodeKind::is_versioned`]) the
    /// graph tracks it as the latest version of its `(kind, key)` pair.
    pub fn add_node(&mut self, node: Node) -> NodeId {
        self.epoch += 1;
        let id = NodeId::new(self.nodes.len() as u32);
        if node.kind().is_versioned() {
            self.latest_version
                .insert((node.kind(), node.key().to_owned()), (id, node.version()));
        }
        self.nodes.push(node);
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        id
    }

    /// Adds a **new version** of a versioned object: looks up the current
    /// latest version of `(kind, key)`, creates the successor instance
    /// opened at `at`, and links it to its predecessor with a
    /// [`EdgeKind::VersionOf`] edge. Returns the new node's id.
    ///
    /// This is the §3.1 cycle-breaking primitive: rather than pointing an
    /// edge back at an existing visit (closing a cycle), callers mint a
    /// fresh version and point edges at that.
    pub fn add_version(&mut self, kind: NodeKind, key: &str, at: Timestamp) -> NodeId {
        debug_assert!(kind.is_versioned(), "add_version on unversioned kind");
        let prior = self.latest_version.get(&(kind, key.to_owned())).copied();
        let version = prior.map_or(Version::FIRST, |(_, v)| v.next());
        let id = self.add_node(Node::with_version(kind, key, version, at));
        if let Some((prev_id, _)) = prior {
            // New version derives from the previous one; prev_id < id so
            // this can never cycle.
            self.push_edge(Edge::new(id, prev_id, EdgeKind::VersionOf, at));
        }
        id
    }

    /// Returns the latest version instance of a versioned `(kind, key)`.
    pub fn latest_version_of(&self, kind: NodeKind, key: &str) -> Option<(NodeId, Version)> {
        self.latest_version.get(&(kind, key.to_owned())).copied()
    }

    /// Borrows a node.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if `id` is out of range.
    pub fn node(&self, id: NodeId) -> Result<&Node, GraphError> {
        self.nodes
            .get(id.as_usize())
            .ok_or(GraphError::UnknownNode(id))
    }

    /// Mutably borrows a node.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if `id` is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> Result<&mut Node, GraphError> {
        // The borrow may be used to write (close intervals, edit attrs);
        // assume it is and invalidate snapshots conservatively.
        self.epoch += 1;
        self.nodes
            .get_mut(id.as_usize())
            .ok_or(GraphError::UnknownNode(id))
    }

    /// Borrows an edge.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownEdge`] if `id` is out of range.
    pub fn edge(&self, id: EdgeId) -> Result<&Edge, GraphError> {
        self.edges
            .get(id.as_usize())
            .ok_or(GraphError::UnknownEdge(id))
    }

    /// Adds a derives-from edge `src → dst` of the given kind.
    ///
    /// # Errors
    ///
    /// - [`GraphError::UnknownNode`] if either endpoint does not exist.
    /// - [`GraphError::SelfLoop`] if `src == dst`.
    /// - [`GraphError::WouldCycle`] if `dst` can already reach `src` through
    ///   causal edges — committing the edge would create a cycle. Callers
    ///   that hit this should mint a new version of the destination with
    ///   [`add_version`](Self::add_version) instead.
    pub fn add_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        kind: EdgeKind,
        at: Timestamp,
    ) -> Result<EdgeId, GraphError> {
        self.add_edge_full(Edge::new(src, dst, kind, at))
    }

    /// Adds a fully-constructed edge (including attributes); same checks as
    /// [`add_edge`](Self::add_edge).
    ///
    /// # Errors
    ///
    /// See [`add_edge`](Self::add_edge).
    pub fn add_edge_full(&mut self, edge: Edge) -> Result<EdgeId, GraphError> {
        let (src, dst) = (edge.src(), edge.dst());
        self.check_node(src)?;
        self.check_node(dst)?;
        if src == dst {
            return Err(GraphError::SelfLoop(src));
        }
        // An edge src → dst creates a cycle iff src is already reachable
        // from dst by following derives-from edges. Nodes are created in
        // time order and capture always derives newer from older, so while
        // every edge so far points high→low, another high→low edge cannot
        // close a cycle and the reachability walk is skipped entirely —
        // this keeps both live capture and log replay O(1) per edge.
        if src > dst && self.monotone {
            return Ok(self.push_edge(edge));
        }
        if self.reachable(dst, src) {
            return Err(GraphError::WouldCycle { src, dst });
        }
        if src < dst {
            self.monotone = false;
        }
        Ok(self.push_edge(edge))
    }

    fn push_edge(&mut self, edge: Edge) -> EdgeId {
        self.epoch += 1;
        let id = EdgeId::new(self.edges.len() as u32);
        self.out_edges[edge.src().as_usize()].push(id);
        self.in_edges[edge.dst().as_usize()].push(id);
        self.edges.push(edge);
        id
    }

    fn check_node(&self, id: NodeId) -> Result<(), GraphError> {
        if id.as_usize() < self.nodes.len() {
            Ok(())
        } else {
            Err(GraphError::UnknownNode(id))
        }
    }

    /// Redacts a node in place (see [`Node::redact`]), fixing up the
    /// versioned-object tracking so the old key can no longer be resolved
    /// (a later visit to the same URL starts a fresh version chain).
    ///
    /// Returns the node's previous key.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if `id` is out of range.
    pub fn redact_node(
        &mut self,
        id: NodeId,
        replacement: impl Into<String>,
    ) -> Result<String, GraphError> {
        self.epoch += 1;
        let node = self
            .nodes
            .get_mut(id.as_usize())
            .ok_or(GraphError::UnknownNode(id))?;
        let old_key = node.key().to_owned();
        let kind = node.kind();
        node.redact(replacement);
        if kind.is_versioned() {
            self.latest_version.remove(&(kind, old_key.clone()));
        }
        Ok(old_key)
    }

    /// Returns `true` if adding an edge `src → dst` would create a cycle
    /// (without adding it). Uses the same monotone fast path as
    /// [`add_edge`](Self::add_edge).
    pub fn would_cycle(&self, src: NodeId, dst: NodeId) -> bool {
        if src == dst {
            return true;
        }
        if src > dst && self.monotone {
            return false;
        }
        self.reachable(dst, src)
    }

    /// Returns `true` if `to` is reachable from `from` along derives-from
    /// edges (including the trivial `from == to` case).
    pub fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return true;
        }
        let mut stack = vec![from];
        let mut seen = vec![false; self.nodes.len()];
        seen[from.as_usize()] = true;
        while let Some(n) = stack.pop() {
            for &eid in &self.out_edges[n.as_usize()] {
                let next = self.edges[eid.as_usize()].dst();
                if next == to {
                    return true;
                }
                if !seen[next.as_usize()] {
                    seen[next.as_usize()] = true;
                    stack.push(next);
                }
            }
        }
        false
    }

    /// Edges leaving `id` (derivations of `id`; point toward ancestors).
    pub fn out_edges(&self, id: NodeId) -> &[EdgeId] {
        &self.out_edges[id.as_usize()]
    }

    /// Edges entering `id` (objects derived from `id`; point toward
    /// descendants).
    pub fn in_edges(&self, id: NodeId) -> &[EdgeId] {
        &self.in_edges[id.as_usize()]
    }

    /// Out-degree of `id`.
    pub fn out_degree(&self, id: NodeId) -> usize {
        self.out_edges[id.as_usize()].len()
    }

    /// In-degree of `id`.
    pub fn in_degree(&self, id: NodeId) -> usize {
        self.in_edges[id.as_usize()].len()
    }

    /// Iterates the ancestors one hop away: `(edge id, ancestor node id)`.
    pub fn parents(&self, id: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        self.out_edges[id.as_usize()]
            .iter()
            .map(move |&eid| (eid, self.edges[eid.as_usize()].dst()))
    }

    /// Iterates the descendants one hop away: `(edge id, descendant node id)`.
    pub fn children(&self, id: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        self.in_edges[id.as_usize()]
            .iter()
            .map(move |&eid| (eid, self.edges[eid.as_usize()].src()))
    }

    /// Iterates all undirected neighbors: `(edge id, neighbor node id)`.
    pub fn neighbors(&self, id: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        self.parents(id).chain(self.children(id))
    }

    /// Iterates all node ids in insertion (and therefore time) order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId::new)
    }

    /// Iterates all edge ids in insertion order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edges.len() as u32).map(EdgeId::new)
    }

    /// Iterates `(id, node)` pairs.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::new(i as u32), n))
    }

    /// Iterates `(id, edge)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId::new(i as u32), e))
    }

    /// Iterates node ids of a given kind.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes()
            .filter_map(move |(id, n)| (n.kind() == kind).then_some(id))
    }

    /// Total payload bytes across all nodes and edges (experiment E1's raw
    /// in-memory figure; the storage layer reports the encoded figure).
    pub fn payload_size_bytes(&self) -> usize {
        self.nodes.iter().map(Node::size_bytes).sum::<usize>()
            + self.edges.iter().map(Edge::size_bytes).sum::<usize>()
    }

    /// Verifies the acyclicity invariant by running a full topological
    /// sort. Intended for tests and debug assertions; O(V + E).
    pub fn verify_acyclic(&self) -> bool {
        crate::toposort::topological_order(self).is_some()
    }

    /// Returns `true` while every edge points newer→older (`src > dst`),
    /// i.e. the O(1) cycle-check fast path is still active. Capture
    /// streams are expected to preserve this; the performance tests assert
    /// it to catch regressions that would make edge inserts O(V + E).
    pub fn is_monotone(&self) -> bool {
        self.monotone
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn visit(g: &mut ProvenanceGraph, url: &str, s: i64) -> NodeId {
        g.add_node(Node::new(NodeKind::PageVisit, url, t(s)))
    }

    #[test]
    fn empty_graph() {
        let g = ProvenanceGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.verify_acyclic());
    }

    #[test]
    fn add_nodes_and_edges() {
        let mut g = ProvenanceGraph::new();
        let a = visit(&mut g, "http://a/", 1);
        let b = visit(&mut g, "http://b/", 2);
        let e = g.add_edge(b, a, EdgeKind::Link, t(2)).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge(e).unwrap().kind(), EdgeKind::Link);
        assert_eq!(g.out_degree(b), 1);
        assert_eq!(g.in_degree(a), 1);
        assert_eq!(g.parents(b).next().unwrap().1, a);
        assert_eq!(g.children(a).next().unwrap().1, b);
    }

    #[test]
    fn unknown_node_errors() {
        let mut g = ProvenanceGraph::new();
        let a = visit(&mut g, "http://a/", 1);
        let ghost = NodeId::new(99);
        assert_eq!(g.node(ghost).unwrap_err(), GraphError::UnknownNode(ghost));
        assert_eq!(
            g.add_edge(a, ghost, EdgeKind::Link, t(1)).unwrap_err(),
            GraphError::UnknownNode(ghost)
        );
        assert_eq!(
            g.add_edge(ghost, a, EdgeKind::Link, t(1)).unwrap_err(),
            GraphError::UnknownNode(ghost)
        );
        assert_eq!(
            g.edge(EdgeId::new(0)).unwrap_err(),
            GraphError::UnknownEdge(EdgeId::new(0))
        );
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = ProvenanceGraph::new();
        let a = visit(&mut g, "http://a/", 1);
        assert_eq!(
            g.add_edge(a, a, EdgeKind::Link, t(1)).unwrap_err(),
            GraphError::SelfLoop(a)
        );
    }

    #[test]
    fn direct_cycle_rejected() {
        let mut g = ProvenanceGraph::new();
        let a = visit(&mut g, "http://a/", 1);
        let b = visit(&mut g, "http://b/", 2);
        g.add_edge(b, a, EdgeKind::Link, t(2)).unwrap();
        assert_eq!(
            g.add_edge(a, b, EdgeKind::Link, t(3)).unwrap_err(),
            GraphError::WouldCycle { src: a, dst: b }
        );
        assert!(g.verify_acyclic());
    }

    #[test]
    fn transitive_cycle_rejected() {
        let mut g = ProvenanceGraph::new();
        let a = visit(&mut g, "http://a/", 1);
        let b = visit(&mut g, "http://b/", 2);
        let c = visit(&mut g, "http://c/", 3);
        g.add_edge(b, a, EdgeKind::Link, t(2)).unwrap();
        g.add_edge(c, b, EdgeKind::Link, t(3)).unwrap();
        assert!(g.add_edge(a, c, EdgeKind::Link, t(4)).is_err());
        assert!(g.verify_acyclic());
    }

    #[test]
    fn versioning_breaks_the_search_page_cycle() {
        // The §3.1 example: search page -> result -> back to search page.
        let mut g = ProvenanceGraph::new();
        let search_v0 = g.add_version(NodeKind::PageVisit, "http://search/?q=rosebud", t(1));
        let result = g.add_version(NodeKind::PageVisit, "http://films/kane", t(2));
        g.add_edge(result, search_v0, EdgeKind::Link, t(2)).unwrap();

        // User follows a link back to the search page: new version.
        let search_v1 = g.add_version(NodeKind::PageVisit, "http://search/?q=rosebud", t(3));
        g.add_edge(search_v1, result, EdgeKind::Link, t(3)).unwrap();

        assert_ne!(search_v0, search_v1);
        assert_eq!(g.node(search_v1).unwrap().version(), Version::new(1));
        assert!(g.verify_acyclic());
        // VersionOf edge connects the two instances.
        let kinds: Vec<EdgeKind> = g
            .parents(search_v1)
            .map(|(e, _)| g.edge(e).unwrap().kind())
            .collect();
        assert!(kinds.contains(&EdgeKind::VersionOf));
        assert_eq!(
            g.latest_version_of(NodeKind::PageVisit, "http://search/?q=rosebud"),
            Some((search_v1, Version::new(1)))
        );
    }

    #[test]
    fn reachability() {
        let mut g = ProvenanceGraph::new();
        let a = visit(&mut g, "a", 1);
        let b = visit(&mut g, "b", 2);
        let c = visit(&mut g, "c", 3);
        let d = visit(&mut g, "d", 4);
        g.add_edge(b, a, EdgeKind::Link, t(2)).unwrap();
        g.add_edge(c, b, EdgeKind::Link, t(3)).unwrap();
        assert!(g.reachable(c, a));
        assert!(g.reachable(a, a), "trivially reachable from itself");
        assert!(!g.reachable(a, c), "derivation is one-way");
        assert!(!g.reachable(c, d));
    }

    #[test]
    fn multigraph_allows_parallel_edges_of_different_kinds() {
        let mut g = ProvenanceGraph::new();
        let a = visit(&mut g, "a", 1);
        let b = visit(&mut g, "b", 2);
        g.add_edge(b, a, EdgeKind::Link, t(2)).unwrap();
        g.add_edge(b, a, EdgeKind::TemporalOverlap, t(2)).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_degree(b), 2);
    }

    #[test]
    fn neighbors_unions_both_directions() {
        let mut g = ProvenanceGraph::new();
        let a = visit(&mut g, "a", 1);
        let b = visit(&mut g, "b", 2);
        let c = visit(&mut g, "c", 3);
        g.add_edge(b, a, EdgeKind::Link, t(2)).unwrap();
        g.add_edge(c, b, EdgeKind::Link, t(3)).unwrap();
        let ns: Vec<NodeId> = g.neighbors(b).map(|(_, n)| n).collect();
        assert_eq!(ns.len(), 2);
        assert!(ns.contains(&a));
        assert!(ns.contains(&c));
    }

    #[test]
    fn nodes_of_kind_filters() {
        let mut g = ProvenanceGraph::new();
        let _v = visit(&mut g, "a", 1);
        let s = g.add_node(Node::new(NodeKind::SearchTerm, "wine", t(1)));
        let found: Vec<NodeId> = g.nodes_of_kind(NodeKind::SearchTerm).collect();
        assert_eq!(found, vec![s]);
    }

    #[test]
    fn node_mut_allows_closing() {
        let mut g = ProvenanceGraph::new();
        let a = visit(&mut g, "a", 1);
        g.node_mut(a).unwrap().close_at(t(9));
        assert_eq!(g.node(a).unwrap().interval().close(), Some(t(9)));
    }

    #[test]
    fn payload_size_sums_nodes_and_edges() {
        let mut g = ProvenanceGraph::new();
        let a = visit(&mut g, "aaaa", 1);
        let b = visit(&mut g, "bb", 2);
        g.add_edge(b, a, EdgeKind::Link, t(2)).unwrap();
        let expected = g.node(a).unwrap().size_bytes()
            + g.node(b).unwrap().size_bytes()
            + g.edge(EdgeId::new(0)).unwrap().size_bytes();
        assert_eq!(g.payload_size_bytes(), expected);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let g = ProvenanceGraph::with_capacity(100, 200);
        assert!(g.is_empty());
    }

    #[test]
    fn legal_low_to_high_edge_disables_fast_path_but_stays_correct() {
        let mut g = ProvenanceGraph::new();
        let a = visit(&mut g, "a", 1);
        let b = visit(&mut g, "b", 2);
        let c = visit(&mut g, "c", 3);
        // Legal low→high edge (a derives from c): clears monotone flag.
        g.add_edge(a, c, EdgeKind::Link, t(4)).unwrap();
        // Now a high→low edge that WOULD cycle (c derives from a) must
        // still be rejected even though src > dst.
        assert_eq!(
            g.add_edge(c, a, EdgeKind::Link, t(5)).unwrap_err(),
            GraphError::WouldCycle { src: c, dst: a }
        );
        // And unrelated edges still work.
        g.add_edge(b, a, EdgeKind::Link, t(6)).unwrap();
        assert!(g.verify_acyclic());
    }

    #[test]
    fn redact_node_hides_content_and_resets_versioning() {
        let mut g = ProvenanceGraph::new();
        let v0 = g.add_version(NodeKind::PageVisit, "http://secret/", t(1));
        let v1 = g.add_version(NodeKind::PageVisit, "http://secret/", t(2));
        g.node_mut(v1).unwrap().attrs_mut().set("title", "Secret");
        let old = g.redact_node(v1, "[redacted]").unwrap();
        assert_eq!(old, "http://secret/");
        assert_eq!(g.node(v1).unwrap().key(), "[redacted]");
        assert!(g.node(v1).unwrap().attrs().is_empty());
        // Version tracking for the old key is gone: a new visit restarts.
        assert_eq!(
            g.latest_version_of(NodeKind::PageVisit, "http://secret/"),
            None
        );
        let v2 = g.add_version(NodeKind::PageVisit, "http://secret/", t(3));
        assert_eq!(g.node(v2).unwrap().version(), Version::FIRST);
        // Structure preserved: v1 still derives from v0.
        assert!(g.parents(v1).any(|(_, p)| p == v0));
        // Unknown nodes error.
        assert!(g.redact_node(NodeId::new(99), "[x]").is_err());
    }

    #[test]
    fn epoch_bumps_on_every_mutation() {
        let mut g = ProvenanceGraph::new();
        assert_eq!(g.epoch(), 0);
        let a = visit(&mut g, "a", 1);
        let e1 = g.epoch();
        assert!(e1 > 0);
        let b = visit(&mut g, "b", 2);
        g.add_edge(b, a, EdgeKind::Link, t(2)).unwrap();
        let e2 = g.epoch();
        assert!(e2 > e1, "node and edge inserts both bump");
        g.node_mut(a).unwrap().close_at(t(9));
        assert!(g.epoch() > e2, "mutable borrows bump conservatively");
        let e3 = g.epoch();
        g.redact_node(a, "[x]").unwrap();
        assert!(g.epoch() > e3);
        // Read-only accessors leave the epoch alone.
        let e4 = g.epoch();
        let _ = g.node(a);
        let _ = g.out_degree(b);
        assert_eq!(g.epoch(), e4);
    }

    #[test]
    fn first_add_version_has_no_version_edge() {
        let mut g = ProvenanceGraph::new();
        let v0 = g.add_version(NodeKind::PageVisit, "u", t(1));
        assert_eq!(g.out_degree(v0), 0);
        assert_eq!(g.node(v0).unwrap().version(), Version::FIRST);
    }
}
