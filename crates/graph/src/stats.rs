//! Graph statistics for the experiment reports.
//!
//! §3 reports "one author's history has accumulated more than 25,000 nodes
//! over the past 79 days"; experiment E3 regenerates the corresponding
//! scale figures from a simulated history, and E1's storage accounting
//! starts from the per-kind counts computed here.

use crate::edge::EdgeKind;
use crate::graph::ProvenanceGraph;
use crate::node::NodeKind;
use std::collections::BTreeMap;

/// Aggregate statistics of a provenance graph.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GraphStats {
    /// Total node count.
    pub nodes: usize,
    /// Total edge count.
    pub edges: usize,
    /// Node count per kind.
    pub nodes_by_kind: BTreeMap<&'static str, usize>,
    /// Edge count per kind.
    pub edges_by_kind: BTreeMap<&'static str, usize>,
    /// Maximum out-degree (derivations) across nodes.
    pub max_out_degree: usize,
    /// Maximum in-degree (derived objects) across nodes.
    pub max_in_degree: usize,
    /// Mean degree (undirected).
    pub mean_degree: f64,
    /// Nodes with no edges at all ("sparsely connected metadata", §3.2).
    pub isolated_nodes: usize,
    /// Total payload bytes (nodes + edges).
    pub payload_bytes: usize,
}

/// Computes [`GraphStats`] in one pass.
pub fn stats(graph: &ProvenanceGraph) -> GraphStats {
    let mut s = GraphStats {
        nodes: graph.node_count(),
        edges: graph.edge_count(),
        payload_bytes: graph.payload_size_bytes(),
        ..GraphStats::default()
    };
    for kind in NodeKind::ALL {
        let count = graph.nodes_of_kind(kind).count();
        if count > 0 {
            s.nodes_by_kind.insert(kind.label(), count);
        }
    }
    for (_, e) in graph.edges() {
        *s.edges_by_kind.entry(e.kind().label()).or_insert(0) += 1;
    }
    let mut degree_sum = 0usize;
    for id in graph.node_ids() {
        let out = graph.out_degree(id);
        let inn = graph.in_degree(id);
        s.max_out_degree = s.max_out_degree.max(out);
        s.max_in_degree = s.max_in_degree.max(inn);
        degree_sum += out + inn;
        if out + inn == 0 {
            s.isolated_nodes += 1;
        }
    }
    s.mean_degree = if s.nodes == 0 {
        0.0
    } else {
        degree_sum as f64 / s.nodes as f64
    };
    s
}

/// Fraction of edges that are "second-class" relationships (§3.2): the
/// relationships today's browsers drop. Ablation A4 removes these and
/// measures the connectivity loss.
pub fn second_class_fraction(graph: &ProvenanceGraph) -> f64 {
    if graph.edge_count() == 0 {
        return 0.0;
    }
    let second: usize = graph
        .edges()
        .filter(|(_, e)| e.kind().is_second_class())
        .count();
    second as f64 / graph.edge_count() as f64
}

/// Counts connected components treating edges as undirected, optionally
/// filtering by edge kind. Used to quantify how dropping second-class
/// relationships fragments the history graph.
pub fn connected_components(
    graph: &ProvenanceGraph,
    mut edge_filter: impl FnMut(EdgeKind) -> bool,
) -> usize {
    let n = graph.node_count();
    let mut seen = vec![false; n];
    let mut components = 0;
    for start in 0..n {
        if seen[start] {
            continue;
        }
        components += 1;
        let mut stack = vec![crate::ids::NodeId::new(start as u32)];
        seen[start] = true;
        while let Some(node) = stack.pop() {
            for (eid, nbr) in graph.neighbors(node) {
                let Ok(edge) = graph.edge(eid) else { continue };
                let kind = edge.kind();
                if edge_filter(kind) && !seen[nbr.as_usize()] {
                    seen[nbr.as_usize()] = true;
                    stack.push(nbr);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Node;
    use crate::time::Timestamp;

    fn t(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn sample() -> ProvenanceGraph {
        let mut g = ProvenanceGraph::new();
        let term = g.add_node(Node::new(NodeKind::SearchTerm, "q", t(0)));
        let a = g.add_node(Node::new(NodeKind::PageVisit, "a", t(1)));
        let b = g.add_node(Node::new(NodeKind::PageVisit, "b", t(2)));
        let _lone = g.add_node(Node::new(NodeKind::Bookmark, "lone", t(3)));
        g.add_edge(a, term, EdgeKind::SearchResult, t(1)).unwrap();
        g.add_edge(b, a, EdgeKind::TypedLocation, t(2)).unwrap();
        g
    }

    #[test]
    fn counts_by_kind() {
        let s = stats(&sample());
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 2);
        assert_eq!(s.nodes_by_kind["visit"], 2);
        assert_eq!(s.nodes_by_kind["search_term"], 1);
        assert_eq!(s.nodes_by_kind["bookmark"], 1);
        assert_eq!(s.edges_by_kind["typed"], 1);
        assert_eq!(s.isolated_nodes, 1);
    }

    #[test]
    fn degrees() {
        let s = stats(&sample());
        assert_eq!(s.max_out_degree, 1);
        assert_eq!(s.max_in_degree, 1);
        assert!((s.mean_degree - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_stats() {
        let s = stats(&ProvenanceGraph::new());
        assert_eq!(s.nodes, 0);
        assert_eq!(s.mean_degree, 0.0);
    }

    #[test]
    fn second_class_fraction_counts_typed_and_search() {
        let g = sample();
        // Both edges (search_result, typed) are second-class.
        assert!((second_class_fraction(&g) - 1.0).abs() < 1e-12);
        assert_eq!(second_class_fraction(&ProvenanceGraph::new()), 0.0);
    }

    #[test]
    fn components_with_and_without_second_class() {
        let g = sample();
        // All edges: {term,a,b} + {lone} = 2 components.
        assert_eq!(connected_components(&g, |_| true), 2);
        // Dropping second-class edges isolates everything: 4 components.
        assert_eq!(connected_components(&g, |k| !k.is_second_class()), 4);
    }
}
