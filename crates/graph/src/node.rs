//! Node kinds and node payloads.
//!
//! Section 3.3 of the paper: "If clicking a bookmark generates a provenance
//! relationship, then bookmarks must exist as nodes in the provenance store.
//! Similarly, downloads and search terms can be represented as history
//! nodes." This module defines the homogeneous node model that realizes the
//! §3.4 vision: every kind of history object is a first-class graph node.

use crate::attr::AttrMap;
use crate::ids::Version;
use crate::time::{TimeInterval, Timestamp};
use core::fmt;

/// The kind of history object a node represents.
///
/// # Examples
///
/// ```
/// use bp_graph::NodeKind;
/// assert!(NodeKind::Download.is_artifact());
/// assert!(NodeKind::PageVisit.is_versioned());
/// assert_eq!(NodeKind::SearchTerm.label(), "search_term");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeKind {
    /// A logical web page, identified by URL. Pages aggregate across visits;
    /// they are the "general page queries" object Firefox optimizes for.
    Page,
    /// One versioned visit *instance* of a page (§3.1's cycle-breaking
    /// device). Edges between visits record how the user moved.
    PageVisit,
    /// A bookmark object; clicking it generates provenance (§3.3).
    Bookmark,
    /// A user-entered web search term — "concise, conceptual, user-generated
    /// descriptors that are in the lineage of the page they generate" (§3.3).
    SearchTerm,
    /// A downloaded file.
    Download,
    /// A form-fill entry ("deep web" content, §3.3).
    FormEntry,
    /// A browser tab session; groups visits open in one tab.
    Tab,
}

impl NodeKind {
    /// All node kinds, in stable encoding order.
    pub const ALL: [NodeKind; 7] = [
        NodeKind::Page,
        NodeKind::PageVisit,
        NodeKind::Bookmark,
        NodeKind::SearchTerm,
        NodeKind::Download,
        NodeKind::FormEntry,
        NodeKind::Tab,
    ];

    /// Stable small-integer code used by the storage layer.
    pub const fn code(self) -> u8 {
        match self {
            NodeKind::Page => 0,
            NodeKind::PageVisit => 1,
            NodeKind::Bookmark => 2,
            NodeKind::SearchTerm => 3,
            NodeKind::Download => 4,
            NodeKind::FormEntry => 5,
            NodeKind::Tab => 6,
        }
    }

    /// Decodes a storage code back into a kind.
    pub const fn from_code(code: u8) -> Option<NodeKind> {
        match code {
            0 => Some(NodeKind::Page),
            1 => Some(NodeKind::PageVisit),
            2 => Some(NodeKind::Bookmark),
            3 => Some(NodeKind::SearchTerm),
            4 => Some(NodeKind::Download),
            5 => Some(NodeKind::FormEntry),
            6 => Some(NodeKind::Tab),
            _ => None,
        }
    }

    /// Snake-case label, used by the query language and DOT export.
    pub const fn label(self) -> &'static str {
        match self {
            NodeKind::Page => "page",
            NodeKind::PageVisit => "visit",
            NodeKind::Bookmark => "bookmark",
            NodeKind::SearchTerm => "search_term",
            NodeKind::Download => "download",
            NodeKind::FormEntry => "form_entry",
            NodeKind::Tab => "tab",
        }
    }

    /// Parses a label produced by [`NodeKind::label`].
    pub fn from_label(label: &str) -> Option<NodeKind> {
        NodeKind::ALL.into_iter().find(|k| k.label() == label)
    }

    /// Returns `true` for kinds that represent concrete user artifacts
    /// (things that end up on disk or in the bookmark bar) rather than
    /// browsing activity.
    pub const fn is_artifact(self) -> bool {
        matches!(self, NodeKind::Bookmark | NodeKind::Download)
    }

    /// Returns `true` for kinds that are versioned per §3.1 — a re-occurrence
    /// creates a new instance rather than mutating the old one.
    pub const fn is_versioned(self) -> bool {
        matches!(self, NodeKind::PageVisit)
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The payload of one graph node.
///
/// A node carries its kind, a primary `key` (URL for pages and visits, the
/// query string for search terms, the file path for downloads, …), a
/// version (§3.1), its open/close interval (§3.2), and free-form attributes.
///
/// # Examples
///
/// ```
/// use bp_graph::{Node, NodeKind, Timestamp};
/// let n = Node::new(NodeKind::Page, "http://example.com/", Timestamp::from_secs(1));
/// assert_eq!(n.key(), "http://example.com/");
/// assert!(n.interval().is_open());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    kind: NodeKind,
    key: String,
    version: Version,
    interval: TimeInterval,
    attrs: AttrMap,
}

impl Node {
    /// Creates a first-version node opened at `at`.
    pub fn new(kind: NodeKind, key: impl Into<String>, at: Timestamp) -> Self {
        Node {
            kind,
            key: key.into(),
            version: Version::FIRST,
            interval: TimeInterval::open_at(at),
            attrs: AttrMap::new(),
        }
    }

    /// Creates a specific version of a node (used when versioning breaks a
    /// would-be cycle).
    pub fn with_version(
        kind: NodeKind,
        key: impl Into<String>,
        version: Version,
        at: Timestamp,
    ) -> Self {
        Node {
            kind,
            key: key.into(),
            version,
            interval: TimeInterval::open_at(at),
            attrs: AttrMap::new(),
        }
    }

    /// Builder-style attribute attachment.
    #[must_use]
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<crate::AttrValue>) -> Self {
        self.attrs.set(key, value);
        self
    }

    /// The node kind.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// The primary key (URL, query string, file path, …).
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The version of this instance.
    pub fn version(&self) -> Version {
        self.version
    }

    /// The open/close interval.
    pub fn interval(&self) -> &TimeInterval {
        &self.interval
    }

    /// Timestamp at which this node was created/opened.
    pub fn opened_at(&self) -> Timestamp {
        self.interval.open()
    }

    /// Closes the node's interval (page close, tab close, download complete).
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the opening timestamp.
    pub fn close_at(&mut self, at: Timestamp) {
        self.interval.close_at(at);
    }

    /// Redacts the node's content: the key is replaced by `replacement`
    /// and all attributes are dropped. Structure (kind, version, interval,
    /// edges) is preserved — the §4 privacy goal is hiding *what* was
    /// browsed, while lineage shape may legitimately remain for forensics.
    pub fn redact(&mut self, replacement: impl Into<String>) {
        self.key = replacement.into();
        self.attrs = AttrMap::new();
    }

    /// Immutable view of the attributes.
    pub fn attrs(&self) -> &AttrMap {
        &self.attrs
    }

    /// Mutable view of the attributes.
    pub fn attrs_mut(&mut self) -> &mut AttrMap {
        &mut self.attrs
    }

    /// Approximate encoded size in bytes, for experiment E1.
    pub fn size_bytes(&self) -> usize {
        // kind code + version + open/close timestamps + key + attrs
        1 + 4 + 16 + self.key.len() + self.attrs.size_bytes()
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}@{}", self.kind, self.key, self.version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_roundtrip() {
        for kind in NodeKind::ALL {
            assert_eq!(NodeKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(NodeKind::from_code(200), None);
    }

    #[test]
    fn kind_labels_roundtrip() {
        for kind in NodeKind::ALL {
            assert_eq!(NodeKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(NodeKind::from_label("nonsense"), None);
    }

    #[test]
    fn kind_codes_are_distinct() {
        let mut codes: Vec<u8> = NodeKind::ALL.iter().map(|k| k.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), NodeKind::ALL.len());
    }

    #[test]
    fn artifact_and_versioned_classification() {
        assert!(NodeKind::Download.is_artifact());
        assert!(NodeKind::Bookmark.is_artifact());
        assert!(!NodeKind::Page.is_artifact());
        assert!(NodeKind::PageVisit.is_versioned());
        assert!(!NodeKind::Page.is_versioned());
    }

    #[test]
    fn node_construction_and_close() {
        let t0 = Timestamp::from_secs(10);
        let mut n = Node::new(NodeKind::PageVisit, "http://example.com/a", t0);
        assert_eq!(n.kind(), NodeKind::PageVisit);
        assert_eq!(n.version(), Version::FIRST);
        assert!(n.interval().is_open());
        n.close_at(Timestamp::from_secs(20));
        assert_eq!(n.interval().close(), Some(Timestamp::from_secs(20)));
    }

    #[test]
    fn node_with_version_and_attrs() {
        let n = Node::with_version(
            NodeKind::PageVisit,
            "http://example.com/",
            Version::new(3),
            Timestamp::EPOCH,
        )
        .with_attr("title", "Example")
        .with_attr("visit_count", 9i64);
        assert_eq!(n.version().number(), 3);
        assert_eq!(n.attrs().get_str("title"), Some("Example"));
        assert_eq!(n.attrs().get_int("visit_count"), Some(9));
    }

    #[test]
    fn node_size_accounts_for_key_and_attrs() {
        let bare = Node::new(NodeKind::Page, "abcd", Timestamp::EPOCH);
        assert_eq!(bare.size_bytes(), 1 + 4 + 16 + 4);
        let with_attr = bare.clone().with_attr("t", "xy");
        assert_eq!(with_attr.size_bytes(), bare.size_bytes() + 1 + 2);
    }

    #[test]
    fn display_shows_kind_key_version() {
        let n = Node::new(NodeKind::SearchTerm, "rosebud", Timestamp::EPOCH);
        assert_eq!(n.to_string(), "search_term:rosebud@v0");
    }
}
