//! Attribute values attached to nodes and edges.
//!
//! The paper's §3.4 vision is "a single, homogeneous provenance graph store"
//! in which "both nodes and edges can have attributes" (§3). Attributes are
//! small typed values keyed by interned-able string names; the storage layer
//! (`bp-storage`) interns the keys, the graph layer keeps them readable.

use core::fmt;
use std::collections::BTreeMap;

/// A single typed attribute value.
///
/// # Examples
///
/// ```
/// use bp_graph::AttrValue;
/// let v = AttrValue::from("hello");
/// assert_eq!(v.as_str(), Some("hello"));
/// assert_eq!(AttrValue::from(3i64).as_int(), Some(3));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// UTF-8 text.
    Str(String),
    /// Signed integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// Boolean flag.
    Bool(bool),
    /// Raw bytes (e.g. a content hash).
    Bytes(Vec<u8>),
}

impl AttrValue {
    /// Returns the string payload, if this is a [`AttrValue::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer payload, if this is an [`AttrValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float payload, if this is an [`AttrValue::Float`].
    pub fn as_float(&self) -> Option<f64> {
        match self {
            AttrValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is an [`AttrValue::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the byte payload, if this is an [`AttrValue::Bytes`].
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            AttrValue::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Approximate in-memory/encoded size in bytes, used by storage-overhead
    /// accounting (experiment E1).
    pub fn size_bytes(&self) -> usize {
        match self {
            AttrValue::Str(s) => s.len(),
            AttrValue::Int(_) => 8,
            AttrValue::Float(_) => 8,
            AttrValue::Bool(_) => 1,
            AttrValue::Bytes(b) => b.len(),
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Str(s) => write!(f, "{s:?}"),
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Float(x) => write!(f, "{x}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
            AttrValue::Bytes(b) => write!(f, "0x{}", hex(b)),
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        use fmt::Write;
        let _ = write!(s, "{b:02x}");
    }
    s
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Str(s.to_owned())
    }
}
impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Str(s)
    }
}
impl From<i64> for AttrValue {
    fn from(i: i64) -> Self {
        AttrValue::Int(i)
    }
}
impl From<u32> for AttrValue {
    fn from(i: u32) -> Self {
        AttrValue::Int(i as i64)
    }
}
impl From<f64> for AttrValue {
    fn from(f: f64) -> Self {
        AttrValue::Float(f)
    }
}
impl From<bool> for AttrValue {
    fn from(b: bool) -> Self {
        AttrValue::Bool(b)
    }
}
impl From<Vec<u8>> for AttrValue {
    fn from(b: Vec<u8>) -> Self {
        AttrValue::Bytes(b)
    }
}

/// An ordered map of attribute name → value.
///
/// Backed by a `BTreeMap` so iteration (and therefore on-disk encoding and
/// `Debug` output) is deterministic — determinism matters both for the
/// byte-for-byte WAL recovery property tests and for reproducible experiment
/// output.
///
/// # Examples
///
/// ```
/// use bp_graph::{AttrMap, AttrValue};
/// let mut attrs = AttrMap::new();
/// attrs.set("title", "Citizen Kane");
/// attrs.set("visit_count", 3i64);
/// assert_eq!(attrs.get("title").and_then(AttrValue::as_str), Some("Citizen Kane"));
/// assert_eq!(attrs.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttrMap {
    entries: BTreeMap<String, AttrValue>,
}

impl AttrMap {
    /// Creates an empty attribute map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `key` to `value`, returning the previous value if any.
    pub fn set(
        &mut self,
        key: impl Into<String>,
        value: impl Into<AttrValue>,
    ) -> Option<AttrValue> {
        self.entries.insert(key.into(), value.into())
    }

    /// Looks up an attribute by name.
    pub fn get(&self, key: &str) -> Option<&AttrValue> {
        self.entries.get(key)
    }

    /// Convenience accessor for string attributes.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(AttrValue::as_str)
    }

    /// Convenience accessor for integer attributes.
    pub fn get_int(&self, key: &str) -> Option<i64> {
        self.get(key).and_then(AttrValue::as_int)
    }

    /// Removes an attribute, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<AttrValue> {
        self.entries.remove(key)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no attributes are set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates attributes in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &AttrValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Approximate encoded size in bytes (keys + values), for experiment E1.
    pub fn size_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|(k, v)| k.len() + v.size_bytes())
            .sum()
    }
}

impl FromIterator<(String, AttrValue)> for AttrMap {
    fn from_iter<I: IntoIterator<Item = (String, AttrValue)>>(iter: I) -> Self {
        AttrMap {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, AttrValue)> for AttrMap {
    fn extend<I: IntoIterator<Item = (String, AttrValue)>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors_match_variants() {
        assert_eq!(AttrValue::from("x").as_str(), Some("x"));
        assert_eq!(AttrValue::from("x").as_int(), None);
        assert_eq!(AttrValue::from(7i64).as_int(), Some(7));
        assert_eq!(AttrValue::from(1.5).as_float(), Some(1.5));
        assert_eq!(AttrValue::from(true).as_bool(), Some(true));
        assert_eq!(
            AttrValue::from(vec![1u8, 2]).as_bytes(),
            Some(&[1u8, 2][..])
        );
    }

    #[test]
    fn value_sizes() {
        assert_eq!(AttrValue::from("abcd").size_bytes(), 4);
        assert_eq!(AttrValue::from(0i64).size_bytes(), 8);
        assert_eq!(AttrValue::from(false).size_bytes(), 1);
        assert_eq!(AttrValue::from(vec![0u8; 16]).size_bytes(), 16);
    }

    #[test]
    fn map_set_get_remove() {
        let mut m = AttrMap::new();
        assert!(m.is_empty());
        assert_eq!(m.set("a", 1i64), None);
        assert_eq!(m.set("a", 2i64), Some(AttrValue::Int(1)));
        assert_eq!(m.get_int("a"), Some(2));
        assert_eq!(m.remove("a"), Some(AttrValue::Int(2)));
        assert!(m.get("a").is_none());
    }

    #[test]
    fn map_iterates_in_key_order() {
        let mut m = AttrMap::new();
        m.set("zeta", 1i64);
        m.set("alpha", 2i64);
        m.set("mid", 3i64);
        let keys: Vec<&str> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn map_size_accounting() {
        let mut m = AttrMap::new();
        m.set("url", "http://a.example/"); // 3 + 17
        m.set("n", 1i64); // 1 + 8
        assert_eq!(m.size_bytes(), 3 + 17 + 1 + 8);
    }

    #[test]
    fn map_from_iterator() {
        let m: AttrMap = vec![("k".to_owned(), AttrValue::from(1i64))]
            .into_iter()
            .collect();
        assert_eq!(m.get_int("k"), Some(1));
    }

    #[test]
    fn display_is_nonempty_for_all_variants() {
        for v in [
            AttrValue::from(""),
            AttrValue::from(0i64),
            AttrValue::from(0.0),
            AttrValue::from(false),
            AttrValue::from(Vec::new()),
        ] {
            assert!(!v.to_string().is_empty());
        }
        assert_eq!(AttrValue::from(vec![0xabu8]).to_string(), "0xab");
    }
}
