//! Graph traversals: ancestors, descendants, paths, bounded execution.
//!
//! Download lineage (§2.4) "is a breadth-first search over a node's
//! ancestors"; finding everything that came *from* an untrusted page is the
//! mirror-image descendant query. The paper also reports that its queries
//! "complete in less than 200 ms in the majority of cases and **can be bound
//! to that time** in the remaining cases" — [`Budget`] implements that
//! bounding (node-count and wall-clock deadlines) for every traversal here.

use crate::edge::EdgeKind;
use crate::graph::ProvenanceGraph;
use crate::ids::{EdgeId, NodeId};
use bp_obs::clock::ClockHandle;
use std::collections::VecDeque;
use std::time::Duration;

/// Which direction a traversal walks the derives-from edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Follow `src → dst`: toward the origins of an object (its lineage).
    Ancestors,
    /// Follow `dst → src`: toward everything derived from an object.
    Descendants,
}

impl Direction {
    /// The opposite direction.
    #[must_use]
    pub const fn reverse(self) -> Direction {
        match self {
            Direction::Ancestors => Direction::Descendants,
            Direction::Descendants => Direction::Ancestors,
        }
    }
}

/// Resource limits for a traversal.
///
/// A default budget is unlimited. Queries that must be interactive attach a
/// deadline and/or node cap; when the budget trips, the traversal stops and
/// reports itself truncated rather than running long.
///
/// # Examples
///
/// ```
/// use bp_graph::traverse::Budget;
/// use std::time::Duration;
/// let b = Budget::new().with_max_nodes(1000).with_deadline(Duration::from_millis(200));
/// assert_eq!(b.max_nodes(), Some(1000));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Budget {
    max_nodes: Option<usize>,
    max_depth: Option<usize>,
    deadline: Option<Duration>,
    clock: Option<ClockHandle>,
    jobs: Option<usize>,
}

impl Budget {
    /// An unlimited budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the number of nodes the traversal may visit.
    #[must_use]
    pub fn with_max_nodes(mut self, n: usize) -> Self {
        self.max_nodes = Some(n);
        self
    }

    /// Caps the hop depth from the start node.
    #[must_use]
    pub fn with_max_depth(mut self, d: usize) -> Self {
        self.max_depth = Some(d);
        self
    }

    /// Caps wall-clock time; the traversal checks the clock periodically.
    #[must_use]
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Measures the deadline against `clock` instead of the process
    /// monotonic clock, so tests can expire traversals deterministically
    /// with a mock clock.
    #[must_use]
    pub fn with_clock(mut self, clock: ClockHandle) -> Self {
        self.clock = Some(clock);
        self
    }

    /// The node cap, if any.
    pub fn max_nodes(&self) -> Option<usize> {
        self.max_nodes
    }

    /// The depth cap, if any.
    pub fn max_depth(&self) -> Option<usize> {
        self.max_depth
    }

    /// The wall-clock cap, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The clock the deadline is measured against, when overridden.
    pub fn clock(&self) -> Option<&ClockHandle> {
        self.clock.as_ref()
    }

    /// Requests `n` worker threads for algorithms with a parallel
    /// implementation (currently [`crate::frozen`]'s PageRank kernel).
    /// Results are bit-identical regardless of the value; this is purely
    /// a wall-clock lever. `0` and `1` both mean serial.
    #[must_use]
    pub fn with_jobs(mut self, n: usize) -> Self {
        self.jobs = Some(n);
        self
    }

    /// The requested worker-thread count (1 when unset: budgets bound
    /// resource use, so parallelism is opt-in).
    pub fn jobs(&self) -> usize {
        self.jobs.unwrap_or(1).max(1)
    }
}

/// One node reached by a traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reached {
    /// The node reached.
    pub node: NodeId,
    /// Hop distance from the start node (start = 0).
    pub depth: usize,
    /// The edge by which it was first reached (`None` for the start node).
    pub via: Option<EdgeId>,
}

/// The outcome of a bounded traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Traversal {
    /// Nodes in the order they were reached (BFS order). Includes the start.
    pub reached: Vec<Reached>,
    /// `true` if a budget limit stopped the traversal before exhaustion.
    pub truncated: bool,
}

impl Traversal {
    /// Node ids in reach order, without depths.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.reached.iter().map(|r| r.node)
    }

    /// Number of nodes reached (including the start).
    pub fn len(&self) -> usize {
        self.reached.len()
    }

    /// `true` when only the start node was reached.
    pub fn is_empty(&self) -> bool {
        self.reached.len() <= 1
    }
}

/// Breadth-first traversal from `start` in `direction`, following only
/// edges for which `edge_filter` returns `true`, within `budget`.
///
/// The start node is always the first element of the result. Lineage
/// queries pass `|k| k.is_causal()` to exclude temporal-overlap context
/// edges; personalization passes `|k| !k.is_automatic()` to unify away
/// redirect/embed hops (§3.2).
pub fn bfs(
    graph: &ProvenanceGraph,
    start: NodeId,
    direction: Direction,
    mut edge_filter: impl FnMut(EdgeKind) -> bool,
    budget: &Budget,
) -> Traversal {
    let clock = budget.deadline.map(|d| {
        let handle = budget.clock.clone().unwrap_or_else(ClockHandle::real);
        (handle.start(), d)
    });
    let mut reached = Vec::new();
    let mut truncated = false;
    if start.as_usize() >= graph.node_count() {
        return Traversal { reached, truncated };
    }
    let mut seen = vec![false; graph.node_count()];
    let mut queue = VecDeque::new();
    seen[start.as_usize()] = true;
    queue.push_back(Reached {
        node: start,
        depth: 0,
        via: None,
    });

    while let Some(r) = queue.pop_front() {
        if let Some(max) = budget.max_nodes {
            if reached.len() >= max {
                truncated = true;
                break;
            }
        }
        if let Some((ref t0, limit)) = clock {
            // Check the clock every node; traversal steps are cheap enough
            // that a stopwatch read per node keeps us well within the
            // 200 ms bound with negligible overhead. `>=` so a zero
            // deadline is expired from the first check — the stopwatch's
            // whole-microsecond resolution would otherwise let a small
            // walk finish inside the first tick without truncating.
            if t0.elapsed() >= limit {
                truncated = true;
                break;
            }
        }
        reached.push(r);
        if let Some(max_depth) = budget.max_depth {
            if r.depth >= max_depth {
                continue;
            }
        }
        let hops: Vec<(EdgeId, NodeId)> = match direction {
            Direction::Ancestors => graph.parents(r.node).collect(),
            Direction::Descendants => graph.children(r.node).collect(),
        };
        for (eid, next) in hops {
            // Adjacency lists only hold live edges; skipping a (supposedly
            // impossible) dead one degrades better than aborting (L002).
            let Ok(edge) = graph.edge(eid) else { continue };
            let kind = edge.kind();
            if !edge_filter(kind) {
                continue;
            }
            if !seen[next.as_usize()] {
                seen[next.as_usize()] = true;
                queue.push_back(Reached {
                    node: next,
                    depth: r.depth + 1,
                    via: Some(eid),
                });
            }
        }
    }
    Traversal { reached, truncated }
}

/// All causal ancestors of `start` (unbounded). Equivalent to the §2.4
/// lineage set.
pub fn ancestors(graph: &ProvenanceGraph, start: NodeId) -> Traversal {
    bfs(
        graph,
        start,
        Direction::Ancestors,
        EdgeKind::is_causal,
        &Budget::new(),
    )
}

/// All causal descendants of `start` (unbounded). Answers "find all
/// descendants of this page that are downloads" when the caller filters the
/// result by node kind.
pub fn descendants(graph: &ProvenanceGraph, start: NodeId) -> Traversal {
    bfs(
        graph,
        start,
        Direction::Descendants,
        EdgeKind::is_causal,
        &Budget::new(),
    )
}

/// Finds the nearest ancestor (BFS order, so minimal hop count) for which
/// `pred` holds, and returns the full path from `start` to it.
///
/// This is §2.4's path query — "find the first ancestor of this file that
/// the user is likely to recognize" — with the "likely to recognize"
/// predicate supplied by the caller (e.g. visit count above a threshold).
///
/// Returns `None` if no ancestor satisfies the predicate within the budget.
pub fn first_ancestor_where(
    graph: &ProvenanceGraph,
    start: NodeId,
    pred: impl FnMut(NodeId) -> bool,
    budget: &Budget,
) -> Option<Path> {
    first_ancestor_where_observed(graph, start, pred, budget).path
}

/// The observed outcome of a [`first_ancestor_where_observed`] search: the
/// path (when an ancestor matched) plus the work accounting that EXPLAIN
/// profiles report — how many nodes the BFS visited and whether the budget
/// cut it short (in which case a matching ancestor may exist beyond the
/// truncation point).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AncestorSearch {
    /// Path from the start to the nearest matching proper ancestor, if any
    /// was reached within the budget.
    pub path: Option<Path>,
    /// Nodes the BFS visited (including the start node).
    pub nodes_touched: usize,
    /// Tree edges the BFS followed while visiting those nodes.
    pub edges_touched: usize,
    /// `true` if a budget limit stopped the search before exhaustion.
    pub truncated: bool,
}

/// [`first_ancestor_where`] with work accounting: same search, but the
/// caller also learns how many nodes were visited and whether the budget
/// truncated the traversal — the inputs an EXPLAIN profile needs.
pub fn first_ancestor_where_observed(
    graph: &ProvenanceGraph,
    start: NodeId,
    mut pred: impl FnMut(NodeId) -> bool,
    budget: &Budget,
) -> AncestorSearch {
    let traversal = bfs(
        graph,
        start,
        Direction::Ancestors,
        EdgeKind::is_causal,
        budget,
    );
    // Skip the start node itself: "first ancestor" is a proper ancestor.
    let hit = traversal.reached.iter().skip(1).find(|r| pred(r.node));
    let path = hit.map(|h| reconstruct_path(graph, &traversal, h.node));
    AncestorSearch {
        path,
        nodes_touched: traversal.len(),
        edges_touched: traversal.reached.iter().filter(|r| r.via.is_some()).count(),
        truncated: traversal.truncated,
    }
}

/// A concrete path through the graph: alternating nodes and the edges that
/// join them. `edges.len() == nodes.len() - 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// Nodes from the query start to the found node, inclusive.
    pub nodes: Vec<NodeId>,
    /// Edges traversed, in step order.
    pub edges: Vec<EdgeId>,
}

impl Path {
    /// Number of hops (edges) in the path.
    pub fn hops(&self) -> usize {
        self.edges.len()
    }

    /// The terminal node of the path.
    ///
    /// # Panics
    ///
    /// Panics if the path is empty; paths produced by this module always
    /// contain at least the start node.
    pub fn target(&self) -> NodeId {
        // bp-lint: allow(L002): documented # Panics contract — every constructor seeds nodes with the start node, so emptiness is a caller-visible API misuse
        *self.nodes.last().expect("paths are non-empty")
    }
}

/// Rebuilds the BFS tree path from the traversal start to `target`.
fn reconstruct_path(graph: &ProvenanceGraph, traversal: &Traversal, target: NodeId) -> Path {
    use std::collections::HashMap;
    let by_node: HashMap<NodeId, &Reached> =
        traversal.reached.iter().map(|r| (r.node, r)).collect();
    let mut nodes = vec![target];
    let mut edges = Vec::new();
    let mut cur = target;
    while let Some(r) = by_node.get(&cur) {
        match r.via {
            Some(eid) => {
                // bp-lint: allow(L009): path length is capped by the producing BFS's Budget (max_depth hops), so reconstruction is bounded without re-checking the deadline
                let Ok(e) = graph.edge(eid) else {
                    // Path edges come from the traversal and are live by
                    // construction; stop rebuilding rather than abort.
                    break;
                };
                // The BFS stepped from one endpoint to the other; recover
                // the predecessor endpoint regardless of direction.
                let prev = if e.src() == cur { e.dst() } else { e.src() };
                edges.push(eid);
                nodes.push(prev);
                cur = prev;
            }
            None => break,
        }
    }
    nodes.reverse();
    edges.reverse();
    Path { nodes, edges }
}

/// Shortest path (fewest hops) between two nodes following causal edges in
/// the given direction; `None` if unreachable.
pub fn shortest_path(
    graph: &ProvenanceGraph,
    from: NodeId,
    to: NodeId,
    direction: Direction,
) -> Option<Path> {
    let traversal = bfs(graph, from, direction, EdgeKind::is_causal, &Budget::new());
    traversal
        .reached
        .iter()
        .any(|r| r.node == to)
        .then(|| reconstruct_path(graph, &traversal, to))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Node, NodeKind};
    use crate::time::Timestamp;

    fn t(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    /// Builds the download-lineage scenario:
    ///   search_term <- search_page <- blog <- filehost <- download
    /// plus an overlap edge and an embedded ad.
    fn lineage_fixture() -> (ProvenanceGraph, Vec<NodeId>) {
        let mut g = ProvenanceGraph::new();
        let term = g.add_node(Node::new(NodeKind::SearchTerm, "codec", t(1)));
        let search = g.add_node(Node::new(NodeKind::PageVisit, "http://se/?q=codec", t(2)));
        let blog = g.add_node(Node::new(NodeKind::PageVisit, "http://blog/post", t(3)));
        let host = g.add_node(Node::new(NodeKind::PageVisit, "http://host/file", t(4)));
        let dl = g.add_node(Node::new(NodeKind::Download, "/home/u/codec.exe", t(5)));
        let ad = g.add_node(Node::new(NodeKind::PageVisit, "http://ads/banner", t(3)));
        g.add_edge(search, term, EdgeKind::SearchResult, t(2))
            .unwrap();
        g.add_edge(blog, search, EdgeKind::Link, t(3)).unwrap();
        g.add_edge(host, blog, EdgeKind::Link, t(4)).unwrap();
        g.add_edge(dl, host, EdgeKind::DownloadFrom, t(5)).unwrap();
        g.add_edge(ad, blog, EdgeKind::Embed, t(3)).unwrap();
        // Context edge that must not leak into lineage:
        g.add_edge(host, ad, EdgeKind::TemporalOverlap, t(4))
            .unwrap();
        (g, vec![term, search, blog, host, dl, ad])
    }

    #[test]
    fn ancestors_of_download_is_full_lineage() {
        let (g, ids) = lineage_fixture();
        let dl = ids[4];
        let anc = ancestors(&g, dl);
        let reached: Vec<NodeId> = anc.node_ids().collect();
        assert_eq!(reached[0], dl, "start comes first");
        assert!(reached.contains(&ids[0]), "search term is in the lineage");
        assert!(reached.contains(&ids[1]));
        assert!(reached.contains(&ids[2]));
        assert!(reached.contains(&ids[3]));
        assert!(!anc.truncated);
    }

    #[test]
    fn temporal_overlap_excluded_from_lineage() {
        let (g, ids) = lineage_fixture();
        // Lineage of the filehost page must not include the ad (only linked
        // by TemporalOverlap) but does include blog -> search -> term.
        let anc = ancestors(&g, ids[3]);
        let reached: Vec<NodeId> = anc.node_ids().collect();
        assert!(!reached.contains(&ids[5]), "overlap edge must not leak");
        assert!(reached.contains(&ids[2]));
    }

    #[test]
    fn descendants_of_blog_include_download() {
        let (g, ids) = lineage_fixture();
        let desc = descendants(&g, ids[2]);
        let reached: Vec<NodeId> = desc.node_ids().collect();
        assert!(reached.contains(&ids[4]), "download descends from blog");
        assert!(reached.contains(&ids[3]));
        assert!(reached.contains(&ids[5]), "embedded ad descends from blog");
    }

    #[test]
    fn bfs_depth_limit() {
        let (g, ids) = lineage_fixture();
        let shallow = bfs(
            &g,
            ids[4],
            Direction::Ancestors,
            EdgeKind::is_causal,
            &Budget::new().with_max_depth(1),
        );
        let reached: Vec<NodeId> = shallow.node_ids().collect();
        assert_eq!(reached, vec![ids[4], ids[3]]);
    }

    #[test]
    fn bfs_node_budget_truncates() {
        let (g, ids) = lineage_fixture();
        let cut = bfs(
            &g,
            ids[4],
            Direction::Ancestors,
            EdgeKind::is_causal,
            &Budget::new().with_max_nodes(2),
        );
        assert_eq!(cut.len(), 2);
        assert!(cut.truncated);
    }

    #[test]
    fn bfs_deadline_zero_truncates_immediately() {
        let (g, ids) = lineage_fixture();
        let cut = bfs(
            &g,
            ids[4],
            Direction::Ancestors,
            EdgeKind::is_causal,
            &Budget::new().with_deadline(Duration::ZERO),
        );
        assert!(cut.truncated);
        assert!(cut.len() <= 1);
    }

    #[test]
    fn bfs_on_unknown_start_is_empty() {
        let g = ProvenanceGraph::new();
        let tr = bfs(
            &g,
            NodeId::new(5),
            Direction::Ancestors,
            EdgeKind::is_causal,
            &Budget::new(),
        );
        assert_eq!(tr.len(), 0);
        assert!(!tr.truncated);
    }

    #[test]
    fn first_recognizable_ancestor() {
        let (mut g, ids) = lineage_fixture();
        // Mark the search page as heavily visited ("likely to recognize").
        g.node_mut(ids[1])
            .unwrap()
            .attrs_mut()
            .set("visit_count", 50i64);
        let path = first_ancestor_where(
            &g,
            ids[4],
            |n| {
                g.node(n)
                    .unwrap()
                    .attrs()
                    .get_int("visit_count")
                    .unwrap_or(0)
                    >= 10
            },
            &Budget::new(),
        )
        .expect("search page is recognizable");
        assert_eq!(path.target(), ids[1]);
        // Path is download -> host -> blog -> search.
        assert_eq!(path.nodes, vec![ids[4], ids[3], ids[2], ids[1]]);
        assert_eq!(path.hops(), 3);
    }

    #[test]
    fn first_ancestor_where_skips_start_node() {
        let (g, ids) = lineage_fixture();
        // Predicate true everywhere: must still return a *proper* ancestor.
        let path = first_ancestor_where(&g, ids[4], |_| true, &Budget::new()).unwrap();
        assert_ne!(path.target(), ids[4]);
        assert_eq!(path.target(), ids[3], "BFS order: nearest ancestor first");
    }

    #[test]
    fn first_ancestor_where_none_when_no_match() {
        let (g, ids) = lineage_fixture();
        assert!(first_ancestor_where(&g, ids[4], |_| false, &Budget::new()).is_none());
    }

    #[test]
    fn observed_ancestor_search_reports_work() {
        let (g, ids) = lineage_fixture();
        let found = first_ancestor_where_observed(&g, ids[4], |_| true, &Budget::new());
        assert_eq!(found.path.as_ref().map(Path::target), Some(ids[3]));
        // Lineage of the download: dl, host, blog, search, term = 5 nodes.
        assert_eq!(found.nodes_touched, 5);
        assert_eq!(found.edges_touched, 4);
        assert!(!found.truncated);

        let missed = first_ancestor_where_observed(&g, ids[4], |_| false, &Budget::new());
        assert!(missed.path.is_none());
        assert_eq!(missed.nodes_touched, 5);
    }

    #[test]
    fn budget_clock_drives_deadline_with_mock_time() {
        let (g, ids) = lineage_fixture();
        let (clock, mock) = ClockHandle::mock();
        // 100 µs budget; each clock reading auto-ticks 60 µs, so the
        // deadline expires after a couple of visited nodes.
        mock.set_auto_tick_micros(60);
        let cut = first_ancestor_where_observed(
            &g,
            ids[4],
            |_| false,
            &Budget::new()
                .with_deadline(Duration::from_micros(100))
                .with_clock(clock),
        );
        assert!(cut.truncated, "mock deadline must truncate the search");
        assert!(cut.nodes_touched < 5);
    }

    #[test]
    fn shortest_path_both_directions() {
        let (g, ids) = lineage_fixture();
        let up = shortest_path(&g, ids[4], ids[0], Direction::Ancestors).unwrap();
        assert_eq!(up.nodes.first(), Some(&ids[4]));
        assert_eq!(up.target(), ids[0]);
        assert_eq!(up.hops(), 4);
        let down = shortest_path(&g, ids[1], ids[4], Direction::Descendants).unwrap();
        assert_eq!(down.target(), ids[4]);
        assert!(shortest_path(&g, ids[0], ids[5], Direction::Ancestors).is_none());
    }

    #[test]
    fn direction_reverse() {
        assert_eq!(Direction::Ancestors.reverse(), Direction::Descendants);
        assert_eq!(Direction::Descendants.reverse(), Direction::Ancestors);
    }

    #[test]
    fn edge_filter_can_exclude_automatic_edges() {
        let (g, ids) = lineage_fixture();
        // Descendants of blog excluding automatic (embed) edges: no ad.
        let tr = bfs(
            &g,
            ids[2],
            Direction::Descendants,
            |k| k.is_causal() && !k.is_automatic(),
            &Budget::new(),
        );
        let reached: Vec<NodeId> = tr.node_ids().collect();
        assert!(!reached.contains(&ids[5]));
        assert!(reached.contains(&ids[4]));
    }
}
