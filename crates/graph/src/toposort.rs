//! Topological ordering and cycle detection.
//!
//! Provenance "by definition" is acyclic (§3.1); this module provides the
//! checker the rest of the system uses to *prove* the invariant holds, plus
//! a topological order used by factorized storage and by HITS seeding.

use crate::graph::ProvenanceGraph;
use crate::ids::NodeId;

/// Computes a topological order of the graph, oldest-derivation first:
/// every edge `src → dst` (src derives from dst) places `dst` before `src`.
///
/// Returns `None` if the graph contains a cycle (which
/// [`ProvenanceGraph`] insertion rules should make impossible; a `None`
/// here indicates a bug and is treated as such by callers).
pub fn topological_order(graph: &ProvenanceGraph) -> Option<Vec<NodeId>> {
    let n = graph.node_count();
    // Kahn's algorithm over the derivation direction: in-degree here counts
    // edges *out of* a node (its derivations), so sources of the order are
    // nodes that derive from nothing.
    let mut remaining_out: Vec<usize> = (0..n)
        .map(|i| graph.out_degree(NodeId::new(i as u32)))
        .collect();
    let mut order = Vec::with_capacity(n);
    let mut ready: Vec<NodeId> = (0..n)
        .filter(|&i| remaining_out[i] == 0)
        .map(|i| NodeId::new(i as u32))
        .collect();
    while let Some(node) = ready.pop() {
        order.push(node);
        for (_, child) in graph.children(node) {
            let slot = &mut remaining_out[child.as_usize()];
            *slot -= 1;
            if *slot == 0 {
                ready.push(child);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Returns `true` if the graph contains a derivation cycle.
pub fn has_cycle(graph: &ProvenanceGraph) -> bool {
    topological_order(graph).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::EdgeKind;
    use crate::node::{Node, NodeKind};
    use crate::time::Timestamp;

    fn t(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn chain(n: usize) -> ProvenanceGraph {
        let mut g = ProvenanceGraph::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| g.add_node(Node::new(NodeKind::PageVisit, format!("u{i}"), t(i as i64))))
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[1], w[0], EdgeKind::Link, t(1)).unwrap();
        }
        g
    }

    #[test]
    fn empty_graph_orders_trivially() {
        let g = ProvenanceGraph::new();
        assert_eq!(topological_order(&g), Some(vec![]));
        assert!(!has_cycle(&g));
    }

    #[test]
    fn chain_orders_ancestor_first() {
        let g = chain(5);
        let order = topological_order(&g).unwrap();
        assert_eq!(order.len(), 5);
        let pos: Vec<usize> = (0..5)
            .map(|i| order.iter().position(|&n| n.index() == i as u32).unwrap())
            .collect();
        for w in pos.windows(2) {
            assert!(w[0] < w[1], "ancestors must precede descendants");
        }
    }

    #[test]
    fn diamond_orders_consistently() {
        let mut g = ProvenanceGraph::new();
        let a = g.add_node(Node::new(NodeKind::PageVisit, "a", t(0)));
        let b = g.add_node(Node::new(NodeKind::PageVisit, "b", t(1)));
        let c = g.add_node(Node::new(NodeKind::PageVisit, "c", t(1)));
        let d = g.add_node(Node::new(NodeKind::PageVisit, "d", t(2)));
        g.add_edge(b, a, EdgeKind::Link, t(1)).unwrap();
        g.add_edge(c, a, EdgeKind::NewTab, t(1)).unwrap();
        g.add_edge(d, b, EdgeKind::Link, t(2)).unwrap();
        g.add_edge(d, c, EdgeKind::TemporalOverlap, t(2)).unwrap();
        let order = topological_order(&g).unwrap();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(a) < pos(c));
        assert!(pos(b) < pos(d));
        assert!(pos(c) < pos(d));
    }

    #[test]
    fn disconnected_components_all_ordered() {
        let mut g = chain(3);
        let x = g.add_node(Node::new(NodeKind::Download, "x", t(9)));
        let order = topological_order(&g).unwrap();
        assert_eq!(order.len(), 4);
        assert!(order.contains(&x));
    }
}
