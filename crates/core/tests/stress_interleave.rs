//! Deterministic-interleaving stress test for the capture queue: several
//! producer threads drive seeded schedules of valid and deliberately
//! invalid events — with yield-injection to perturb the interleaving —
//! while reader threads traverse the graph. After a flush the totals
//! (visits, rejections, queue depth) must be exact, for every seed.

use bp_core::{
    BrowserEvent, CaptureConfig, CapturePipeline, NavigationCause, ProvenanceBrowser, TabId,
};
use bp_graph::Timestamp;
use std::path::PathBuf;

const PRODUCERS: u32 = 4;
const NAVS_PER_PRODUCER: i64 = 200;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "bp-stress-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A splitmix-style PRNG: deterministic per seed, no global state, so a
/// failing schedule is reproducible from its seed alone.
struct Schedule(u64);

impl Schedule {
    fn new(seed: u64) -> Self {
        Schedule(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Yields at seed-determined points to perturb the interleaving.
    fn maybe_yield(&mut self) {
        if self.next().is_multiple_of(8) {
            std::thread::yield_now();
        }
    }
}

#[test]
fn capture_totals_are_exact_under_seeded_interleavings() {
    for seed in [3u64, 11, 29] {
        let dir = TempDir::new(&format!("interleave-{seed}"));
        let browser = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
        let pipeline = CapturePipeline::start(browser);
        let shared = pipeline.shared();

        let mut expected_rejected = 0u64;
        std::thread::scope(|scope| {
            let mut producers = Vec::new();
            for p in 0..PRODUCERS {
                let pipeline = &pipeline;
                producers.push(scope.spawn(move || {
                    let mut schedule = Schedule::new(seed * 97 + u64::from(p));
                    // Disjoint timestamp ranges per producer: the graph's
                    // invariants are node-id based, but disjoint ranges keep
                    // per-URL visit timelines sensible for the final checks.
                    let base = i64::from(p) * 1_000_000;
                    assert!(pipeline.submit(BrowserEvent::tab_opened(
                        Timestamp::from_secs(base),
                        TabId(p),
                        None,
                    )));
                    let mut rejected = 0u64;
                    for i in 0..NAVS_PER_PRODUCER {
                        // Seed-determined fault injection: a navigation in a
                        // tab nobody opened must be counted, not applied —
                        // and must not disturb the valid stream around it.
                        if schedule.next().is_multiple_of(16) {
                            assert!(pipeline.submit(BrowserEvent::navigate(
                                Timestamp::from_secs(base + i),
                                TabId(100 + p),
                                format!("http://bad-{p}/"),
                                None,
                                NavigationCause::Link,
                            )));
                            rejected += 1;
                        }
                        assert!(pipeline.submit(BrowserEvent::navigate(
                            Timestamp::from_secs(base + 1 + i),
                            TabId(p),
                            format!("http://p{p}/page{i}"),
                            None,
                            NavigationCause::Link,
                        )));
                        schedule.maybe_yield();
                    }
                    rejected
                }));
            }
            let readers: Vec<_> = (0..2u64)
                .map(|r| {
                    let handle = shared.clone();
                    scope.spawn(move || {
                        let mut schedule = Schedule::new(seed * 131 + r);
                        for _ in 0..300 {
                            let guard = handle.read();
                            assert!(guard.graph().verify_acyclic());
                            drop(guard);
                            schedule.maybe_yield();
                        }
                    })
                })
                .collect();
            for producer in producers {
                expected_rejected += producer.join().unwrap();
            }
            for reader in readers {
                reader.join().unwrap();
            }
        });

        pipeline.flush();
        assert_eq!(pipeline.rejected_events(), expected_rejected, "seed {seed}");
        assert!(pipeline.failure().is_none(), "seed {seed}");
        {
            let guard = shared.read();
            // Every enqueue was matched by a drain: the depth gauge must
            // land on exactly zero, not "roughly zero".
            assert_eq!(guard.obs().gauge("capture.queue_depth").get(), 0);
            assert_eq!(
                guard
                    .graph()
                    .nodes_of_kind(bp_graph::NodeKind::PageVisit)
                    .count(),
                (PRODUCERS as usize) * (NAVS_PER_PRODUCER as usize),
                "seed {seed}"
            );
            assert!(guard.graph().verify_acyclic());
        }
        drop(shared);

        let browser = pipeline.shutdown();
        for p in 0..PRODUCERS {
            assert_eq!(browser.visit_count(&format!("http://p{p}/page0")), 1);
            assert_eq!(
                browser.visit_count(&format!("http://bad-{p}/")),
                0,
                "rejected events must leave no trace"
            );
        }
    }
}
