//! A plain-text event-log format.
//!
//! One event per line, tab-separated, with percent-escaping for the three
//! characters that would break the framing (`%`, tab, newline). The CLI
//! uses this to persist and replay captured event streams, and the
//! simulator can dump workloads for inspection — the reproduction's
//! stand-in for a real browser's instrumentation feed.
//!
//! ```text
//! 1000000  open      0  -
//! 2000000  nav       0  typed     http://a/  A%20Title
//! 3000000  nav       0  search    http://se/?q=wine  -  wine
//! 4000000  download  0  /tmp/list.pdf  8192
//! 5000000  close     0
//! ```

use crate::error::{CoreError, CoreResult};
use crate::event::{BrowserEvent, EventKind, NavigationCause, TabId};
use bp_graph::Timestamp;
use std::fmt::Write as _;

/// Escapes a field for the tab-separated format.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            other => out.push(other),
        }
    }
    out
}

/// Reverses [`escape`].
fn unescape(s: &str) -> CoreResult<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hi = chars.next();
        let lo = chars.next();
        match (hi, lo) {
            (Some(h), Some(l)) => {
                let byte = u8::from_str_radix(&format!("{h}{l}"), 16)
                    .map_err(|_| CoreError::BadEvent(format!("bad escape %{h}{l}")))?;
                out.push(byte as char);
            }
            _ => return Err(CoreError::BadEvent("truncated escape".to_owned())),
        }
    }
    Ok(out)
}

/// Optional field: `-` encodes `None`.
fn opt(s: &Option<String>) -> String {
    match s {
        Some(v) if !v.is_empty() => escape(v),
        _ => "-".to_owned(),
    }
}

/// Formats one event as a log line (no trailing newline).
pub fn format_event(event: &BrowserEvent) -> String {
    let mut line = String::new();
    let _ = write!(line, "{}", event.at.as_micros());
    match &event.kind {
        EventKind::TabOpened { tab, opener } => {
            let _ = write!(line, "\topen\t{}", tab.0);
            match opener {
                Some(o) => {
                    let _ = write!(line, "\t{}", o.0);
                }
                None => line.push_str("\t-"),
            }
        }
        EventKind::TabClosed { tab } => {
            let _ = write!(line, "\tclose\t{}", tab.0);
        }
        EventKind::Navigate {
            tab,
            url,
            title,
            cause,
        } => {
            let _ = write!(
                line,
                "\tnav\t{}\t{}\t{}\t{}",
                tab.0,
                cause.label(),
                escape(url),
                opt(title)
            );
            match cause {
                NavigationCause::Bookmark { bookmark_url } => {
                    let _ = write!(line, "\t{}", escape(bookmark_url));
                }
                NavigationCause::Redirect { status } => {
                    let _ = write!(line, "\t{status}");
                }
                NavigationCause::SearchQuery { query } => {
                    let _ = write!(line, "\t{}", escape(query));
                }
                NavigationCause::FormSubmit { fields } => {
                    let _ = write!(line, "\t{}", escape(fields));
                }
                _ => {}
            }
        }
        EventKind::EmbedLoad { tab, url } => {
            let _ = write!(line, "\tembed\t{}\t{}", tab.0, escape(url));
        }
        EventKind::BookmarkAdd { tab, name } => {
            let _ = write!(line, "\tbookmark_add\t{}\t{}", tab.0, escape(name));
        }
        EventKind::Download { tab, path, bytes } => {
            let _ = write!(line, "\tdownload\t{}\t{}\t{}", tab.0, escape(path), bytes);
        }
    }
    line
}

/// Formats a whole event stream, one line per event.
pub fn format_log<'a>(events: impl IntoIterator<Item = &'a BrowserEvent>) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&format_event(event));
        out.push('\n');
    }
    out
}

/// Parses one log line.
///
/// # Errors
///
/// Returns [`CoreError::BadEvent`] for malformed lines.
pub fn parse_event(line: &str) -> CoreResult<BrowserEvent> {
    let fields: Vec<&str> = line.split('\t').collect();
    let bad = |msg: &str| CoreError::BadEvent(format!("{msg}: {line:?}"));
    if fields.len() < 2 {
        return Err(bad("too few fields"));
    }
    let at = Timestamp::from_micros(fields[0].parse::<i64>().map_err(|_| bad("bad timestamp"))?);
    let tab_at = |i: usize| -> CoreResult<TabId> {
        fields
            .get(i)
            .and_then(|f| f.parse::<u32>().ok())
            .map(TabId)
            .ok_or_else(|| bad("bad tab id"))
    };
    let field_at = |i: usize| -> CoreResult<String> {
        unescape(fields.get(i).ok_or_else(|| bad("missing field"))?)
    };
    let kind = match fields[1] {
        "open" => {
            let tab = tab_at(2)?;
            let opener = match fields.get(3) {
                Some(&"-") | None => None,
                Some(f) => Some(TabId(f.parse::<u32>().map_err(|_| bad("bad opener"))?)),
            };
            EventKind::TabOpened { tab, opener }
        }
        "close" => EventKind::TabClosed { tab: tab_at(2)? },
        "nav" => {
            let tab = tab_at(2)?;
            let cause_label = *fields.get(3).ok_or_else(|| bad("missing cause"))?;
            let url = field_at(4)?;
            let title = match fields.get(5) {
                Some(&"-") | None => None,
                Some(f) => Some(unescape(f)?),
            };
            let cause = match cause_label {
                "link" => NavigationCause::Link,
                "typed" => NavigationCause::Typed,
                "back_forward" => NavigationCause::BackForward,
                "reload" => NavigationCause::Reload,
                "bookmark" => NavigationCause::Bookmark {
                    bookmark_url: field_at(6)?,
                },
                "redirect" => NavigationCause::Redirect {
                    status: fields
                        .get(6)
                        .and_then(|f| f.parse::<u16>().ok())
                        .ok_or_else(|| bad("bad redirect status"))?,
                },
                "search" => NavigationCause::SearchQuery {
                    query: field_at(6)?,
                },
                "form" => NavigationCause::FormSubmit {
                    fields: field_at(6)?,
                },
                other => return Err(bad(&format!("unknown cause {other}"))),
            };
            EventKind::Navigate {
                tab,
                url,
                title,
                cause,
            }
        }
        "embed" => EventKind::EmbedLoad {
            tab: tab_at(2)?,
            url: field_at(3)?,
        },
        "bookmark_add" => EventKind::BookmarkAdd {
            tab: tab_at(2)?,
            name: field_at(3)?,
        },
        "download" => EventKind::Download {
            tab: tab_at(2)?,
            path: field_at(3)?,
            bytes: fields
                .get(4)
                .and_then(|f| f.parse::<u64>().ok())
                .ok_or_else(|| bad("bad byte count"))?,
        },
        other => return Err(bad(&format!("unknown event kind {other}"))),
    };
    Ok(BrowserEvent { at, kind })
}

/// Parses a whole log (empty lines and `#` comments skipped).
///
/// # Errors
///
/// Returns the first line's parse error, annotated with its line number.
pub fn parse_log(text: &str) -> CoreResult<Vec<BrowserEvent>> {
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        events.push(
            parse_event(trimmed)
                .map_err(|e| CoreError::BadEvent(format!("line {}: {e}", lineno + 1)))?,
        );
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn samples() -> Vec<BrowserEvent> {
        vec![
            BrowserEvent::tab_opened(t(1), TabId(0), None),
            BrowserEvent::tab_opened(t(2), TabId(1), Some(TabId(0))),
            BrowserEvent::navigate(
                t(3),
                TabId(0),
                "http://a/",
                Some("A Title"),
                NavigationCause::Typed,
            ),
            BrowserEvent::navigate(t(4), TabId(0), "http://b/", None, NavigationCause::Link),
            BrowserEvent::navigate(
                t(5),
                TabId(0),
                "http://se/?q=wine+tasting",
                Some("wine - Search"),
                NavigationCause::SearchQuery {
                    query: "wine tasting".to_owned(),
                },
            ),
            BrowserEvent::navigate(
                t(6),
                TabId(0),
                "http://target/",
                None,
                NavigationCause::Redirect { status: 302 },
            ),
            BrowserEvent::navigate(
                t(7),
                TabId(0),
                "http://wiki/",
                None,
                NavigationCause::Bookmark {
                    bookmark_url: "http://wiki/".to_owned(),
                },
            ),
            BrowserEvent::navigate(
                t(8),
                TabId(0),
                "http://flights/results",
                None,
                NavigationCause::FormSubmit {
                    fields: "from=SFO&to=JFK".to_owned(),
                },
            ),
            BrowserEvent::navigate(
                t(9),
                TabId(0),
                "http://a/",
                None,
                NavigationCause::BackForward,
            ),
            BrowserEvent::navigate(t(10), TabId(0), "http://a/", None, NavigationCause::Reload),
            BrowserEvent::new(
                t(11),
                EventKind::EmbedLoad {
                    tab: TabId(0),
                    url: "http://ads/x.js".to_owned(),
                },
            ),
            BrowserEvent::new(
                t(12),
                EventKind::BookmarkAdd {
                    tab: TabId(0),
                    name: "My page".to_owned(),
                },
            ),
            BrowserEvent::new(
                t(13),
                EventKind::Download {
                    tab: TabId(0),
                    path: "/tmp/file with space.pdf".to_owned(),
                    bytes: 999,
                },
            ),
            BrowserEvent::tab_closed(t(14), TabId(1)),
        ]
    }

    #[test]
    fn roundtrip_all_event_kinds() {
        let events = samples();
        let text = format_log(&events);
        let parsed = parse_log(&text).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn escaping_handles_awkward_characters() {
        let e = BrowserEvent::navigate(
            t(1),
            TabId(0),
            "http://x/?a=1%2\tb\nc",
            Some("Tab\tNewline\nPercent%"),
            NavigationCause::SearchQuery {
                query: "q\twith\nstuff%".to_owned(),
            },
        );
        let line = format_event(&e);
        assert!(!line.contains('\n'));
        assert_eq!(line.matches('\t').count(), 6, "only framing tabs");
        let parsed = parse_event(&line).unwrap();
        assert_eq!(parsed, e);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n\n1000000\topen\t0\t-\n";
        let events = parse_log(text).unwrap();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn malformed_lines_report_line_numbers() {
        let text = "1000000\topen\t0\t-\nnot an event\n";
        let err = parse_log(text).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn bad_fields_rejected() {
        for bad in [
            "xyz\topen\t0\t-",               // bad timestamp
            "1\tfly\t0",                     // unknown kind
            "1\tnav\t0\twarp\thttp://a/\t-", // unknown cause
            "1\tnav\t0\tredirect\thttp://a/\t-\tnotanumber",
            "1\tdownload\t0\t/tmp/x", // missing bytes
            "1\topen",                // missing tab
        ] {
            assert!(parse_event(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn empty_title_roundtrips_as_none() {
        let e =
            BrowserEvent::navigate(t(1), TabId(0), "http://a/", Some(""), NavigationCause::Link);
        let parsed = parse_event(&format_event(&e)).unwrap();
        match parsed.kind {
            EventKind::Navigate { title, .. } => assert_eq!(title, None),
            _ => unreachable!(),
        }
    }

    #[test]
    fn truncated_escape_rejected() {
        assert!(unescape("abc%2").is_err());
        assert!(unescape("abc%zz").is_err());
        assert_eq!(unescape("a%25b").unwrap(), "a%b");
    }

    mod proptests {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            /// The parser never panics, whatever bytes arrive (a user can
            /// point `browserprov ingest` at any file).
            #[test]
            fn parse_never_panics(input in ".{0,400}") {
                let _ = parse_log(&input);
                for line in input.lines() {
                    let _ = parse_event(line);
                }
            }

            /// Mutating any single character of a valid log line either
            /// still parses or errors cleanly — never panics, never loops.
            #[test]
            fn mutated_lines_fail_cleanly(pos in 0usize..120, replacement in proptest::char::any()) {
                let line = "1000000\tnav\t0\tsearch\thttp://se/?q=a+b\tTitle\twine tasting";
                let mut chars: Vec<char> = line.chars().collect();
                if pos < chars.len() {
                    chars[pos] = replacement;
                }
                let mutated: String = chars.into_iter().collect();
                let _ = parse_event(&mutated);
            }
        }
    }
}
