//! The capture layer: browser events → provenance graph updates.
//!
//! This is the paper's §3 taxonomy, executable. Every [`BrowserEvent`]
//! becomes nodes and typed derives-from edges in the [`ProvenanceStore`]:
//! navigations create versioned visit instances (§3.1), closes stamp the
//! missing end of each open interval (§3.2), and bookmarks, search terms,
//! forms, and downloads become first-class nodes (§3.3) — "a single,
//! homogeneous provenance graph store that describes and relates every kind
//! of history object" (§3.4).
//!
//! [`CaptureConfig`] selects which relationships are recorded. The default
//! records everything the paper advocates; [`CaptureConfig::firefox_like`]
//! drops the relationships §3.2 calls "second-class citizens" — it is the
//! baseline for ablation A4 (and reproduces the paper's irony that a heavy
//! smart-location-bar user "will generate sparsely connected metadata").

use crate::error::{CoreError, CoreResult};
use crate::event::{BrowserEvent, EventKind, NavigationCause, TabId};
use bp_graph::{AttrValue, EdgeKind, NodeId, NodeKind, Timestamp};
use bp_obs::{Counter, Histogram};
use bp_storage::ProvenanceStore;
use std::collections::HashMap;
use std::sync::Arc;

/// Which relationships and objects the capture layer records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaptureConfig {
    /// Record typed-location navigations as edges (§3.2).
    pub record_typed_location: bool,
    /// Record new-tab opener relationships (§3.2).
    pub record_new_tab: bool,
    /// Record temporal-overlap edges between simultaneously open pages
    /// (§3.2).
    pub record_temporal_overlap: bool,
    /// Record close timestamps for pages and tabs (§3.2).
    pub record_close: bool,
    /// Record search terms as nodes with lineage edges (§3.3).
    pub record_search_terms: bool,
    /// Record form submissions as nodes (§3.3).
    pub record_form_entries: bool,
    /// Maintain logical Page objects with `instance_of` edges from visits.
    pub record_page_objects: bool,
    /// Cap on temporal-overlap edges emitted per navigation (bounds the
    /// quadratic blowup of a user with very many open tabs).
    pub max_overlap_edges: usize,
}

impl Default for CaptureConfig {
    fn default() -> Self {
        CaptureConfig {
            record_typed_location: true,
            record_new_tab: true,
            record_temporal_overlap: true,
            record_close: true,
            record_search_terms: true,
            record_form_entries: true,
            record_page_objects: true,
            // One materialized association per navigation (to the most
            // recently active other tab). The interval index answers the
            // full overlap relation from close records; materializing
            // O(open tabs) edges per navigation would dominate the store
            // (§3.2's relationships should cost tens of percent, not 3x).
            max_overlap_edges: 1,
        }
    }
}

impl CaptureConfig {
    /// The full provenance-aware configuration (everything on).
    pub fn provenance_aware() -> Self {
        Self::default()
    }

    /// What the paper's §4 prototype plausibly stored: every §3.3 object
    /// (search terms, forms, bookmarks, downloads) and every navigation
    /// relationship including typed/new-tab, with close timestamps for
    /// time queries — but no *materialized* temporal-overlap edges (time
    /// relationships are evaluated from the visit intervals instead).
    /// Experiment E1 measures the 39.5% storage-overhead claim under this
    /// configuration.
    pub fn paper_prototype() -> Self {
        CaptureConfig {
            record_temporal_overlap: false,
            max_overlap_edges: 0,
            ..Self::default()
        }
    }

    /// What today's browsers record (§3): referrer-style link, redirect,
    /// and embed relationships plus bookmark/download objects — but none of
    /// the second-class relationships.
    pub fn firefox_like() -> Self {
        CaptureConfig {
            record_typed_location: false,
            record_new_tab: false,
            record_temporal_overlap: false,
            record_close: false,
            record_search_terms: false,
            record_form_entries: false,
            record_page_objects: true,
            max_overlap_edges: 0,
        }
    }
}

#[derive(Debug)]
struct TabState {
    /// The Tab node representing this tab session.
    node: NodeId,
    /// The tab's current page visit.
    current: Option<NodeId>,
    /// Current visit of the opener tab at open time, consumed by the
    /// first navigation (the NewTab relationship).
    opener_visit: Option<NodeId>,
}

/// What an event produced, for callers that index or report.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CaptureOutcome {
    /// The main node the event created (visit, download, bookmark, …).
    pub primary: Option<NodeId>,
    /// Edges added by this event.
    pub edges_added: usize,
}

/// Translates [`BrowserEvent`]s into provenance store mutations.
#[derive(Debug)]
pub struct CaptureEngine {
    store: ProvenanceStore,
    config: CaptureConfig,
    tabs: HashMap<TabId, TabState>,
    bookmarks: HashMap<String, NodeId>,
    search_terms: HashMap<String, NodeId>,
    pages: HashMap<String, NodeId>,
    tab_counter: u64,
    /// Hot-path metric handles (resolved once; `handle` runs per event).
    events_total: Arc<Counter>,
    events_rejected: Arc<Counter>,
    edges_added: Arc<Counter>,
    batch_ops: Arc<Histogram>,
}

impl CaptureEngine {
    /// Wraps a store with the given configuration, rebuilding object maps
    /// (bookmarks, search terms, pages) from the recovered graph. Tab state
    /// is not persisted: like a real browser restart, previously open tabs
    /// are gone.
    pub fn new(store: ProvenanceStore, config: CaptureConfig) -> Self {
        let obs = store.obs().clone();
        let mut engine = CaptureEngine {
            store,
            config,
            tabs: HashMap::new(),
            bookmarks: HashMap::new(),
            search_terms: HashMap::new(),
            pages: HashMap::new(),
            tab_counter: 0,
            events_total: obs.counter("capture.events_total"),
            events_rejected: obs.counter("capture.events_rejected"),
            edges_added: obs.counter("capture.edges_added"),
            batch_ops: obs.histogram("capture.batch_ops"),
        };
        for (id, node) in engine.store.graph().nodes() {
            match node.kind() {
                NodeKind::Bookmark => {
                    engine.bookmarks.insert(node.key().to_owned(), id);
                }
                NodeKind::SearchTerm => {
                    engine.search_terms.insert(node.key().to_owned(), id);
                }
                NodeKind::Page => {
                    engine.pages.insert(node.key().to_owned(), id);
                }
                NodeKind::Tab => engine.tab_counter += 1,
                _ => {}
            }
        }
        engine
    }

    /// The active configuration.
    pub fn config(&self) -> &CaptureConfig {
        &self.config
    }

    /// Read access to the underlying store.
    pub fn store(&self) -> &ProvenanceStore {
        &self.store
    }

    /// Mutable access to the underlying store (snapshotting, syncing).
    pub fn store_mut(&mut self) -> &mut ProvenanceStore {
        &mut self.store
    }

    /// Consumes the engine, returning the store.
    pub fn into_store(self) -> ProvenanceStore {
        self.store
    }

    /// Number of times `url` has been visited (versions of its visit
    /// object). The lineage query's "likely to recognize" signal.
    pub fn visit_count(&self, url: &str) -> u32 {
        self.store
            .graph()
            .latest_version_of(NodeKind::PageVisit, url)
            .map_or(0, |(_, v)| v.number() + 1)
    }

    /// Currently open tabs.
    pub fn open_tabs(&self) -> Vec<TabId> {
        let mut v: Vec<TabId> = self.tabs.keys().copied().collect();
        v.sort();
        v
    }

    /// Redacts every history object whose key (URL, query, file path)
    /// equals `key` — the §4 privacy operation. Content disappears from
    /// the store (and, after the next snapshot, from disk); graph
    /// structure and timestamps are preserved. Object caches are purged
    /// so the redacted bookmark/search-term/page cannot be silently
    /// reused. Returns the redacted node ids.
    ///
    /// # Errors
    ///
    /// Propagates storage failures; an unknown key is a no-op.
    pub fn redact(&mut self, key: &str) -> CoreResult<Vec<NodeId>> {
        let nodes = self.store.redact_key(key)?;
        self.bookmarks.remove(key);
        self.pages.remove(key);
        self.search_terms.remove(key);
        Ok(nodes)
    }

    /// Applies one event to the store.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadEvent`] if the event is inconsistent with browser
    /// state (navigating a tab that is not open, bookmark-click on an
    /// unknown bookmark, download in a tab with no page);
    /// [`CoreError::Storage`] if persistence fails.
    pub fn handle(&mut self, event: &BrowserEvent) -> CoreResult<CaptureOutcome> {
        let at = event.at;
        // All of one event's mutations land in the log as a single atomic
        // frame: recovery replays a navigation with its edges entirely or
        // not at all.
        self.store.begin_batch();
        let outcome = match &event.kind {
            EventKind::TabOpened { tab, opener } => self.on_tab_opened(*tab, *opener, at),
            EventKind::TabClosed { tab } => self.on_tab_closed(*tab, at),
            EventKind::Navigate {
                tab,
                url,
                title,
                cause,
            } => self.on_navigate(*tab, url, title.as_deref(), cause, at),
            EventKind::EmbedLoad { tab, url } => self.on_embed(*tab, url, at),
            EventKind::BookmarkAdd { tab, name } => self.on_bookmark_add(*tab, name, at),
            EventKind::Download { tab, path, bytes } => self.on_download(*tab, path, *bytes, at),
        };
        // Persist whatever was applied even when the event was rejected
        // mid-way (validation happens before mutation, so a rejected event
        // normally applied nothing) — disk must mirror memory either way.
        self.store.commit_batch()?;
        match &outcome {
            Ok(o) => {
                self.events_total.inc();
                self.edges_added.add(o.edges_added as u64);
                // Ops in this event's atomic batch: the primary node (if
                // any) plus its edges — the per-event write amplification.
                self.batch_ops
                    .record(u64::from(o.primary.is_some()) + o.edges_added as u64);
            }
            Err(CoreError::BadEvent(_)) => self.events_rejected.inc(),
            Err(_) => {}
        }
        outcome
    }

    fn tab_state(&self, tab: TabId) -> CoreResult<&TabState> {
        self.tabs
            .get(&tab)
            .ok_or_else(|| CoreError::BadEvent(format!("{tab} is not open")))
    }

    fn on_tab_opened(
        &mut self,
        tab: TabId,
        opener: Option<TabId>,
        at: Timestamp,
    ) -> CoreResult<CaptureOutcome> {
        if self.tabs.contains_key(&tab) {
            return Err(CoreError::BadEvent(format!("{tab} is already open")));
        }
        let opener_visit = match opener {
            Some(o) => self.tab_state(o)?.current,
            None => None,
        };
        self.tab_counter += 1;
        let key = format!("tab:{}#{}", tab.0, self.tab_counter);
        let node = self.store.add_node(NodeKind::Tab, &key, at, &[])?;
        self.tabs.insert(
            tab,
            TabState {
                node,
                current: None,
                opener_visit,
            },
        );
        Ok(CaptureOutcome {
            primary: Some(node),
            edges_added: 0,
        })
    }

    fn on_tab_closed(&mut self, tab: TabId, at: Timestamp) -> CoreResult<CaptureOutcome> {
        let state = self
            .tabs
            .remove(&tab)
            .ok_or_else(|| CoreError::BadEvent(format!("{tab} is not open")))?;
        if self.config.record_close {
            if let Some(current) = state.current {
                self.store.close_node(current, at)?;
            }
            self.store.close_node(state.node, at)?;
        }
        Ok(CaptureOutcome::default())
    }

    fn on_navigate(
        &mut self,
        tab: TabId,
        url: &str,
        title: Option<&str>,
        cause: &NavigationCause,
        at: Timestamp,
    ) -> CoreResult<CaptureOutcome> {
        // Resolve and validate everything that can fail *before* mutating.
        let prev = self.tab_state(tab)?.current;
        let bookmark_node = match cause {
            NavigationCause::Bookmark { bookmark_url } => {
                Some(self.bookmarks.get(bookmark_url).copied().ok_or_else(|| {
                    CoreError::BadEvent(format!("unknown bookmark {bookmark_url}"))
                })?)
            }
            _ => None,
        };
        if matches!(cause, NavigationCause::Redirect { .. }) && prev.is_none() {
            return Err(CoreError::BadEvent(
                "redirect with no originating page".to_owned(),
            ));
        }

        let mut edges = 0;

        // Close the page being navigated away from (§3.2).
        if self.config.record_close {
            if let Some(p) = prev {
                self.store.close_node(p, at)?;
            }
        }

        // Nodes the visit will derive from are created BEFORE the visit,
        // so every edge points from a newer node to an older one. This
        // keeps the graph's monotone invariant intact, which in turn keeps
        // cycle checking O(1) per edge (see `ProvenanceGraph::add_edge`).
        let page = if self.config.record_page_objects {
            Some(match self.pages.get(url) {
                Some(&p) => p,
                None => {
                    // Known title at creation goes straight into the
                    // AddNode record, saving a SetNodeAttr frame.
                    let attrs = title.map(|t| ("title", AttrValue::from(t)));
                    let p = self
                        .store
                        .add_node(NodeKind::Page, url, at, attrs.as_slice())?;
                    self.pages.insert(url.to_owned(), p);
                    p
                }
            })
        } else {
            None
        };
        let form = match cause {
            NavigationCause::FormSubmit { fields } if self.config.record_form_entries => {
                let f = self.store.add_node(NodeKind::FormEntry, fields, at, &[])?;
                if let Some(p) = prev {
                    self.store.add_edge(f, p, EdgeKind::FormSubmit, at)?;
                    edges += 1;
                }
                Some(f)
            }
            _ => None,
        };
        let term = match cause {
            NavigationCause::SearchQuery { query } if self.config.record_search_terms => {
                Some(match self.search_terms.get(query) {
                    Some(&t) => t,
                    None => {
                        let t = self.store.add_node(NodeKind::SearchTerm, query, at, &[])?;
                        self.search_terms.insert(query.clone(), t);
                        t
                    }
                })
            }
            _ => None,
        };

        // The visit instance (auto-versioned, §3.1). The title rides in
        // the AddNode record itself — one log frame instead of two.
        let visit = match title {
            Some(t) => {
                self.store
                    .add_visit_with_attrs(url, at, &[("title", AttrValue::from(t))])?
            }
            None => self.store.add_visit(url, at)?,
        };

        // Logical page object + instance_of edge. The page title is only
        // rewritten when it actually changed: revisits are the common case
        // and a same-title SetNodeAttr per revisit is pure log traffic.
        if let Some(page) = page {
            if let Some(t) = title {
                let stale = self
                    .store
                    .graph()
                    .node(page)
                    .is_ok_and(|n| n.attrs().get_str("title") != Some(t));
                if stale {
                    self.store.set_node_attr(page, "title", t)?;
                }
            }
            self.store.add_edge(visit, page, EdgeKind::InstanceOf, at)?;
            edges += 1;
        }

        // The cause relationship.
        match cause {
            NavigationCause::Link => {
                if let Some(p) = prev {
                    self.store.add_edge(visit, p, EdgeKind::Link, at)?;
                    edges += 1;
                }
            }
            NavigationCause::Typed => {
                if self.config.record_typed_location {
                    if let Some(p) = prev {
                        self.store.add_edge(visit, p, EdgeKind::TypedLocation, at)?;
                        edges += 1;
                    }
                }
            }
            NavigationCause::Bookmark { .. } => {
                // Resolved before any mutation; a miss here means the
                // pre-validation above regressed, so degrade to an error
                // rather than aborting the capture thread.
                let Some(b) = bookmark_node else {
                    return Err(CoreError::BadEvent(
                        "bookmark navigation lost its resolved node".to_owned(),
                    ));
                };
                self.store.add_edge(visit, b, EdgeKind::BookmarkClick, at)?;
                edges += 1;
            }
            NavigationCause::Redirect { status } => {
                let Some(p) = prev else {
                    return Err(CoreError::BadEvent(
                        "redirect with no originating page".to_owned(),
                    ));
                };
                self.store.add_edge_with_attrs(
                    visit,
                    p,
                    EdgeKind::Redirect,
                    at,
                    &[("status", AttrValue::Int(i64::from(*status)))],
                )?;
                edges += 1;
            }
            NavigationCause::SearchQuery { .. } => {
                if let Some(term) = term {
                    self.store
                        .add_edge(visit, term, EdgeKind::SearchResult, at)?;
                    edges += 1;
                }
            }
            NavigationCause::FormSubmit { .. } => {
                if let Some(form) = form {
                    self.store.add_edge(visit, form, EdgeKind::FormSubmit, at)?;
                    edges += 1;
                }
            }
            NavigationCause::BackForward => {
                if let Some(p) = prev {
                    self.store.add_edge(visit, p, EdgeKind::BackForward, at)?;
                    edges += 1;
                }
            }
            NavigationCause::Reload => {
                if let Some(p) = prev {
                    self.store.add_edge(visit, p, EdgeKind::Reload, at)?;
                    edges += 1;
                }
            }
        }

        // First navigation in a spawned tab: the NewTab relationship.
        // The tab was validated open at entry; if it vanished mid-capture,
        // skipping the NewTab edge degrades more gracefully than panicking.
        let opener_visit = self
            .tabs
            .get_mut(&tab)
            .and_then(|state| state.opener_visit.take());
        if self.config.record_new_tab {
            if let Some(o) = opener_visit {
                self.store.add_edge(visit, o, EdgeKind::NewTab, at)?;
                edges += 1;
            }
        }

        // Temporal overlap with other open tabs' current pages (§3.2),
        // directed later → earlier to keep the DAG invariant.
        if self.config.record_temporal_overlap {
            let others: Vec<NodeId> = self
                .tabs
                .iter()
                .filter(|(&id, _)| id != tab)
                .filter_map(|(_, s)| s.current)
                .take(self.config.max_overlap_edges)
                .collect();
            for other in others {
                self.store
                    .add_edge(visit, other, EdgeKind::TemporalOverlap, at)?;
                edges += 1;
            }
        }

        if let Some(state) = self.tabs.get_mut(&tab) {
            state.current = Some(visit);
        }
        Ok(CaptureOutcome {
            primary: Some(visit),
            edges_added: edges,
        })
    }

    fn on_embed(&mut self, tab: TabId, url: &str, at: Timestamp) -> CoreResult<CaptureOutcome> {
        let parent = self
            .tab_state(tab)?
            .current
            .ok_or_else(|| CoreError::BadEvent(format!("{tab} has no page to embed into")))?;
        let visit = self.store.add_visit(url, at)?;
        self.store.add_edge(visit, parent, EdgeKind::Embed, at)?;
        if self.config.record_close {
            // Embedded loads are instantaneous from the history's point of
            // view; close them at load time.
            self.store.close_node(visit, at)?;
        }
        Ok(CaptureOutcome {
            primary: Some(visit),
            edges_added: 1,
        })
    }

    fn on_bookmark_add(
        &mut self,
        tab: TabId,
        name: &str,
        at: Timestamp,
    ) -> CoreResult<CaptureOutcome> {
        let state = self.tab_state(tab)?;
        let current = state
            .current
            .ok_or_else(|| CoreError::BadEvent(format!("{tab} has no page to bookmark")))?;
        let url = self
            .store
            .graph()
            .node(current)
            .map_err(to_bad_event)?
            .key()
            .to_owned();
        let bookmark = match self.bookmarks.get(&url) {
            Some(&b) => b,
            None => {
                let b = self.store.add_node(
                    NodeKind::Bookmark,
                    &url,
                    at,
                    &[("name", AttrValue::Str(name.to_owned()))],
                )?;
                self.bookmarks.insert(url, b);
                self.store
                    .add_edge(b, current, EdgeKind::BookmarkCreated, at)?;
                return Ok(CaptureOutcome {
                    primary: Some(b),
                    edges_added: 1,
                });
            }
        };
        // Re-bookmarking an already-bookmarked URL refreshes the name only.
        self.store.set_node_attr(bookmark, "name", name)?;
        Ok(CaptureOutcome {
            primary: Some(bookmark),
            edges_added: 0,
        })
    }

    fn on_download(
        &mut self,
        tab: TabId,
        path: &str,
        bytes: u64,
        at: Timestamp,
    ) -> CoreResult<CaptureOutcome> {
        let current = self
            .tab_state(tab)?
            .current
            .ok_or_else(|| CoreError::BadEvent(format!("{tab} has no page to download from")))?;
        let dl = self.store.add_node(
            NodeKind::Download,
            path,
            at,
            &[("bytes", AttrValue::Int(bytes as i64))],
        )?;
        self.store
            .add_edge(dl, current, EdgeKind::DownloadFrom, at)?;
        if self.config.record_close {
            self.store.close_node(dl, at)?;
        }
        Ok(CaptureOutcome {
            primary: Some(dl),
            edges_added: 1,
        })
    }
}

fn to_bad_event(e: bp_graph::GraphError) -> CoreError {
    CoreError::BadEvent(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_storage::SyncPolicy;
    use std::path::PathBuf;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "bp-capture-test-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&path);
            TempDir(path)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn engine(dir: &TempDir, config: CaptureConfig) -> CaptureEngine {
        let store = ProvenanceStore::open(&dir.0, SyncPolicy::OsManaged).unwrap();
        CaptureEngine::new(store, config)
    }

    fn t(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn nav(e: &mut CaptureEngine, s: i64, tab: u32, url: &str, cause: NavigationCause) -> NodeId {
        e.handle(&BrowserEvent::navigate(t(s), TabId(tab), url, None, cause))
            .unwrap()
            .primary
            .unwrap()
    }

    #[test]
    fn link_navigation_chain() {
        let dir = TempDir::new("chain");
        let mut e = engine(&dir, CaptureConfig::default());
        e.handle(&BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        let a = nav(&mut e, 1, 0, "http://a/", NavigationCause::Typed);
        let b = nav(&mut e, 2, 0, "http://b/", NavigationCause::Link);
        let g = e.store().graph();
        // b derives from a by Link.
        assert!(g
            .parents(b)
            .any(|(eid, p)| p == a && g.edge(eid).unwrap().kind() == EdgeKind::Link));
        // a (first nav in tab) has no Link parent but has its Page object.
        assert!(g
            .parents(a)
            .all(|(eid, _)| g.edge(eid).unwrap().kind() == EdgeKind::InstanceOf));
        // Navigating away closed a.
        assert_eq!(g.node(a).unwrap().interval().close(), Some(t(2)));
        assert!(g.verify_acyclic());
    }

    #[test]
    fn navigation_requires_open_tab() {
        let dir = TempDir::new("no-tab");
        let mut e = engine(&dir, CaptureConfig::default());
        let err = e
            .handle(&BrowserEvent::navigate(
                t(1),
                TabId(9),
                "http://a/",
                None,
                NavigationCause::Link,
            ))
            .unwrap_err();
        assert!(matches!(err, CoreError::BadEvent(_)));
    }

    #[test]
    fn double_open_and_unknown_close_rejected() {
        let dir = TempDir::new("tab-errors");
        let mut e = engine(&dir, CaptureConfig::default());
        e.handle(&BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        assert!(e
            .handle(&BrowserEvent::tab_opened(t(1), TabId(0), None))
            .is_err());
        assert!(e.handle(&BrowserEvent::tab_closed(t(1), TabId(5))).is_err());
    }

    #[test]
    fn search_creates_term_node_in_lineage() {
        let dir = TempDir::new("search");
        let mut e = engine(&dir, CaptureConfig::default());
        e.handle(&BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        let results = nav(
            &mut e,
            1,
            0,
            "http://se/?q=rosebud",
            NavigationCause::SearchQuery {
                query: "rosebud".to_owned(),
            },
        );
        let kane = nav(&mut e, 2, 0, "http://films/kane", NavigationCause::Link);
        let g = e.store().graph();
        let term = g
            .nodes_of_kind(NodeKind::SearchTerm)
            .next()
            .expect("term node exists");
        assert_eq!(g.node(term).unwrap().key(), "rosebud");
        // Lineage: kane -> results -> term.
        let anc = bp_graph::traverse::ancestors(g, kane);
        let ids: Vec<NodeId> = anc.node_ids().collect();
        assert!(ids.contains(&term));
        assert!(ids.contains(&results));
        // Same query later reuses the node.
        let _r2 = nav(
            &mut e,
            3,
            0,
            "http://se/?q=rosebud",
            NavigationCause::SearchQuery {
                query: "rosebud".to_owned(),
            },
        );
        assert_eq!(
            e.store()
                .graph()
                .nodes_of_kind(NodeKind::SearchTerm)
                .count(),
            1
        );
    }

    #[test]
    fn bookmark_roundtrip() {
        let dir = TempDir::new("bookmark");
        let mut e = engine(&dir, CaptureConfig::default());
        e.handle(&BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        let page = nav(&mut e, 1, 0, "http://wiki/", NavigationCause::Typed);
        let b = e
            .handle(&BrowserEvent::new(
                t(2),
                EventKind::BookmarkAdd {
                    tab: TabId(0),
                    name: "Wiki".to_owned(),
                },
            ))
            .unwrap()
            .primary
            .unwrap();
        let g = e.store().graph();
        assert_eq!(g.node(b).unwrap().kind(), NodeKind::Bookmark);
        assert!(g
            .parents(b)
            .any(|(eid, p)| p == page && g.edge(eid).unwrap().kind() == EdgeKind::BookmarkCreated));
        // Clicking it later creates the BookmarkClick relationship.
        nav(&mut e, 3, 0, "http://other/", NavigationCause::Link);
        let back = nav(
            &mut e,
            4,
            0,
            "http://wiki/",
            NavigationCause::Bookmark {
                bookmark_url: "http://wiki/".to_owned(),
            },
        );
        let g = e.store().graph();
        assert!(g
            .parents(back)
            .any(|(eid, p)| p == b && g.edge(eid).unwrap().kind() == EdgeKind::BookmarkClick));
        // Unknown bookmark rejected.
        assert!(e
            .handle(&BrowserEvent::navigate(
                t(5),
                TabId(0),
                "http://x/",
                None,
                NavigationCause::Bookmark {
                    bookmark_url: "http://nope/".to_owned()
                },
            ))
            .is_err());
    }

    #[test]
    fn rebookmarking_updates_name_without_new_node() {
        let dir = TempDir::new("rebookmark");
        let mut e = engine(&dir, CaptureConfig::default());
        e.handle(&BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        nav(&mut e, 1, 0, "http://wiki/", NavigationCause::Typed);
        let add = |e: &mut CaptureEngine, s: i64, name: &str| {
            e.handle(&BrowserEvent::new(
                t(s),
                EventKind::BookmarkAdd {
                    tab: TabId(0),
                    name: name.to_owned(),
                },
            ))
            .unwrap()
            .primary
            .unwrap()
        };
        let b1 = add(&mut e, 2, "Wiki");
        let b2 = add(&mut e, 3, "Wiki (new)");
        assert_eq!(b1, b2);
        assert_eq!(
            e.store().graph().node(b1).unwrap().attrs().get_str("name"),
            Some("Wiki (new)")
        );
    }

    #[test]
    fn download_lineage_scenario() {
        let dir = TempDir::new("download");
        let mut e = engine(&dir, CaptureConfig::default());
        e.handle(&BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        nav(
            &mut e,
            1,
            0,
            "http://se/?q=codec",
            NavigationCause::SearchQuery {
                query: "codec".to_owned(),
            },
        );
        nav(&mut e, 2, 0, "http://blog/", NavigationCause::Link);
        nav(&mut e, 3, 0, "http://host/file", NavigationCause::Link);
        let dl = e
            .handle(&BrowserEvent::new(
                t(4),
                EventKind::Download {
                    tab: TabId(0),
                    path: "/home/u/codec.exe".to_owned(),
                    bytes: 1_234_567,
                },
            ))
            .unwrap()
            .primary
            .unwrap();
        let g = e.store().graph();
        assert_eq!(g.node(dl).unwrap().kind(), NodeKind::Download);
        assert_eq!(
            g.node(dl).unwrap().attrs().get_int("bytes"),
            Some(1_234_567)
        );
        let anc: Vec<NodeId> = bp_graph::traverse::ancestors(g, dl).node_ids().collect();
        // The search term is reachable through the whole journey.
        let term = g.nodes_of_kind(NodeKind::SearchTerm).next().unwrap();
        assert!(anc.contains(&term));
        // Downloads need a current page.
        e.handle(&BrowserEvent::tab_opened(t(5), TabId(1), None))
            .unwrap();
        assert!(e
            .handle(&BrowserEvent::new(
                t(6),
                EventKind::Download {
                    tab: TabId(1),
                    path: "/tmp/x".to_owned(),
                    bytes: 1,
                },
            ))
            .is_err());
    }

    #[test]
    fn new_tab_relationship() {
        let dir = TempDir::new("newtab");
        let mut e = engine(&dir, CaptureConfig::default());
        e.handle(&BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        let origin = nav(&mut e, 1, 0, "http://a/", NavigationCause::Typed);
        e.handle(&BrowserEvent::tab_opened(t(2), TabId(1), Some(TabId(0))))
            .unwrap();
        let spawned = nav(&mut e, 3, 1, "http://b/", NavigationCause::Link);
        let g = e.store().graph();
        assert!(g
            .parents(spawned)
            .any(|(eid, p)| p == origin && g.edge(eid).unwrap().kind() == EdgeKind::NewTab));
        // Only the first navigation gets the NewTab edge.
        let second = nav(&mut e, 4, 1, "http://c/", NavigationCause::Link);
        let g = e.store().graph();
        assert!(!g
            .parents(second)
            .any(|(eid, _)| g.edge(eid).unwrap().kind() == EdgeKind::NewTab));
    }

    #[test]
    fn temporal_overlap_between_tabs() {
        let dir = TempDir::new("overlap");
        let mut e = engine(&dir, CaptureConfig::default());
        e.handle(&BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        let wine = nav(&mut e, 1, 0, "http://wine/", NavigationCause::Typed);
        e.handle(&BrowserEvent::tab_opened(t(2), TabId(1), None))
            .unwrap();
        let tickets = nav(&mut e, 3, 1, "http://tickets/", NavigationCause::Typed);
        let g = e.store().graph();
        assert!(g
            .parents(tickets)
            .any(|(eid, p)| p == wine && g.edge(eid).unwrap().kind() == EdgeKind::TemporalOverlap));
    }

    #[test]
    fn firefox_like_config_drops_second_class_relationships() {
        let dir = TempDir::new("firefox");
        let mut e = engine(&dir, CaptureConfig::firefox_like());
        e.handle(&BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        let a = nav(&mut e, 1, 0, "http://a/", NavigationCause::Typed);
        e.handle(&BrowserEvent::tab_opened(t(2), TabId(1), Some(TabId(0))))
            .unwrap();
        let b = nav(&mut e, 3, 1, "http://b/", NavigationCause::Typed);
        {
            let g = e.store().graph();
            // The §3.2 irony: the typed-location user generates sparse
            // metadata.
            let structural: Vec<EdgeKind> = g
                .parents(b)
                .map(|(eid, _)| g.edge(eid).unwrap().kind())
                .filter(|k| *k != EdgeKind::InstanceOf)
                .collect();
            assert!(structural.is_empty(), "got {structural:?}");
        }
        // And no close records: a's interval stays open after navigation.
        nav(&mut e, 4, 0, "http://c/", NavigationCause::Link);
        assert!(e.store().graph().node(a).unwrap().interval().is_open());
        // No search terms either.
        nav(
            &mut e,
            5,
            0,
            "http://se/?q=x",
            NavigationCause::SearchQuery {
                query: "x".to_owned(),
            },
        );
        assert_eq!(
            e.store()
                .graph()
                .nodes_of_kind(NodeKind::SearchTerm)
                .count(),
            0
        );
    }

    #[test]
    fn redirect_requires_origin_and_keeps_status() {
        let dir = TempDir::new("redirect");
        let mut e = engine(&dir, CaptureConfig::default());
        e.handle(&BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        assert!(e
            .handle(&BrowserEvent::navigate(
                t(1),
                TabId(0),
                "http://target/",
                None,
                NavigationCause::Redirect { status: 301 },
            ))
            .is_err());
        let short = nav(&mut e, 2, 0, "http://short/x", NavigationCause::Typed);
        let target = nav(
            &mut e,
            3,
            0,
            "http://target/",
            NavigationCause::Redirect { status: 302 },
        );
        let g = e.store().graph();
        let (eid, _) = g
            .parents(target)
            .find(|(eid, p)| *p == short && g.edge(*eid).unwrap().kind() == EdgeKind::Redirect)
            .expect("redirect edge");
        assert_eq!(g.edge(eid).unwrap().attrs().get_int("status"), Some(302));
    }

    #[test]
    fn form_submission_creates_entry_node() {
        let dir = TempDir::new("form");
        let mut e = engine(&dir, CaptureConfig::default());
        e.handle(&BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        let search_form_page = nav(&mut e, 1, 0, "http://flights/", NavigationCause::Typed);
        let results = nav(
            &mut e,
            2,
            0,
            "http://flights/results?from=SFO",
            NavigationCause::FormSubmit {
                fields: "from=SFO&to=JFK".to_owned(),
            },
        );
        let g = e.store().graph();
        let form = g.nodes_of_kind(NodeKind::FormEntry).next().unwrap();
        assert_eq!(g.node(form).unwrap().key(), "from=SFO&to=JFK");
        // results -> form -> page containing the form.
        let anc: Vec<NodeId> = bp_graph::traverse::ancestors(g, results)
            .node_ids()
            .collect();
        assert!(anc.contains(&form));
        assert!(anc.contains(&search_form_page));
    }

    #[test]
    fn embed_is_automatic_and_closed() {
        let dir = TempDir::new("embed");
        let mut e = engine(&dir, CaptureConfig::default());
        e.handle(&BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        let page = nav(&mut e, 1, 0, "http://news/", NavigationCause::Typed);
        let ad = e
            .handle(&BrowserEvent::new(
                t(2),
                EventKind::EmbedLoad {
                    tab: TabId(0),
                    url: "http://ads/banner.js".to_owned(),
                },
            ))
            .unwrap()
            .primary
            .unwrap();
        let g = e.store().graph();
        assert!(g
            .parents(ad)
            .any(|(eid, p)| p == page && g.edge(eid).unwrap().kind() == EdgeKind::Embed));
        assert!(!g.node(ad).unwrap().interval().is_open());
    }

    #[test]
    fn revisits_version_and_count() {
        let dir = TempDir::new("revisit");
        let mut e = engine(&dir, CaptureConfig::default());
        e.handle(&BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        assert_eq!(e.visit_count("http://a/"), 0);
        nav(&mut e, 1, 0, "http://a/", NavigationCause::Typed);
        nav(&mut e, 2, 0, "http://b/", NavigationCause::Link);
        nav(&mut e, 3, 0, "http://a/", NavigationCause::BackForward);
        assert_eq!(e.visit_count("http://a/"), 2);
        assert_eq!(e.visit_count("http://b/"), 1);
        assert!(e.store().graph().verify_acyclic());
    }

    #[test]
    fn state_rebuilds_after_recovery() {
        let dir = TempDir::new("rebuild");
        {
            let mut e = engine(&dir, CaptureConfig::default());
            e.handle(&BrowserEvent::tab_opened(t(0), TabId(0), None))
                .unwrap();
            nav(&mut e, 1, 0, "http://wiki/", NavigationCause::Typed);
            e.handle(&BrowserEvent::new(
                t(2),
                EventKind::BookmarkAdd {
                    tab: TabId(0),
                    name: "Wiki".to_owned(),
                },
            ))
            .unwrap();
            nav(
                &mut e,
                3,
                0,
                "http://se/?q=x",
                NavigationCause::SearchQuery {
                    query: "x".to_owned(),
                },
            );
        }
        // Reopen: maps rebuilt, tabs gone.
        let store = ProvenanceStore::open(&dir.0, SyncPolicy::OsManaged).unwrap();
        let mut e = CaptureEngine::new(store, CaptureConfig::default());
        assert!(e.open_tabs().is_empty());
        // Bookmark is clickable again (map rebuilt).
        e.handle(&BrowserEvent::tab_opened(t(10), TabId(0), None))
            .unwrap();
        let v = nav(
            &mut e,
            11,
            0,
            "http://wiki/",
            NavigationCause::Bookmark {
                bookmark_url: "http://wiki/".to_owned(),
            },
        );
        let g = e.store().graph();
        assert!(g
            .parents(v)
            .any(|(eid, _)| g.edge(eid).unwrap().kind() == EdgeKind::BookmarkClick));
        // Search term map rebuilt (no duplicate node for same query).
        nav(
            &mut e,
            12,
            0,
            "http://se/?q=x",
            NavigationCause::SearchQuery {
                query: "x".to_owned(),
            },
        );
        assert_eq!(
            e.store()
                .graph()
                .nodes_of_kind(NodeKind::SearchTerm)
                .count(),
            1
        );
    }

    #[test]
    fn open_tabs_reporting() {
        let dir = TempDir::new("opentabs");
        let mut e = engine(&dir, CaptureConfig::default());
        e.handle(&BrowserEvent::tab_opened(t(0), TabId(2), None))
            .unwrap();
        e.handle(&BrowserEvent::tab_opened(t(1), TabId(0), None))
            .unwrap();
        assert_eq!(e.open_tabs(), vec![TabId(0), TabId(2)]);
        e.handle(&BrowserEvent::tab_closed(t(2), TabId(2))).unwrap();
        assert_eq!(e.open_tabs(), vec![TabId(0)]);
    }
}
