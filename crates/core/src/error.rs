//! Error type for the capture layer.

use core::fmt;

/// Result alias used throughout `bp-core`.
pub type CoreResult<T> = Result<T, CoreError>;

/// Errors returned by the capture layer and facade.
#[derive(Debug)]
pub enum CoreError {
    /// The underlying store failed.
    Storage(bp_storage::StorageError),
    /// An event was inconsistent with browser state (e.g. navigation in a
    /// tab that was never opened, a bookmark click on an unknown bookmark).
    BadEvent(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
            CoreError::BadEvent(msg) => write!(f, "inconsistent browser event: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Storage(e) => Some(e),
            CoreError::BadEvent(_) => None,
        }
    }
}

impl From<bp_storage::StorageError> for CoreError {
    fn from(e: bp_storage::StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Storage(bp_storage::StorageError::Io(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::BadEvent("tab 3 unknown".into());
        assert!(e.to_string().contains("tab 3 unknown"));
        assert!(std::error::Error::source(&e).is_none());

        let s: CoreError = bp_storage::StorageError::corrupt(0, "x").into();
        assert!(s.to_string().contains("storage"));
        assert!(std::error::Error::source(&s).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CoreError>();
    }
}
