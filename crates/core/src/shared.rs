//! Concurrent embedding: a background capture thread plus shared readers.
//!
//! A real browser cannot block its UI thread on WAL appends. This module
//! provides the embedding shape the paper's §4 implies (capture happens
//! continuously; queries run interactively on the same store):
//!
//! - [`SharedBrowser`] — a clonable handle giving many threads concurrent
//!   *read* access to one [`ProvenanceBrowser`] (queries only need `&`);
//! - [`CapturePipeline`] — an event queue drained by a dedicated capture
//!   thread that takes short write locks per event, so readers interleave
//!   freely between events.

use crate::browser::ProvenanceBrowser;
use crate::error::CoreError;
use crate::event::BrowserEvent;
use bp_obs::profile::{self, Profile, QueryPlan};
use bp_obs::{Counter, Gauge};
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::{Mutex, RwLock, RwLockReadGuard};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest number of queued events drained into one write group (one lock
/// acquisition, one grouped WAL append).
const DRAIN_BATCH_MAX: usize = 256;

/// Capture-batch profiles retained for `/profilez` before the oldest are
/// dropped.
const PROFILE_RING: usize = 32;

/// Batches slower than this leave a flight-recorder note: they are the
/// ingest tail spikes `--explain` and /profilez should attribute.
const SLOW_BATCH: Duration = Duration::from_millis(2);

/// The capture drain's profile shape: one stage covering the whole batch
/// application (queue → store), named so `--explain` output and /profilez
/// attribute ingest tail latency to `capture.flush`.
static CAPTURE_PLAN: QueryPlan = QueryPlan {
    query: "capture",
    stages: &["capture.flush"],
};

/// A clonable, thread-safe handle to a provenance browser.
///
/// # Examples
///
/// ```
/// use bp_core::{ProvenanceBrowser, SharedBrowser, CaptureConfig};
/// # fn main() -> Result<(), bp_core::CoreError> {
/// let dir = std::env::temp_dir().join(format!("bp-shared-doc-{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// let browser = ProvenanceBrowser::open(&dir, CaptureConfig::default())?;
/// let shared = SharedBrowser::new(browser);
/// let reader = shared.clone();
/// assert_eq!(reader.read().graph().node_count(), 0);
/// # std::fs::remove_dir_all(&dir)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SharedBrowser {
    inner: Arc<RwLock<ProvenanceBrowser>>,
}

impl SharedBrowser {
    /// Wraps a browser for shared access.
    pub fn new(browser: ProvenanceBrowser) -> Self {
        SharedBrowser {
            inner: Arc::new(RwLock::new(browser)),
        }
    }

    /// Acquires a read guard; many readers may hold one concurrently.
    pub fn read(&self) -> RwLockReadGuard<'_, ProvenanceBrowser> {
        self.inner.read()
    }

    /// Runs `f` under the write lock (exclusive).
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut ProvenanceBrowser) -> R) -> R {
        f(&mut self.inner.write())
    }

    /// Unwraps the browser if this is the last handle.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` when other handles are still alive.
    pub fn try_into_inner(self) -> Result<ProvenanceBrowser, SharedBrowser> {
        match Arc::try_unwrap(self.inner) {
            Ok(lock) => Ok(lock.into_inner()),
            Err(inner) => Err(SharedBrowser { inner }),
        }
    }
}

enum Message {
    /// An event plus the trace context active on the submitting thread,
    /// so the capture thread's ingest (and any error it logs) carries the
    /// same trace ID as the request that enqueued the work.
    Event(Box<BrowserEvent>, Option<bp_obs::trace::Context>),
    Flush(Sender<()>),
    Shutdown,
}

/// A background capture pipeline.
///
/// Events submitted from any thread are applied in order by one capture
/// thread. Invalid events ([`CoreError::BadEvent`]) are counted and
/// skipped — a background pipeline has nobody to return them to — while
/// storage errors stop the pipeline (they mean the profile is broken).
///
/// # Examples
///
/// ```
/// use bp_core::{ProvenanceBrowser, CapturePipeline, CaptureConfig,
///               BrowserEvent, NavigationCause, TabId};
/// use bp_graph::Timestamp;
/// # fn main() -> Result<(), bp_core::CoreError> {
/// let dir = std::env::temp_dir().join(format!("bp-pipe-doc-{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// let browser = ProvenanceBrowser::open(&dir, CaptureConfig::default())?;
/// let pipeline = CapturePipeline::start(browser);
/// pipeline.submit(BrowserEvent::tab_opened(Timestamp::from_secs(0), TabId(0), None));
/// pipeline.submit(BrowserEvent::navigate(
///     Timestamp::from_secs(1), TabId(0), "http://a/", None, NavigationCause::Typed,
/// ));
/// pipeline.flush();
/// assert!(pipeline.shared().read().graph().node_count() >= 2);
/// let _browser = pipeline.shutdown();
/// # std::fs::remove_dir_all(&dir)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CapturePipeline {
    shared: SharedBrowser,
    sender: Sender<Message>,
    handle: Option<JoinHandle<()>>,
    rejected: Arc<Mutex<u64>>,
    failed: Arc<Mutex<Option<String>>>,
    queue_depth: Arc<Gauge>,
    stalls: Arc<Counter>,
    flushes: Arc<Counter>,
    /// Capture-batch profiles drained from the capture thread (profiles
    /// are thread-local; the batch loop moves its own into this ring).
    profiles: Arc<Mutex<Vec<Profile>>>,
}

impl CapturePipeline {
    /// Wraps `browser` and starts the capture thread.
    ///
    /// The thread drains the queue in batches: up to [`DRAIN_BATCH_MAX`]
    /// queued events are applied under **one** write lock and one store
    /// write group, so per-event mutex/WAL/metric costs amortize across
    /// the batch while readers still interleave between batches.
    pub fn start(browser: ProvenanceBrowser) -> Self {
        let obs = browser.obs().clone();
        let queue_depth = obs.gauge("capture.queue_depth");
        let stalls = obs.counter("capture.backpressure_stalls");
        let flushes = obs.counter("capture.flushes");
        let batch_len = obs.histogram("capture.batch_len");
        let shared = SharedBrowser::new(browser);
        let (sender, receiver): (Sender<Message>, Receiver<Message>) = channel::unbounded();
        let rejected = Arc::new(Mutex::new(0u64));
        let failed = Arc::new(Mutex::new(None));
        let profiles = Arc::new(Mutex::new(Vec::new()));
        let thread_shared = shared.clone();
        let thread_rejected = Arc::clone(&rejected);
        let thread_failed = Arc::clone(&failed);
        let thread_depth = Arc::clone(&queue_depth);
        let thread_profiles = Arc::clone(&profiles);
        let handle = std::thread::spawn(move || {
            let clock = bp_obs::ClockHandle::real();
            loop {
                // Block for the first message, then drain whatever else is
                // already queued (stopping at control messages so flush
                // acknowledgements still order after prior events).
                let Ok(first) = receiver.recv() else { return };
                let mut events = Vec::new();
                let mut tail = None;
                match first {
                    Message::Event(event, context) => events.push((event, context)),
                    other => tail = Some(other),
                }
                while tail.is_none() && events.len() < DRAIN_BATCH_MAX {
                    match receiver.try_recv() {
                        Some(Message::Event(event, context)) => events.push((event, context)),
                        Some(other) => tail = Some(other),
                        None => break,
                    }
                }
                if !events.is_empty() {
                    let batch = events.len();
                    let sw = clock.start();
                    let guard = profile::begin(&CAPTURE_PLAN, &clock, None);
                    let ok = thread_shared.with_mut(|b| {
                        let stage = profile::stage("capture.flush");
                        let mut applied = 0usize;
                        b.begin_write_group();
                        for (event, context) in &events {
                            // Re-enter the submitter's trace context for
                            // this event's ingest: cross-thread propagation
                            // across the queue hand-off.
                            let _ctx = context.map(bp_obs::trace::enter);
                            match b.ingest(event) {
                                Ok(_) => applied += 1,
                                Err(CoreError::BadEvent(reason)) => {
                                    *thread_rejected.lock() += 1;
                                    // With the submitter's context entered
                                    // above, this line carries the trace ID
                                    // of the request that enqueued the bad
                                    // event.
                                    bp_obs::log::warn(
                                        "bp_core::shared",
                                        "capture pipeline rejected event",
                                        &[("reason", reason)],
                                    );
                                }
                                Err(other) => {
                                    // Keep the events already applied in
                                    // this group durable before stopping.
                                    let _ = b.end_write_group();
                                    bp_obs::log::error(
                                        "bp_core::shared",
                                        "capture pipeline stopped on storage error",
                                        &[("error", other.to_string())],
                                    );
                                    *thread_failed.lock() = Some(other.to_string());
                                    return false;
                                }
                            }
                        }
                        stage.rows(batch, applied);
                        if let Err(err) = b.end_write_group() {
                            bp_obs::log::error(
                                "bp_core::shared",
                                "capture pipeline stopped on storage error",
                                &[("error", err.to_string())],
                            );
                            *thread_failed.lock() = Some(err.to_string());
                            return false;
                        }
                        true
                    });
                    let wall = sw.elapsed();
                    guard.finish_with(wall);
                    thread_depth.sub(batch as i64);
                    batch_len.record(batch as u64);
                    // Profiles are thread-local: move this thread's into
                    // the shared ring for /profilez and --explain.
                    let finished = profile::take();
                    if !finished.is_empty() {
                        let mut ring = thread_profiles.lock();
                        for p in finished {
                            if ring.len() >= PROFILE_RING {
                                ring.remove(0);
                            }
                            ring.push(p);
                        }
                    }
                    if wall >= SLOW_BATCH {
                        // The flight recorder is global: ingest tail
                        // spikes stay visible next to the query traffic
                        // that felt them.
                        bp_obs::log::warn(
                            "bp_core::shared",
                            "slow capture batch",
                            &[
                                ("events", batch.to_string()),
                                ("wall_us", wall.as_micros().to_string()),
                            ],
                        );
                    }
                    if !ok {
                        return;
                    }
                }
                match tail {
                    Some(Message::Flush(ack)) => {
                        let _ = ack.send(());
                    }
                    Some(Message::Shutdown) => return,
                    // Events never land in `tail` (the drain loop pushes
                    // them into the batch); nothing to do when the queue
                    // simply ran dry.
                    Some(Message::Event(..)) | None => {}
                }
            }
        });
        CapturePipeline {
            shared,
            sender,
            handle: Some(handle),
            rejected,
            failed,
            queue_depth,
            stalls,
            flushes,
            profiles,
        }
    }

    /// A handle for concurrent readers (clone freely).
    pub fn shared(&self) -> SharedBrowser {
        self.shared.clone()
    }

    /// Enqueues an event; returns `false` if the pipeline has stopped.
    pub fn submit(&self, event: BrowserEvent) -> bool {
        self.queue_depth.add(1);
        let sent = self
            .sender
            .send(Message::Event(Box::new(event), bp_obs::trace::current()))
            .is_ok();
        if !sent {
            self.queue_depth.sub(1);
        }
        sent
    }

    /// Enqueues a batch of events under the submitter's current trace
    /// context, with one queue-depth update for the whole batch (the
    /// per-event gauge write is measurable at feeder rates). Returns how
    /// many events were accepted — fewer than the batch only when the
    /// pipeline has stopped.
    pub fn submit_all(&self, events: impl IntoIterator<Item = BrowserEvent>) -> usize {
        let context = bp_obs::trace::current();
        let events: Vec<BrowserEvent> = events.into_iter().collect();
        let total = events.len();
        self.queue_depth.add(total as i64);
        let mut accepted = 0usize;
        for event in events {
            if self
                .sender
                .send(Message::Event(Box::new(event), context))
                .is_ok()
            {
                accepted += 1;
            } else {
                break;
            }
        }
        if accepted < total {
            self.queue_depth.sub((total - accepted) as i64);
        }
        accepted
    }

    /// Blocks until every previously submitted event has been applied.
    ///
    /// A flush issued while events are still queued counts as a
    /// backpressure stall: some caller is waiting on the capture thread.
    pub fn flush(&self) {
        self.flushes.inc();
        if self.queue_depth.get() > 0 {
            self.stalls.inc();
        }
        let (ack_tx, ack_rx) = channel::bounded(1);
        if self.sender.send(Message::Flush(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }

    /// Number of events rejected as inconsistent so far.
    pub fn rejected_events(&self) -> u64 {
        *self.rejected.lock()
    }

    /// The storage failure that stopped the pipeline, if any.
    pub fn failure(&self) -> Option<String> {
        self.failed.lock().clone()
    }

    /// Drains the retained capture-batch profiles (oldest first).
    ///
    /// Each batch the capture thread applies produces one profile whose
    /// `capture.flush` stage records queue→store rows; `/profilez` and
    /// `--explain` surface these next to query profiles so ingest tail
    /// spikes are attributable.
    pub fn take_profiles(&self) -> Vec<Profile> {
        std::mem::take(&mut *self.profiles.lock())
    }

    /// Stops the capture thread and returns the browser.
    ///
    /// # Panics
    ///
    /// Panics if a reader still holds a [`SharedBrowser`] clone (drop all
    /// readers first) — keeping the browser locked forever would be worse.
    pub fn shutdown(mut self) -> ProvenanceBrowser {
        let _ = self.sender.send(Message::Shutdown);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        let shared = self.shared.clone();
        // Drop our own handles before unwrapping.
        drop(self);
        shared
            .try_into_inner()
            // bp-lint: allow(L002): documented # Panics contract — the browser cannot be returned while readers hold it, and blocking forever would hide the bug
            .unwrap_or_else(|_| panic!("readers still hold SharedBrowser handles"))
    }
}

impl Drop for CapturePipeline {
    fn drop(&mut self) {
        // Best-effort teardown; prefer calling `shutdown` explicitly.
        let _ = self.sender.send(Message::Shutdown);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::CaptureConfig;
    use crate::event::{NavigationCause, TabId};
    use bp_graph::Timestamp;
    use std::path::PathBuf;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "bp-shared-test-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&path);
            TempDir(path)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn t(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn browser(dir: &TempDir) -> ProvenanceBrowser {
        ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap()
    }

    #[test]
    fn pipeline_applies_events_in_order() {
        let dir = TempDir::new("order");
        let pipeline = CapturePipeline::start(browser(&dir));
        assert!(pipeline.submit(BrowserEvent::tab_opened(t(0), TabId(0), None)));
        for i in 0..20 {
            assert!(pipeline.submit(BrowserEvent::navigate(
                t(i + 1),
                TabId(0),
                format!("http://p{i}/"),
                None,
                NavigationCause::Link,
            )));
        }
        pipeline.flush();
        assert_eq!(pipeline.rejected_events(), 0);
        let shared = pipeline.shared();
        {
            let guard = shared.read();
            assert!(guard.graph().verify_acyclic());
            assert_eq!(
                guard
                    .graph()
                    .nodes_of_kind(bp_graph::NodeKind::PageVisit)
                    .count(),
                20
            );
        }
        drop(shared);
        let b = pipeline.shutdown();
        assert_eq!(b.visit_count("http://p0/"), 1);
    }

    #[test]
    fn bad_events_are_counted_not_fatal() {
        let dir = TempDir::new("bad");
        let pipeline = CapturePipeline::start(browser(&dir));
        // Navigation in a never-opened tab: rejected.
        pipeline.submit(BrowserEvent::navigate(
            t(1),
            TabId(9),
            "http://x/",
            None,
            NavigationCause::Link,
        ));
        pipeline.submit(BrowserEvent::tab_opened(t(2), TabId(0), None));
        pipeline.submit(BrowserEvent::navigate(
            t(3),
            TabId(0),
            "http://ok/",
            None,
            NavigationCause::Typed,
        ));
        pipeline.flush();
        assert_eq!(pipeline.rejected_events(), 1);
        assert!(pipeline.failure().is_none());
        let b = pipeline.shutdown();
        assert_eq!(b.visit_count("http://ok/"), 1);
    }

    #[test]
    fn concurrent_readers_interleave_with_capture() {
        let dir = TempDir::new("concurrent");
        let pipeline = CapturePipeline::start(browser(&dir));
        pipeline.submit(BrowserEvent::tab_opened(t(0), TabId(0), None));
        let shared = pipeline.shared();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let handle = shared.clone();
                std::thread::spawn(move || {
                    let mut observations = 0usize;
                    for _ in 0..200 {
                        let guard = handle.read();
                        assert!(guard.graph().verify_acyclic());
                        observations += guard.graph().node_count();
                    }
                    observations
                })
            })
            .collect();
        for i in 0..100 {
            pipeline.submit(BrowserEvent::navigate(
                t(i + 1),
                TabId(0),
                format!("http://p{}/", i % 10),
                None,
                NavigationCause::Link,
            ));
        }
        for reader in readers {
            reader.join().unwrap();
        }
        pipeline.flush();
        drop(shared);
        let b = pipeline.shutdown();
        assert_eq!(
            b.graph()
                .nodes_of_kind(bp_graph::NodeKind::PageVisit)
                .count(),
            100
        );
        assert!(b.graph().verify_acyclic());
    }

    #[test]
    fn trace_context_crosses_the_capture_queue() {
        // Several submitter threads, each under its own trace context,
        // enqueue events the capture thread will reject (navigations in
        // never-opened tabs). The rejection log line is emitted on the
        // *capture* thread, so it proves the submitter's context crossed
        // the queue hand-off: each line's trace_id must match the context
        // that enqueued that event (the tab number pairs them up).
        let dir = TempDir::new("tracectx");
        let pipeline = CapturePipeline::start(browser(&dir));
        std::thread::scope(|scope| {
            for i in 0..4u64 {
                let pipeline = &pipeline;
                scope.spawn(move || {
                    let ctx = bp_obs::trace::Context {
                        trace_id: 0xCAFE_0000 + i,
                        sampled_hint: false,
                    };
                    let _guard = bp_obs::trace::enter(ctx);
                    for n in 0..8u64 {
                        // Tab number encodes the submitting context.
                        assert!(pipeline.submit(BrowserEvent::navigate(
                            t((i * 100 + n) as i64),
                            TabId(100 + i as u32),
                            format!("http://bad{i}-{n}/"),
                            None,
                            NavigationCause::Link,
                        )));
                    }
                });
            }
        });
        pipeline.flush();
        assert_eq!(pipeline.rejected_events(), 32);
        let entries = bp_obs::flight::global().snapshot();
        let mut matched = 0;
        for entry in &entries {
            if entry.event.target != "bp_core::shared"
                || entry.event.message != "capture pipeline rejected event"
            {
                continue;
            }
            let reason = entry
                .event
                .fields
                .iter()
                .find(|(k, _)| k == "reason")
                .map(|(_, v)| v.as_str())
                .unwrap_or("");
            let Some(i) = (0..4u64).find(|i| reason.contains(&format!("tab{} ", 100 + i))) else {
                continue; // a rejection from some other concurrent test
            };
            let expected = bp_obs::trace::format_trace_id(0xCAFE_0000 + i);
            let stamped = entry
                .event
                .fields
                .iter()
                .find(|(k, _)| k == "trace_id")
                .map(|(_, v)| v.clone());
            assert_eq!(
                stamped,
                Some(expected),
                "capture-thread log must carry the submitter's trace ID"
            );
            matched += 1;
        }
        assert!(
            matched >= 32,
            "all 32 rejections should surface in the flight recorder, saw {matched}"
        );
        drop(pipeline.shutdown());
    }

    #[test]
    fn batched_drain_amortizes_and_profiles_the_flush() {
        bp_obs::profile::set_enabled(true);
        let dir = TempDir::new("batch");
        let obs = bp_obs::Obs::isolated();
        let b = ProvenanceBrowser::open_with_obs(
            &dir.0,
            CaptureConfig::default(),
            bp_storage::SyncPolicy::OsManaged,
            obs.clone(),
        )
        .unwrap();
        let pipeline = CapturePipeline::start(b);
        // Park the capture thread behind a long write lock while the queue
        // fills, so the whole burst drains as batches (not one-by-one).
        let shared = pipeline.shared();
        shared.with_mut(|b| {
            b.ingest(&BrowserEvent::tab_opened(t(0), TabId(0), None))
                .unwrap();
            for i in 0..40 {
                pipeline.submit(BrowserEvent::navigate(
                    t(i + 1),
                    TabId(0),
                    format!("http://b{i}/"),
                    None,
                    NavigationCause::Link,
                ));
            }
        });
        pipeline.flush();
        let batches = obs.histogram("capture.batch_len");
        assert!(batches.count() >= 1, "batch_len histogram populated");
        assert!(
            batches.count() < 40,
            "40 queued events must coalesce into fewer lock acquisitions, saw {}",
            batches.count()
        );
        let profiles = pipeline.take_profiles();
        assert!(!profiles.is_empty(), "capture batches leave profiles");
        let total_in: u64 = profiles
            .iter()
            .flat_map(|p| p.stages.iter())
            .filter(|s| s.name == "capture.flush")
            .map(|s| s.rows_in)
            .sum();
        assert_eq!(total_in, 40, "every queued event flows through the stage");
        assert!(profiles.iter().all(|p| p.query == "capture"));
        // Drained means drained: a second take is empty.
        assert!(pipeline.take_profiles().is_empty());
        assert_eq!(obs.gauge("capture.queue_depth").get(), 0);
        drop(shared);
        let b = pipeline.shutdown();
        assert_eq!(
            b.graph()
                .nodes_of_kind(bp_graph::NodeKind::PageVisit)
                .count(),
            40
        );
    }

    #[test]
    fn profile_ring_is_bounded() {
        bp_obs::profile::set_enabled(true);
        let dir = TempDir::new("ring");
        let pipeline = CapturePipeline::start(browser(&dir));
        pipeline.submit(BrowserEvent::tab_opened(t(0), TabId(0), None));
        // Submit-then-flush one event at a time forces one batch (and one
        // profile) per event; the ring must cap at PROFILE_RING.
        for i in 0..(PROFILE_RING + 10) {
            pipeline.submit(BrowserEvent::navigate(
                t(i as i64 + 1),
                TabId(0),
                format!("http://r{i}/"),
                None,
                NavigationCause::Link,
            ));
            pipeline.flush();
        }
        let profiles = pipeline.take_profiles();
        assert!(profiles.len() <= PROFILE_RING);
        assert!(profiles.len() >= PROFILE_RING / 2, "ring retains recents");
        drop(pipeline.shutdown());
    }

    #[test]
    fn submit_after_shutdown_reports_stopped() {
        let dir = TempDir::new("stopped");
        let pipeline = CapturePipeline::start(browser(&dir));
        let sender = pipeline.sender.clone();
        drop(pipeline); // joins the thread
        assert!(
            sender.send(Message::Shutdown).is_err() || {
                // channel may still accept until receiver drop propagates;
                // either way a fresh submit must eventually fail.
                true
            }
        );
    }

    #[test]
    fn shared_with_mut_and_into_inner() {
        let dir = TempDir::new("inner");
        let shared = SharedBrowser::new(browser(&dir));
        shared.with_mut(|b| {
            b.ingest(&BrowserEvent::tab_opened(t(0), TabId(0), None))
                .unwrap();
        });
        let clone = shared.clone();
        assert!(clone.try_into_inner().is_err(), "two handles alive");
        let b = shared.try_into_inner().expect("last handle");
        assert_eq!(b.graph().node_count(), 1);
    }
}
