//! # bp-core — browser provenance capture
//!
//! The primary contribution of *The Case for Browser Provenance* (Margo &
//! Seltzer, TaPP '09), as a library: characterize browser history metadata
//! as **provenance** and store it in "a single, homogeneous provenance
//! graph store that describes and relates every kind of history object"
//! (§3.4).
//!
//! - [`BrowserEvent`]/[`EventKind`]/[`NavigationCause`] — the observable
//!   browser actions of the §3 taxonomy (links, typed locations, bookmarks,
//!   redirects, searches, forms, tabs, embeds, downloads);
//! - [`CaptureEngine`]/[`CaptureConfig`] — the capture layer mapping events
//!   to versioned nodes and typed derives-from edges, including everything
//!   today's browsers drop (§3.2's "second-class citizens":
//!   typed-location, new-tab, temporal-overlap, and close records);
//! - [`ProvenanceBrowser`] — the embedding facade: capture + durable store
//!   (`bp-storage`) + textual index (`bp-text`);
//! - [`eventlog`] — a plain-text serialization of event streams.
//!
//! The §2 use-case queries live in the companion crate `bp-query`.
//!
//! # Example: capture the §2.1 "rosebud" history
//!
//! ```
//! use bp_core::{ProvenanceBrowser, BrowserEvent, NavigationCause, TabId, CaptureConfig};
//! use bp_graph::Timestamp;
//!
//! # fn main() -> Result<(), bp_core::CoreError> {
//! let dir = std::env::temp_dir().join(format!("bp-core-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let mut browser = ProvenanceBrowser::open(&dir, CaptureConfig::default())?;
//! let t0 = Timestamp::from_secs(0);
//! browser.ingest(&BrowserEvent::tab_opened(t0, TabId(0), None))?;
//! browser.ingest(&BrowserEvent::navigate(
//!     t0.plus_micros(1_000_000), TabId(0), "http://se/?q=rosebud",
//!     Some("rosebud - Search"),
//!     NavigationCause::SearchQuery { query: "rosebud".into() },
//! ))?;
//! browser.ingest(&BrowserEvent::navigate(
//!     t0.plus_micros(2_000_000), TabId(0), "http://films/kane",
//!     Some("Citizen Kane"), NavigationCause::Link,
//! ))?;
//! // The search term is now literally in Citizen Kane's lineage.
//! assert!(browser.graph().verify_acyclic());
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod browser;
mod capture;
mod error;
mod event;
pub mod eventlog;
mod shared;

pub use browser::ProvenanceBrowser;
pub use capture::{CaptureConfig, CaptureEngine, CaptureOutcome};
pub use error::{CoreError, CoreResult};
pub use event::{BrowserEvent, EventKind, NavigationCause, TabId};
pub use shared::{CapturePipeline, SharedBrowser};

#[cfg(test)]
mod proptests {
    use super::*;
    use bp_graph::Timestamp;
    use proptest::prelude::*;
    use std::path::PathBuf;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "bp-core-prop-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&path);
            TempDir(path)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// Random but *session-shaped* event scripts: tabs open/close/navigate
    /// with arbitrary interleavings and causes.
    #[derive(Debug, Clone)]
    enum Act {
        Open(u8),
        OpenFrom(u8, u8),
        Close(u8),
        Nav(u8, u8, u8),
        Embed(u8, u8),
        Bookmark(u8),
        Download(u8, u8),
    }

    fn act_strategy() -> impl Strategy<Value = Act> {
        prop_oneof![
            2 => (0u8..4).prop_map(Act::Open),
            1 => (0u8..4, 0u8..4).prop_map(|(a, b)| Act::OpenFrom(a, b)),
            1 => (0u8..4).prop_map(Act::Close),
            5 => (0u8..4, 0u8..10, 0u8..8).prop_map(|(t, u, c)| Act::Nav(t, u, c)),
            1 => (0u8..4, 0u8..5).prop_map(|(t, u)| Act::Embed(t, u)),
            1 => (0u8..4).prop_map(Act::Bookmark),
            1 => (0u8..4, 0u8..5).prop_map(|(t, p)| Act::Download(t, p)),
        ]
    }

    fn cause_for(code: u8, url_pool: u8) -> NavigationCause {
        match code {
            0 => NavigationCause::Link,
            1 => NavigationCause::Typed,
            2 => NavigationCause::Reload,
            3 => NavigationCause::BackForward,
            4 => NavigationCause::SearchQuery {
                query: format!("query {url_pool}"),
            },
            5 => NavigationCause::FormSubmit {
                fields: format!("f={url_pool}"),
            },
            6 => NavigationCause::Redirect { status: 302 },
            _ => NavigationCause::Bookmark {
                bookmark_url: format!("http://p{url_pool}/"),
            },
        }
    }

    fn event_for(act: &Act, at: Timestamp) -> BrowserEvent {
        match act {
            Act::Open(t) => BrowserEvent::tab_opened(at, TabId(*t as u32), None),
            Act::OpenFrom(t, o) => {
                BrowserEvent::tab_opened(at, TabId(*t as u32), Some(TabId(*o as u32)))
            }
            Act::Close(t) => BrowserEvent::tab_closed(at, TabId(*t as u32)),
            Act::Nav(t, u, c) => BrowserEvent::navigate(
                at,
                TabId(*t as u32),
                format!("http://p{u}/"),
                Some(&format!("Page {u}")),
                cause_for(*c, *u),
            ),
            Act::Embed(t, u) => BrowserEvent::new(
                at,
                EventKind::EmbedLoad {
                    tab: TabId(*t as u32),
                    url: format!("http://cdn/{u}.js"),
                },
            ),
            Act::Bookmark(t) => BrowserEvent::new(
                at,
                EventKind::BookmarkAdd {
                    tab: TabId(*t as u32),
                    name: "bm".to_owned(),
                },
            ),
            Act::Download(t, p) => BrowserEvent::new(
                at,
                EventKind::Download {
                    tab: TabId(*t as u32),
                    path: format!("/tmp/f{p}"),
                    bytes: 100,
                },
            ),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Whatever the user does, the captured graph stays acyclic, every
        /// event either applies or is rejected (never panics), and the
        /// recovered-on-reopen graph matches the live one.
        #[test]
        fn capture_is_robust_and_recoverable(acts in prop::collection::vec(act_strategy(), 1..80)) {
            let dir = TempDir::new("robust");
            let mut browser =
                ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
            let mut clock = 0i64;
            let mut applied = 0usize;
            for act in &acts {
                clock += 1;
                let event = event_for(act, Timestamp::from_secs(clock));
                match browser.ingest(&event) {
                    Ok(_) => applied += 1,
                    Err(CoreError::BadEvent(_)) => {} // rejected cleanly
                    Err(other) => return Err(TestCaseError::fail(format!("{other}"))),
                }
                prop_assert!(browser.graph().verify_acyclic());
            }
            let nodes = browser.graph().node_count();
            let edges = browser.graph().edge_count();
            prop_assert!(applied == 0 || nodes > 0);
            drop(browser);
            let reopened = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
            prop_assert_eq!(reopened.graph().node_count(), nodes);
            prop_assert_eq!(reopened.graph().edge_count(), edges);
        }

        /// Event-log round trip: any event stream the simulator could emit
        /// formats to text and parses back identically.
        #[test]
        fn eventlog_roundtrips(acts in prop::collection::vec(act_strategy(), 0..50)) {
            let mut clock = 0i64;
            let events: Vec<BrowserEvent> = acts
                .iter()
                .map(|act| {
                    clock += 1;
                    event_for(act, Timestamp::from_secs(clock))
                })
                .collect();
            let text = eventlog::format_log(&events);
            let parsed = eventlog::parse_log(&text).unwrap();
            prop_assert_eq!(parsed, events);
        }
    }
}
