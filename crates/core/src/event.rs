//! The browser event model — what a provenance-aware browser's hooks emit.
//!
//! §3 inventories "common actions in modern browsers and the provenance
//! those actions generate". This module is that inventory as a type: every
//! value of [`BrowserEvent`] is one observable browser action, and the
//! capture layer ([`crate::capture`]) maps each to nodes and edges.
//!
//! The real paper instrumented Firefox 3; this reproduction replaces the
//! hook mechanism with an explicit event stream (emitted by `bp-sim` or
//! parsed from an event log), which is exactly the information the hooks
//! would deliver.

use bp_graph::Timestamp;
use core::fmt;

/// Identifier of a browser tab within a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TabId(pub u32);

impl fmt::Display for TabId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tab{}", self.0)
    }
}

/// Why a navigation happened — the superset of the HTTP referrer that
/// Firefox calls "transitions" (§3), extended with the §3.2 second-class
/// relationships.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NavigationCause {
    /// The user clicked a link on the tab's current page.
    Link,
    /// The user typed the URL (or accepted an autocompletion) in the
    /// location bar. Most browsers record no relationship for this (§3.2).
    Typed,
    /// The user clicked the bookmark identified by its URL.
    Bookmark {
        /// URL of the bookmark that was clicked.
        bookmark_url: String,
    },
    /// The server redirected from the tab's current page (automatic).
    Redirect {
        /// HTTP status of the redirect (301, 302, 303, 307, 308).
        status: u16,
    },
    /// The navigation is the results page of a web search.
    SearchQuery {
        /// The user's query string — a provenance node in its own right
        /// (§3.3).
        query: String,
    },
    /// The user submitted a form on the tab's current page.
    FormSubmit {
        /// Form field summary (e.g. "city=Napa&when=June") — "deep web"
        /// capture, §3.3.
        fields: String,
    },
    /// The user pressed back/forward, landing on `url` again.
    BackForward,
    /// The user reloaded the current page.
    Reload,
}

impl NavigationCause {
    /// Short label for logs and the event-log text format.
    pub fn label(&self) -> &'static str {
        match self {
            NavigationCause::Link => "link",
            NavigationCause::Typed => "typed",
            NavigationCause::Bookmark { .. } => "bookmark",
            NavigationCause::Redirect { .. } => "redirect",
            NavigationCause::SearchQuery { .. } => "search",
            NavigationCause::FormSubmit { .. } => "form",
            NavigationCause::BackForward => "back_forward",
            NavigationCause::Reload => "reload",
        }
    }
}

/// One observable browser action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A tab was opened. `opener` is the tab whose page spawned it (via
    /// target=_blank, middle-click, etc.); `None` for a fresh tab.
    TabOpened {
        /// The new tab.
        tab: TabId,
        /// The tab that opened it, if any.
        opener: Option<TabId>,
    },
    /// A tab was closed (closing its current page's interval, §3.2).
    TabClosed {
        /// The tab being closed.
        tab: TabId,
    },
    /// The browser navigated `tab` to `url`.
    Navigate {
        /// The tab navigating.
        tab: TabId,
        /// Destination URL.
        url: String,
        /// Page title, when known at navigation time.
        title: Option<String>,
        /// What caused the navigation.
        cause: NavigationCause,
    },
    /// A page embedded sub-content (frame/image/script) — an automatic
    /// link-like relationship (§3.2).
    EmbedLoad {
        /// The tab whose top-level page loaded the content.
        tab: TabId,
        /// URL of the embedded resource.
        url: String,
    },
    /// The user bookmarked the current page of `tab`.
    BookmarkAdd {
        /// The tab whose page is bookmarked.
        tab: TabId,
        /// Bookmark display name.
        name: String,
    },
    /// A file finished downloading from the current page of `tab`.
    Download {
        /// The tab the download originated from.
        tab: TabId,
        /// Local file path of the downloaded file.
        path: String,
        /// Size in bytes.
        bytes: u64,
    },
}

/// A time-stamped browser action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrowserEvent {
    /// When the action occurred.
    pub at: Timestamp,
    /// The action.
    pub kind: EventKind,
}

impl BrowserEvent {
    /// Creates an event.
    pub fn new(at: Timestamp, kind: EventKind) -> Self {
        BrowserEvent { at, kind }
    }

    /// Convenience: a navigation event.
    pub fn navigate(
        at: Timestamp,
        tab: TabId,
        url: impl Into<String>,
        title: Option<&str>,
        cause: NavigationCause,
    ) -> Self {
        BrowserEvent::new(
            at,
            EventKind::Navigate {
                tab,
                url: url.into(),
                title: title.map(str::to_owned),
                cause,
            },
        )
    }

    /// Convenience: open a tab.
    pub fn tab_opened(at: Timestamp, tab: TabId, opener: Option<TabId>) -> Self {
        BrowserEvent::new(at, EventKind::TabOpened { tab, opener })
    }

    /// Convenience: close a tab.
    pub fn tab_closed(at: Timestamp, tab: TabId) -> Self {
        BrowserEvent::new(at, EventKind::TabClosed { tab })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let t = Timestamp::from_secs(1);
        let e = BrowserEvent::navigate(t, TabId(0), "http://a/", Some("A"), NavigationCause::Link);
        match &e.kind {
            EventKind::Navigate {
                tab,
                url,
                title,
                cause,
            } => {
                assert_eq!(*tab, TabId(0));
                assert_eq!(url, "http://a/");
                assert_eq!(title.as_deref(), Some("A"));
                assert_eq!(*cause, NavigationCause::Link);
            }
            other => panic!("unexpected kind {other:?}"),
        }
        assert_eq!(e.at, t);
    }

    #[test]
    fn cause_labels_are_distinct() {
        let causes = [
            NavigationCause::Link,
            NavigationCause::Typed,
            NavigationCause::Bookmark {
                bookmark_url: String::new(),
            },
            NavigationCause::Redirect { status: 301 },
            NavigationCause::SearchQuery {
                query: String::new(),
            },
            NavigationCause::FormSubmit {
                fields: String::new(),
            },
            NavigationCause::BackForward,
            NavigationCause::Reload,
        ];
        let mut labels: Vec<&str> = causes.iter().map(NavigationCause::label).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), causes.len());
    }

    #[test]
    fn tab_display() {
        assert_eq!(TabId(4).to_string(), "tab4");
    }
}
