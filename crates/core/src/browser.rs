//! The `ProvenanceBrowser` facade: capture + durable store + text index.
//!
//! This type is the library a provenance-aware browser (or this repo's
//! simulator and CLI) embeds: feed it [`BrowserEvent`]s, and it maintains
//! the homogeneous provenance graph store *and* the textual index that the
//! §2 use-case queries start from.

use crate::capture::{CaptureConfig, CaptureEngine, CaptureOutcome};
use crate::error::CoreResult;
use crate::event::BrowserEvent;
use bp_graph::frozen::{FrozenGraph, FrozenHandle, ScoreCache};
use bp_graph::{NodeId, NodeKind, ProvenanceGraph};
use bp_obs::Obs;
use bp_storage::{ProvenanceStore, SizeReport, SyncPolicy};
use bp_text::InvertedIndex;
use std::path::Path;

/// Events per write group when bulk-ingesting a stream.
const INGEST_GROUP_MAX: usize = 256;

/// A provenance-aware browser backend.
///
/// # Examples
///
/// ```
/// use bp_core::{ProvenanceBrowser, BrowserEvent, NavigationCause, TabId, CaptureConfig};
/// use bp_graph::Timestamp;
///
/// # fn main() -> Result<(), bp_core::CoreError> {
/// let dir = std::env::temp_dir().join(format!("bp-browser-doc-{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// let mut browser = ProvenanceBrowser::open(&dir, CaptureConfig::default())?;
/// let t = Timestamp::from_secs(1);
/// browser.ingest(&BrowserEvent::tab_opened(t, TabId(0), None))?;
/// browser.ingest(&BrowserEvent::navigate(
///     t.plus_micros(1_000_000), TabId(0),
///     "http://films.example/kane", Some("Citizen Kane"), NavigationCause::Typed,
/// ))?;
/// let hits = browser.text_index().search("kane");
/// assert_eq!(hits.len(), 1);
/// # std::fs::remove_dir_all(&dir)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ProvenanceBrowser {
    engine: CaptureEngine,
    index: InvertedIndex,
    /// Lazily rebuilt CSR snapshot of the graph, invalidated by the graph
    /// epoch — relevance queries walk this instead of the live adjacency.
    frozen: FrozenHandle,
    /// Epoch-keyed converged-walk score cache shared by the ppr,
    /// personalize, and context query paths.
    score_cache: ScoreCache,
}

impl ProvenanceBrowser {
    /// Opens (or creates) the browser profile at `dir` with the given
    /// capture configuration, recovering any prior history and rebuilding
    /// the text index from it.
    ///
    /// # Errors
    ///
    /// Propagates store open/recovery failures.
    pub fn open(dir: impl AsRef<Path>, config: CaptureConfig) -> CoreResult<Self> {
        Self::open_with_policy(dir, config, SyncPolicy::OsManaged)
    }

    /// [`open`](Self::open) with an explicit durability policy.
    ///
    /// # Errors
    ///
    /// Propagates store open/recovery failures.
    pub fn open_with_policy(
        dir: impl AsRef<Path>,
        config: CaptureConfig,
        policy: SyncPolicy,
    ) -> CoreResult<Self> {
        Self::open_with_obs(dir, config, policy, Obs::global())
    }

    /// [`open`](Self::open) reporting into an explicit [`Obs`] handle.
    /// Tests asserting exact metric values pass [`Obs::isolated`].
    ///
    /// # Errors
    ///
    /// Propagates store open/recovery failures.
    pub fn open_with_obs(
        dir: impl AsRef<Path>,
        config: CaptureConfig,
        policy: SyncPolicy,
        obs: Obs,
    ) -> CoreResult<Self> {
        let store = ProvenanceStore::open_with_obs(dir, policy, obs)?;
        let engine = CaptureEngine::new(store, config);
        let mut browser = ProvenanceBrowser {
            engine,
            index: InvertedIndex::new(),
            frozen: FrozenHandle::new(),
            score_cache: ScoreCache::new(),
        };
        // Rebuild the text index from the recovered graph.
        let ids: Vec<NodeId> = browser.engine.store().graph().node_ids().collect();
        for id in ids {
            browser.index_node(id);
        }
        browser.publish_index_gauges();
        Ok(browser)
    }

    /// Feeds one browser event through capture and indexing.
    ///
    /// # Errors
    ///
    /// See [`CaptureEngine::handle`].
    pub fn ingest(&mut self, event: &BrowserEvent) -> CoreResult<CaptureOutcome> {
        let outcome = self.engine.handle(event)?;
        if let Some(id) = outcome.primary {
            self.index_node(id);
            // Inside a write group the gauges are published once at the
            // group boundary instead of per event.
            if !self.engine.store().group_active() {
                self.publish_index_gauges();
            }
        }
        Ok(outcome)
    }

    /// Starts a write group: WAL frames from subsequent ingests accumulate
    /// and reach disk as one grouped append (and one policy-driven sync) at
    /// [`end_write_group`](Self::end_write_group). Per-event gauge
    /// publication is deferred to the group boundary too. The batched
    /// capture drain wraps each queue batch in a group.
    pub fn begin_write_group(&mut self) {
        self.engine.store_mut().begin_write_group();
    }

    /// Commits the open write group to the log and publishes the deferred
    /// gauges. A no-op when no group is open.
    ///
    /// # Errors
    ///
    /// Propagates the grouped WAL append failure.
    pub fn end_write_group(&mut self) -> CoreResult<()> {
        self.engine.store_mut().commit_write_group()?;
        self.publish_index_gauges();
        Ok(())
    }

    /// Publishes the text-index size gauges (three atomic stores).
    fn publish_index_gauges(&self) {
        let obs = self.engine.store().obs();
        obs.gauge("text.docs").set(self.index.doc_count() as i64);
        obs.gauge("text.terms").set(self.index.term_count() as i64);
        obs.gauge("text.postings")
            .set(self.index.posting_count() as i64);
    }

    /// Feeds a whole event stream; stops at the first error.
    ///
    /// # Errors
    ///
    /// See [`ingest`](Self::ingest).
    pub fn ingest_all<'a>(
        &mut self,
        events: impl IntoIterator<Item = &'a BrowserEvent>,
    ) -> CoreResult<usize> {
        // One trace context per batch (reused when the caller already has
        // one): every log line the batch emits shares one trace ID.
        let _ctx = bp_obs::trace::ensure(&bp_obs::ClockHandle::real());
        self.begin_write_group();
        let mut n = 0;
        for event in events {
            if let Err(err) = self.ingest(event) {
                // Keep the events already applied durable before surfacing
                // the failure.
                let _ = self.end_write_group();
                return Err(err);
            }
            n += 1;
            // Bound the in-memory group (and the crash-loss window) on
            // long streams by committing every INGEST_GROUP_MAX events.
            if n % INGEST_GROUP_MAX == 0 {
                self.end_write_group()?;
                self.begin_write_group();
            }
        }
        self.end_write_group()?;
        Ok(n)
    }

    fn index_node(&mut self, id: NodeId) {
        let graph = self.engine.store().graph();
        let Ok(node) = graph.node(id) else { return };
        let doc = id.index();
        match node.kind() {
            NodeKind::PageVisit => {
                let mut text = node.key().to_owned();
                if let Some(title) = node.attrs().get_str("title") {
                    text.push(' ');
                    text.push_str(title);
                }
                self.index.add_document(doc, &text);
            }
            NodeKind::SearchTerm | NodeKind::FormEntry => {
                self.index.add_document(doc, node.key());
            }
            NodeKind::Download => {
                self.index.add_document(doc, node.key());
            }
            NodeKind::Bookmark => {
                let mut text = node.key().to_owned();
                if let Some(name) = node.attrs().get_str("name") {
                    text.push(' ');
                    text.push_str(name);
                }
                self.index.add_document(doc, &text);
            }
            // Page objects duplicate their visits' text; tabs carry none.
            NodeKind::Page | NodeKind::Tab => {}
        }
    }

    /// The provenance graph.
    pub fn graph(&self) -> &ProvenanceGraph {
        self.engine.store().graph()
    }

    /// The current CSR read-snapshot of the graph, rebuilt when the graph
    /// epoch has moved since the last call (any capture mutation bumps
    /// it). Cheap when current: one mutex probe and an `Arc` clone.
    pub fn frozen(&self) -> std::sync::Arc<FrozenGraph> {
        self.frozen.snapshot(self.engine.store().graph())
    }

    /// `(rebuild count, last rebuild µs)` of the frozen snapshot handle.
    pub fn frozen_stats(&self) -> (u64, u64) {
        (self.frozen.builds(), self.frozen.last_build_us())
    }

    /// The epoch-keyed walk-score cache shared by the relevance query
    /// paths. Entries self-invalidate when the graph epoch moves.
    pub fn score_cache(&self) -> &ScoreCache {
        &self.score_cache
    }

    /// The underlying durable store.
    pub fn store(&self) -> &ProvenanceStore {
        self.engine.store()
    }

    /// The capture engine (tab state, visit counts).
    pub fn engine(&self) -> &CaptureEngine {
        &self.engine
    }

    /// The textual index over history objects.
    pub fn text_index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The observability handle this browser (and its store) reports into.
    pub fn obs(&self) -> &Obs {
        self.engine.store().obs()
    }

    /// Number of visits recorded for `url`.
    pub fn visit_count(&self, url: &str) -> u32 {
        self.engine.visit_count(url)
    }

    /// Redacts a URL (or any history key) from the store and the text
    /// index (§4: "use browser provenance to increase user privacy").
    /// Returns how many history objects were redacted. Call
    /// [`snapshot`](Self::snapshot) afterwards to scrub the string from
    /// disk as well.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn redact(&mut self, key: &str) -> CoreResult<usize> {
        let nodes = self.engine.redact(key)?;
        for node in &nodes {
            self.index.remove_document(node.index());
        }
        self.publish_index_gauges();
        Ok(nodes.len())
    }

    /// Compacts the store into a snapshot.
    ///
    /// # Errors
    ///
    /// Propagates store I/O failures.
    pub fn snapshot(&mut self) -> CoreResult<()> {
        self.engine.store_mut().snapshot()?;
        Ok(())
    }

    /// Flushes the log to stable storage.
    ///
    /// # Errors
    ///
    /// Propagates store I/O failures.
    pub fn sync(&mut self) -> CoreResult<()> {
        self.engine.store_mut().sync()?;
        Ok(())
    }

    /// On-disk size accounting (experiment E1).
    pub fn size_report(&self) -> SizeReport {
        self.engine.store().size_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, NavigationCause, TabId};
    use bp_graph::Timestamp;
    use std::path::PathBuf;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "bp-browser-test-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&path);
            TempDir(path)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn t(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn browse(b: &mut ProvenanceBrowser) {
        b.ingest(&BrowserEvent::tab_opened(t(0), TabId(0), None))
            .unwrap();
        b.ingest(&BrowserEvent::navigate(
            t(1),
            TabId(0),
            "http://se/?q=rosebud",
            Some("rosebud - Search"),
            NavigationCause::SearchQuery {
                query: "rosebud".to_owned(),
            },
        ))
        .unwrap();
        b.ingest(&BrowserEvent::navigate(
            t(2),
            TabId(0),
            "http://films/kane",
            Some("Citizen Kane (1941)"),
            NavigationCause::Link,
        ))
        .unwrap();
        b.ingest(&BrowserEvent::new(
            t(3),
            EventKind::Download {
                tab: TabId(0),
                path: "/home/u/film-poster.jpg".to_owned(),
                bytes: 5000,
            },
        ))
        .unwrap();
    }

    #[test]
    fn ingest_updates_graph_and_index() {
        let dir = TempDir::new("ingest");
        let mut b = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
        browse(&mut b);
        assert!(b.graph().node_count() >= 5);
        // Title text is searchable.
        let hits = b.text_index().search("citizen");
        assert_eq!(hits.len(), 1);
        // Download path is searchable.
        assert_eq!(b.text_index().search("poster").len(), 1);
        // Search term node is indexed.
        assert!(!b.text_index().search("rosebud").is_empty());
        assert_eq!(b.visit_count("http://films/kane"), 1);
    }

    #[test]
    fn index_rebuilds_on_reopen() {
        let dir = TempDir::new("reopen");
        {
            let mut b = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
            browse(&mut b);
        }
        let b = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
        assert_eq!(b.text_index().search("citizen").len(), 1);
        assert_eq!(b.text_index().search("poster").len(), 1);
        assert_eq!(b.visit_count("http://films/kane"), 1);
    }

    #[test]
    fn ingest_all_counts_and_stops_on_error() {
        let dir = TempDir::new("ingest-all");
        let mut b = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
        let events = vec![
            BrowserEvent::tab_opened(t(0), TabId(0), None),
            BrowserEvent::navigate(t(1), TabId(0), "http://a/", None, NavigationCause::Typed),
        ];
        assert_eq!(b.ingest_all(&events).unwrap(), 2);
        let bad = vec![BrowserEvent::navigate(
            t(2),
            TabId(7),
            "http://b/",
            None,
            NavigationCause::Link,
        )];
        assert!(b.ingest_all(&bad).is_err());
    }

    #[test]
    fn snapshot_then_reopen() {
        let dir = TempDir::new("snapshot");
        {
            let mut b = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
            browse(&mut b);
            b.snapshot().unwrap();
            b.sync().unwrap();
        }
        let b = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
        assert!(b.graph().node_count() >= 5);
        assert!(b.size_report().snapshot_bytes > 0);
        assert_eq!(b.text_index().search("citizen").len(), 1);
    }

    #[test]
    fn redact_scrubs_search_results_and_reopen() {
        let dir = TempDir::new("redact");
        {
            let mut b = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
            browse(&mut b);
            assert_eq!(b.text_index().search("citizen").len(), 1);
            let n = b.redact("http://films/kane").unwrap();
            assert!(n >= 1, "visit (and page object) redacted");
            assert!(b.text_index().search("citizen").is_empty());
            assert!(b.text_index().search("kane").is_empty());
            // Other history is untouched.
            assert!(!b.text_index().search("rosebud").is_empty());
            assert_eq!(b.visit_count("http://films/kane"), 0);
            b.snapshot().unwrap();
        }
        // After reopen + reindex from the recovered graph, the redacted
        // content is still gone.
        let b = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
        assert!(b.text_index().search("citizen").is_empty());
        // And no trace on disk after the compaction.
        let mut disk = Vec::new();
        for entry in std::fs::read_dir(&dir.0).unwrap() {
            disk.extend(std::fs::read(entry.unwrap().path()).unwrap());
        }
        assert!(!disk
            .windows(b"films/kane".len())
            .any(|w| w == b"films/kane".as_slice()));
    }

    #[test]
    fn redact_unknown_key_is_noop() {
        let dir = TempDir::new("redact-noop");
        let mut b = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
        assert_eq!(b.redact("http://never/").unwrap(), 0);
    }

    #[test]
    fn frozen_snapshot_follows_capture_mutations() {
        let dir = TempDir::new("frozen");
        let mut b = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
        browse(&mut b);
        let a = b.frozen();
        let again = b.frozen();
        assert!(std::sync::Arc::ptr_eq(&a, &again), "stable epoch: cached");
        assert_eq!(b.frozen_stats().0, 1);
        assert_eq!(a.node_count(), b.graph().node_count());
        b.ingest(&BrowserEvent::navigate(
            t(4),
            TabId(0),
            "http://more/",
            None,
            NavigationCause::Link,
        ))
        .unwrap();
        let fresh = b.frozen();
        assert!(!std::sync::Arc::ptr_eq(&a, &fresh), "ingest invalidates");
        assert_eq!(b.frozen_stats().0, 2);
        assert_eq!(fresh.node_count(), b.graph().node_count());
    }

    #[test]
    fn engine_accessor_exposes_tabs() {
        let dir = TempDir::new("engine");
        let mut b = ProvenanceBrowser::open(&dir.0, CaptureConfig::default()).unwrap();
        b.ingest(&BrowserEvent::tab_opened(t(0), TabId(3), None))
            .unwrap();
        assert_eq!(b.engine().open_tabs(), vec![TabId(3)]);
        assert_eq!(b.engine().config(), &CaptureConfig::default());
    }
}
