//! Golden-output tests for bp-lint: fixture trees with known violations,
//! exact spans, exit codes, and fix-mode rewrites.
//!
//! The fixtures live in `crates/lint/fixtures/` — a directory name both
//! the checker and the fixer skip, so fixture files (which violate rules
//! on purpose) never pollute a real workspace run.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bp-lint"))
}

#[test]
fn violations_fixture_matches_golden_spans() {
    let report = bp_lint::check_root(&fixtures().join("violations")).unwrap();
    let got: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
    let golden = std::fs::read_to_string(fixtures().join("violations.expected")).unwrap();
    let want: Vec<&str> = golden
        .lines()
        .filter(|l| !l.starts_with("bp-lint:"))
        .collect();
    assert_eq!(got, want);
    // The justified directive suppresses exactly one finding, with its
    // reason carried through to the report.
    assert_eq!(report.suppressions.len(), 1);
    assert_eq!(report.suppressions[0].rule, "L002");
    assert!(
        report.suppressions[0]
            .reason
            .contains("justified suppression"),
        "{:?}",
        report.suppressions[0].reason
    );
    assert_eq!(report.files, 7);
}

#[test]
fn check_stdout_and_exit_code_on_violations() {
    let out = bin()
        .args(["check", "--root"])
        .arg(fixtures().join("violations"))
        .output()
        .expect("run bp-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    let golden = std::fs::read_to_string(fixtures().join("violations.expected")).unwrap();
    assert_eq!(stdout, golden);
}

#[test]
fn check_exits_zero_on_clean_tree() {
    let out = bin()
        .args(["check", "--root"])
        .arg(fixtures().join("clean"))
        .output()
        .expect("run bp-lint");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("bp-lint: clean — 1 files, 0 violations, 0 allowlisted"),
        "{stdout}"
    );
}

#[test]
fn exit_code_two_on_usage_and_io_errors() {
    let out = bin().args(["frobnicate"]).output().expect("run bp-lint");
    assert_eq!(out.status.code(), Some(2), "unknown subcommand");
    let out = bin()
        .args(["check", "--root", "/nonexistent/bp-lint-golden"])
        .output()
        .expect("run bp-lint");
    assert_eq!(out.status.code(), Some(2), "unreadable root");
    let out = bin()
        .args(["check", "--bogus-flag"])
        .output()
        .expect("run bp-lint");
    assert_eq!(out.status.code(), Some(2), "unknown flag");
}

#[test]
fn rules_subcommand_lists_every_rule() {
    let out = bin().args(["rules"]).output().expect("run bp-lint");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    for id in [
        "L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008", "L009", "L010",
    ] {
        assert!(stdout.contains(id), "missing {id} in: {stdout}");
    }
}

#[test]
fn fix_mode_rewrites_elapsed_only_sites() {
    // Copy the fixable tree into a scratch dir the fixer may mutate.
    let scratch = std::env::temp_dir().join(format!(
        "bp-lint-fix-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&scratch);
    let dst = scratch.join("crates/graph/src");
    std::fs::create_dir_all(&dst).unwrap();
    std::fs::copy(
        fixtures().join("fixable/crates/graph/src/timing.rs"),
        dst.join("timing.rs"),
    )
    .unwrap();

    let out = bin()
        .args(["fix", "--root"])
        .arg(&scratch)
        .output()
        .expect("run bp-lint");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("applied 1 fix(es)"), "{stdout}");
    assert!(stdout.contains("timing.rs:5: fixed:"), "{stdout}");

    let fixed = std::fs::read_to_string(dst.join("timing.rs")).unwrap();
    assert!(
        fixed.contains("let t0 = bp_obs::clock::ClockHandle::real().start();"),
        "{fixed}"
    );
    assert!(fixed.contains("t0.elapsed()"));
    // The duration_since pair is beyond the mechanical rewrite and stays.
    assert_eq!(fixed.matches("std::time::Instant::now()").count(), 2);
    let _ = std::fs::remove_dir_all(&scratch);
}

// ---------------------------------------------------------------------------
// Interprocedural tier (L007–L010)
// ---------------------------------------------------------------------------

#[test]
fn interproc_fixture_matches_golden() {
    let out = bin()
        .args(["check", "--root"])
        .arg(fixtures().join("interproc"))
        .output()
        .expect("run bp-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    let golden = std::fs::read_to_string(fixtures().join("interproc.expected")).unwrap();
    assert_eq!(stdout, golden);
    // The L007 diagnostic must carry the full call path of the bypass.
    assert!(
        stdout.contains("ProvenanceStore::touch_title -> ProvenanceStore::annotate"),
        "{stdout}"
    );
}

#[test]
fn interproc_allowed_fixture_is_clean() {
    let out = bin()
        .args(["check", "--root"])
        .arg(fixtures().join("interproc_allowed"))
        .output()
        .expect("run bp-lint");
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("bp-lint: clean — 4 files, 0 violations, 5 allowlisted"),
        "{stdout}"
    );
}

#[test]
fn sarif_export_contains_every_finding() {
    let scratch = std::env::temp_dir().join(format!(
        "bp-lint-sarif-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();
    let sarif_path = scratch.join("findings.sarif");
    let out = bin()
        .args(["check", "--root"])
        .arg(fixtures().join("interproc"))
        .arg("--sarif")
        .arg(&sarif_path)
        .output()
        .expect("run bp-lint");
    assert_eq!(out.status.code(), Some(1));
    let doc = std::fs::read_to_string(&sarif_path).unwrap();
    assert!(doc.contains("\"version\": \"2.1.0\""), "{doc}");
    // One result per golden violation, same rules.
    assert_eq!(doc.matches("\"ruleId\"").count(), 6, "{doc}");
    for id in ["L007", "L008", "L009", "L010"] {
        assert!(
            doc.contains(&format!("\"ruleId\": \"{id}\"")),
            "missing {id}: {doc}"
        );
    }
    // Driver metadata advertises the whole rule set.
    for id in ["L001", "L005", "L010"] {
        assert!(doc.contains(&format!("\"id\": \"{id}\"")), "{doc}");
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

// ---------------------------------------------------------------------------
// Determinism, cache, fix idempotence
// ---------------------------------------------------------------------------

#[test]
fn output_is_identical_across_thread_counts() {
    for fixture in ["violations", "interproc"] {
        let run = |jobs: &str| {
            let out = bin()
                .args(["check", "--no-cache", "--jobs", jobs, "--root"])
                .arg(fixtures().join(fixture))
                .output()
                .expect("run bp-lint");
            String::from_utf8(out.stdout).unwrap()
        };
        let single = run("1");
        for jobs in ["2", "8"] {
            assert_eq!(single, run(jobs), "{fixture} differs at --jobs {jobs}");
        }
    }
}

#[test]
fn warm_cache_run_is_hit_and_identical() {
    let scratch = std::env::temp_dir().join(format!(
        "bp-lint-cache-int-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&scratch);
    copy_tree(&fixtures().join("interproc"), &scratch);
    // The cache only persists into an existing target/ dir.
    std::fs::create_dir_all(scratch.join("target")).unwrap();

    let run = || {
        let out = bin()
            .args(["check", "--timing", "--root"])
            .arg(&scratch)
            .output()
            .expect("run bp-lint");
        (
            String::from_utf8(out.stdout).unwrap(),
            String::from_utf8(out.stderr).unwrap(),
        )
    };
    let (cold_out, cold_err) = run();
    assert!(cold_err.contains("(0 cached)"), "{cold_err}");
    assert!(scratch.join("target/bp-lint/cache").is_file());
    let (warm_out, warm_err) = run();
    assert!(warm_err.contains("(4 cached)"), "{warm_err}");
    assert_eq!(cold_out, warm_out, "cache changed the findings");
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn fix_is_idempotent_over_the_fixture_tree() {
    let scratch = std::env::temp_dir().join(format!(
        "bp-lint-fixpoint-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&scratch);
    copy_tree(&fixtures().join("fixable"), &scratch);

    let fix = || {
        let out = bin()
            .args(["fix", "--root"])
            .arg(&scratch)
            .output()
            .expect("run bp-lint");
        assert_eq!(out.status.code(), Some(0));
        String::from_utf8(out.stdout).unwrap()
    };
    fix();
    let after_first = snapshot_tree(&scratch);
    let second = fix();
    assert!(second.contains("applied 0 fix(es)"), "{second}");
    assert_eq!(
        after_first,
        snapshot_tree(&scratch),
        "second fix pass changed bytes"
    );
    let _ = std::fs::remove_dir_all(&scratch);
}

/// Recursively copies a fixture tree into `dst`.
fn copy_tree(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.path().is_dir() {
            copy_tree(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// Collects (relative path, bytes) for every file under `root`, sorted.
fn snapshot_tree(root: &Path) -> Vec<(String, Vec<u8>)> {
    fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, Vec<u8>)>) {
        for entry in std::fs::read_dir(dir).unwrap() {
            let entry = entry.unwrap();
            let path = entry.path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .unwrap()
                    .to_string_lossy()
                    .into_owned();
                out.push((rel, std::fs::read(&path).unwrap()));
            }
        }
    }
    let mut out = Vec::new();
    walk(root, root, &mut out);
    out.sort();
    out
}
