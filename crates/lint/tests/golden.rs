//! Golden-output tests for bp-lint: fixture trees with known violations,
//! exact spans, exit codes, and fix-mode rewrites.
//!
//! The fixtures live in `crates/lint/fixtures/` — a directory name both
//! the checker and the fixer skip, so fixture files (which violate rules
//! on purpose) never pollute a real workspace run.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bp-lint"))
}

#[test]
fn violations_fixture_matches_golden_spans() {
    let report = bp_lint::check_root(&fixtures().join("violations")).unwrap();
    let got: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
    let golden = std::fs::read_to_string(fixtures().join("violations.expected")).unwrap();
    let want: Vec<&str> = golden
        .lines()
        .filter(|l| !l.starts_with("bp-lint:"))
        .collect();
    assert_eq!(got, want);
    // The justified directive suppresses exactly one finding, with its
    // reason carried through to the report.
    assert_eq!(report.suppressions.len(), 1);
    assert_eq!(report.suppressions[0].rule, "L002");
    assert!(
        report.suppressions[0]
            .reason
            .contains("justified suppression"),
        "{:?}",
        report.suppressions[0].reason
    );
    assert_eq!(report.files, 7);
}

#[test]
fn check_stdout_and_exit_code_on_violations() {
    let out = bin()
        .args(["check", "--root"])
        .arg(fixtures().join("violations"))
        .output()
        .expect("run bp-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    let golden = std::fs::read_to_string(fixtures().join("violations.expected")).unwrap();
    assert_eq!(stdout, golden);
}

#[test]
fn check_exits_zero_on_clean_tree() {
    let out = bin()
        .args(["check", "--root"])
        .arg(fixtures().join("clean"))
        .output()
        .expect("run bp-lint");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("bp-lint: clean — 1 files, 0 violations, 0 allowlisted"),
        "{stdout}"
    );
}

#[test]
fn exit_code_two_on_usage_and_io_errors() {
    let out = bin().args(["frobnicate"]).output().expect("run bp-lint");
    assert_eq!(out.status.code(), Some(2), "unknown subcommand");
    let out = bin()
        .args(["check", "--root", "/nonexistent/bp-lint-golden"])
        .output()
        .expect("run bp-lint");
    assert_eq!(out.status.code(), Some(2), "unreadable root");
    let out = bin()
        .args(["check", "--bogus-flag"])
        .output()
        .expect("run bp-lint");
    assert_eq!(out.status.code(), Some(2), "unknown flag");
}

#[test]
fn rules_subcommand_lists_every_rule() {
    let out = bin().args(["rules"]).output().expect("run bp-lint");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    for id in ["L001", "L002", "L003", "L004", "L005", "L006"] {
        assert!(stdout.contains(id), "missing {id} in: {stdout}");
    }
}

#[test]
fn fix_mode_rewrites_elapsed_only_sites() {
    // Copy the fixable tree into a scratch dir the fixer may mutate.
    let scratch = std::env::temp_dir().join(format!(
        "bp-lint-fix-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&scratch);
    let dst = scratch.join("crates/graph/src");
    std::fs::create_dir_all(&dst).unwrap();
    std::fs::copy(
        fixtures().join("fixable/crates/graph/src/timing.rs"),
        dst.join("timing.rs"),
    )
    .unwrap();

    let out = bin()
        .args(["fix", "--root"])
        .arg(&scratch)
        .output()
        .expect("run bp-lint");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("applied 1 fix(es)"), "{stdout}");
    assert!(stdout.contains("timing.rs:5: fixed:"), "{stdout}");

    let fixed = std::fs::read_to_string(dst.join("timing.rs")).unwrap();
    assert!(
        fixed.contains("let t0 = bp_obs::clock::ClockHandle::real().start();"),
        "{fixed}"
    );
    assert!(fixed.contains("t0.elapsed()"));
    // The duration_since pair is beyond the mechanical rewrite and stays.
    assert_eq!(fixed.matches("std::time::Instant::now()").count(), 2);
    let _ = std::fs::remove_dir_all(&scratch);
}
