//! Cross-crate call graph over the [`crate::symbols`] summaries.
//!
//! Resolution is name-based and deliberately conservative: `self.m(…)`
//! binds to the enclosing impl type, `Type::f(…)` and `module::f(…)`
//! bind through their qualifier, unqualified calls prefer same-file then
//! same-crate then workspace-unique free functions, and non-`self`
//! method calls only link when the workspace defines at most three
//! methods of that name (over-approximating is fine for reachability;
//! under-approximating would silence real findings, so the ambiguity cap
//! is the one documented soundness trade). Calls named `lock`/`read`/
//! `write` with no arguments are lock primitives, never call edges —
//! linking `filter.read()` to a workspace method called `read` would
//! poison both the lock analysis and the reachability sets.

use crate::symbols::{CallFact, FileSummary, FnSummary};
use std::collections::HashMap;

/// Zero-argument method names treated as lock acquisitions, not calls.
pub const LOCK_PRIMITIVES: &[&str] = &["lock", "read", "write"];

/// Identifies one function: (file index, index within that file's fns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FnKey {
    /// Index into the program's file list.
    pub file: usize,
    /// Index into that file's `fns`.
    pub idx: usize,
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Callee node index.
    pub to: usize,
    /// Index of the originating [`CallFact`] in the caller's `calls`.
    pub call_idx: usize,
}

/// The whole-program call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Dense node list; index = node id.
    pub nodes: Vec<FnKey>,
    /// Outgoing edges per node.
    pub edges: Vec<Vec<Edge>>,
    node_of: HashMap<FnKey, usize>,
}

impl CallGraph {
    /// Node id for a (file, fn) pair.
    pub fn node(&self, file: usize, idx: usize) -> Option<usize> {
        self.node_of.get(&FnKey { file, idx }).copied()
    }

    /// The [`FnSummary`] behind node `n`.
    pub fn fn_at<'a>(&self, files: &'a [FileSummary], n: usize) -> &'a FnSummary {
        let k = self.nodes[n];
        &files[k.file].fns[k.idx]
    }

    /// The file behind node `n`.
    pub fn file_at<'a>(&self, files: &'a [FileSummary], n: usize) -> &'a FileSummary {
        &files[self.nodes[n].file]
    }

    /// `true` when node `n` is test-only code.
    pub fn is_test(&self, files: &[FileSummary], n: usize) -> bool {
        let k = self.nodes[n];
        files[k.file].whole_file_test || files[k.file].fns[k.idx].is_test
    }
}

/// The whole-program view handed to the interprocedural rules: every
/// file's fact summary, the call graph over them, and the metric
/// registry contents (when the workspace has one).
#[derive(Debug, Default)]
pub struct Program {
    /// File summaries in path order.
    pub files: Vec<FileSummary>,
    /// The call graph over `files`.
    pub graph: CallGraph,
    /// Raw contents of `METRICS.registry`, if the file exists.
    pub registry: Option<String>,
}

impl Program {
    /// Builds the program view (and its call graph) from summaries.
    pub fn new(files: Vec<FileSummary>, registry: Option<String>) -> Self {
        let graph = build(&files);
        Program {
            files,
            graph,
            registry,
        }
    }
}

/// Builds the call graph for a set of file summaries.
pub fn build(files: &[FileSummary]) -> CallGraph {
    let mut g = CallGraph::default();
    for (fi, f) in files.iter().enumerate() {
        for si in 0..f.fns.len() {
            let key = FnKey { file: fi, idx: si };
            g.node_of.insert(key, g.nodes.len());
            g.nodes.push(key);
        }
    }

    // Name indexes over non-test functions (real code never calls into
    // test scaffolding).
    let mut methods: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut typed: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
    let mut free: HashMap<&str, Vec<usize>> = HashMap::new();
    for (n, key) in g.nodes.iter().enumerate() {
        let file = &files[key.file];
        let f = &file.fns[key.idx];
        if f.is_test || file.whole_file_test {
            continue;
        }
        if f.impl_type.is_empty() {
            free.entry(f.name.as_str()).or_default().push(n);
        } else {
            typed
                .entry((f.impl_type.as_str(), f.name.as_str()))
                .or_default()
                .push(n);
            methods.entry(f.name.as_str()).or_default().push(n);
        }
    }

    let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); g.nodes.len()];
    for (n, key) in g.nodes.iter().enumerate() {
        let file = &files[key.file];
        let caller = &file.fns[key.idx];
        if caller.is_test || file.whole_file_test {
            continue;
        }
        for (ci, call) in caller.calls.iter().enumerate() {
            let targets = resolve(call, caller, key.file, files, &g, &methods, &typed, &free);
            for t in targets {
                if !edges[n].iter().any(|e| e.to == t) {
                    edges[n].push(Edge {
                        to: t,
                        call_idx: ci,
                    });
                }
            }
        }
    }
    g.edges = edges;
    g
}

/// Restricts candidates to the caller's crate when possible.
fn prefer_same_crate(
    cands: &[usize],
    crate_name: &str,
    files: &[FileSummary],
    g: &CallGraph,
) -> Vec<usize> {
    let same: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&t| files[g.nodes[t].file].crate_name == crate_name)
        .collect();
    if same.is_empty() {
        cands.to_vec()
    } else {
        same
    }
}

#[allow(clippy::too_many_arguments)]
fn resolve(
    call: &CallFact,
    caller: &FnSummary,
    caller_file: usize,
    files: &[FileSummary],
    g: &CallGraph,
    methods: &HashMap<&str, Vec<usize>>,
    typed: &HashMap<(&str, &str), Vec<usize>>,
    free: &HashMap<&str, Vec<usize>>,
) -> Vec<usize> {
    let name = call.name.as_str();
    let crate_name = files[caller_file].crate_name.as_str();
    if call.is_method {
        if call.argc == 0 && LOCK_PRIMITIVES.contains(&name) {
            return Vec::new();
        }
        if call.recv == "self" {
            if !caller.impl_type.is_empty() {
                if let Some(c) = typed.get(&(caller.impl_type.as_str(), name)) {
                    return prefer_same_crate(c, crate_name, files, g);
                }
            }
            return Vec::new();
        }
        // Non-self method: only link when the name is rare enough to be
        // unambiguous-ish; std-container method names have no workspace
        // definition and fall out naturally.
        match methods.get(name) {
            Some(c) if (1..=3).contains(&c.len()) => c.clone(),
            _ => Vec::new(),
        }
    } else {
        let qual = call.qual.as_str();
        if qual == "Self" {
            if !caller.impl_type.is_empty() {
                if let Some(c) = typed.get(&(caller.impl_type.as_str(), name)) {
                    return prefer_same_crate(c, crate_name, files, g);
                }
            }
            return Vec::new();
        }
        if !qual.is_empty() && !matches!(qual, "crate" | "super" | "self") {
            // Type::assoc_fn
            if let Some(c) = typed.get(&(qual, name)) {
                return prefer_same_crate(c, crate_name, files, g);
            }
            // module::free_fn — match free fns living in a file named
            // after the module.
            if let Some(c) = free.get(name) {
                let by_module: Vec<usize> = c
                    .iter()
                    .copied()
                    .filter(|&t| {
                        let p = &files[g.nodes[t].file].rel_path;
                        p.ends_with(&format!("/{qual}.rs")) || p.contains(&format!("/{qual}/"))
                    })
                    .collect();
                if !by_module.is_empty() {
                    return prefer_same_crate(&by_module, crate_name, files, g);
                }
            }
            return Vec::new();
        }
        // Unqualified (or crate::/self::-qualified) free call.
        if let Some(c) = free.get(name) {
            let same_file: Vec<usize> = c
                .iter()
                .copied()
                .filter(|&t| g.nodes[t].file == caller_file)
                .collect();
            if !same_file.is_empty() {
                return same_file;
            }
            let same_crate: Vec<usize> = c
                .iter()
                .copied()
                .filter(|&t| files[g.nodes[t].file].crate_name == crate_name)
                .collect();
            if !same_crate.is_empty() {
                return same_crate;
            }
            if c.len() == 1 {
                return c.clone();
            }
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::LineMap;
    use crate::engine::match_delims;
    use crate::lexer::lex;
    use crate::parser::parse_file;
    use crate::symbols::summarize;

    fn file(path: &str, src: &str) -> FileSummary {
        let lexed = lex(src);
        let close = match_delims(&lexed, src);
        let ast = parse_file(src, &lexed, &close);
        summarize(path, &ast, &LineMap::new(src))
    }

    fn callees(g: &CallGraph, files: &[FileSummary], name: &str) -> Vec<String> {
        let n = (0..g.nodes.len())
            .find(|&n| g.fn_at(files, n).name == name)
            .unwrap();
        let mut out: Vec<String> = g.edges[n]
            .iter()
            .map(|e| g.fn_at(files, e.to).display())
            .collect();
        out.sort();
        out
    }

    #[test]
    fn self_methods_and_free_fns_resolve() {
        let files = vec![
            file(
                "crates/storage/src/store.rs",
                r#"
                impl ProvenanceStore {
                    pub fn add_node(&mut self) { self.commit(); }
                    fn commit(&mut self) { self.append_frame(); helper(); }
                    fn append_frame(&mut self) { self.wal.append(p); }
                }
                fn helper() {}
                "#,
            ),
            file(
                "crates/query/src/slo.rs",
                r#"
                pub fn observe(obs: &Obs) {}
                impl Deadline {
                    pub fn start() -> Self { Deadline }
                }
                "#,
            ),
            file(
                "crates/query/src/context.rs",
                r#"
                pub fn search(b: &ProvenanceBrowser) {
                    let d = crate::slo::Deadline::start();
                    crate::slo::observe(obs);
                }
                "#,
            ),
        ];
        let g = build(&files);
        assert_eq!(
            callees(&g, &files, "add_node"),
            vec!["ProvenanceStore::commit"]
        );
        assert_eq!(
            callees(&g, &files, "commit"),
            vec!["ProvenanceStore::append_frame", "helper"]
        );
        // `self.wal.append(p)` is a non-self method with no workspace
        // definition — no edge.
        assert!(callees(&g, &files, "append_frame").is_empty());
        // Cross-crate: Deadline::start via type qual, observe via module
        // qual.
        assert_eq!(
            callees(&g, &files, "search"),
            vec!["Deadline::start", "observe"]
        );
    }

    #[test]
    fn lock_primitives_never_link() {
        let files = vec![file(
            "crates/cli/src/serve.rs",
            r#"
            impl SharedBrowser {
                pub fn read(&self) -> Guard { self.inner.read() }
            }
            fn handler(state: &State) {
                let b = state.shared.read();
            }
            "#,
        )];
        let g = build(&files);
        assert!(callees(&g, &files, "handler").is_empty());
    }

    #[test]
    fn test_fns_do_not_resolve() {
        let files = vec![file(
            "crates/core/src/lib.rs",
            r#"
            pub fn real() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { real(); }
            }
            "#,
        )];
        let g = build(&files);
        let t = (0..g.nodes.len())
            .find(|&n| g.fn_at(&files, n).name == "t")
            .unwrap();
        assert!(g.edges[t].is_empty());
        assert!(g.is_test(&files, t));
    }
}
