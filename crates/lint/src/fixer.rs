//! `bp-lint fix`: mechanically safe rewrites.
//!
//! Only one rewrite is implemented, because it is the only one that is
//! provably behavior-preserving from the token stream alone:
//!
//! * **L001, elapsed-only stopwatch**: a `let t = Instant::now();` whose
//!   binding is used *exclusively* as `t.elapsed()` is rewritten to
//!   `let t = bp_obs::clock::ClockHandle::real().start();` —
//!   [`bp_obs` `Stopwatch`] has a compatible `elapsed()` returning
//!   `Duration`. Any other use of the binding (comparison, `duration_since`,
//!   arithmetic) disqualifies the site and it is left for a human.
//!
//! Everything else (error-path design for L002/L003, container choice for
//! L004, deadline plumbing for L005) needs judgment and stays manual.

use crate::engine::{build_context, FileContext};
use crate::lexer::{lex, TokenKind};
use std::path::Path;

/// One applied (or planned) rewrite.
#[derive(Debug)]
pub struct Fix {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the rewritten expression.
    pub line: u32,
    /// What was done.
    pub note: String,
}

/// Computes the fixed source for one file, or `None` when nothing applies.
pub fn fix_source(rel_path: &str, src: &str) -> Option<(String, Vec<Fix>)> {
    if rel_path == "crates/obs/src/clock.rs" {
        return None;
    }
    let lexed = lex(src);
    let ctx = build_context(rel_path, src, &lexed);
    let sites = elapsed_only_clock_sites(&ctx);
    if sites.is_empty() {
        return None;
    }
    // Rewrite back-to-front so earlier byte offsets stay valid.
    let mut out = src.to_string();
    let mut fixes = Vec::new();
    for &(start, end) in sites.iter().rev() {
        out.replace_range(start..end, "bp_obs::clock::ClockHandle::real().start()");
        fixes.push(Fix {
            path: rel_path.to_string(),
            line: ctx.lines.line_of(start),
            note:
                "Instant::now() -> ClockHandle::real().start() (binding only used via .elapsed())"
                    .to_string(),
        });
    }
    fixes.reverse();
    Some((out, fixes))
}

/// Finds byte ranges of `[std::time::]Instant::now()` expressions bound by
/// a `let` whose binding is used only as `NAME.elapsed()`.
fn elapsed_only_clock_sites(ctx: &FileContext<'_>) -> Vec<(usize, usize)> {
    let toks = &ctx.lexed.tokens;
    let n = toks.len();
    let mut sites = Vec::new();
    for i in 0..n {
        if ctx.text(i) != "let" || ctx.in_test(toks[i].start) {
            continue;
        }
        // let NAME = <expr ending in Instant::now()> ;
        let mut j = i + 1;
        if ctx.is(j, "mut") {
            j += 1;
        }
        if j >= n || toks[j].kind != TokenKind::Ident {
            continue;
        }
        let name_idx = j;
        if !ctx.is(j + 1, "=") {
            continue;
        }
        // Expression must be exactly [std :: time ::] Instant :: now ( ) ;
        let mut e = j + 2;
        let expr_start_tok = e;
        if ctx.is(e, "std") && ctx.is(e + 1, ":") && ctx.is(e + 2, ":") && ctx.is(e + 3, "time") {
            e += 6; // std : : time : :
        } else if ctx.is(e, "time") && ctx.is(e + 1, ":") && ctx.is(e + 2, ":") {
            e += 3;
        }
        if !(ctx.is(e, "Instant")
            && ctx.is(e + 1, ":")
            && ctx.is(e + 2, ":")
            && ctx.is(e + 3, "now")
            && ctx.is(e + 4, "(")
            && ctx.is(e + 5, ")")
            && ctx.is(e + 6, ";"))
        {
            continue;
        }
        if elapsed_only(ctx, name_idx, e + 6) {
            sites.push((toks[expr_start_tok].start, toks[e + 5].end));
        }
    }
    sites
}

/// `true` when every later use of the binding at `name_idx` is
/// `NAME . elapsed (`. The scan stops at the enclosing function's end and
/// at a shadowing `let NAME`, so rebound stopwatches are judged
/// independently.
fn elapsed_only(ctx: &FileContext<'_>, name_idx: usize, from: usize) -> bool {
    let toks = &ctx.lexed.tokens;
    let name = ctx.text(name_idx);
    let scope_end = ctx
        .fns
        .iter()
        .filter_map(|f| f.body)
        .find(|&(bs, be)| bs < name_idx && name_idx < be)
        .map_or(toks.len(), |(_, be)| be);
    let mut uses = 0usize;
    // The scan looks behind and ahead of `k`; an index loop is the
    // clearer idiom here.
    #[allow(clippy::needless_range_loop)]
    for k in from..scope_end {
        if toks[k].kind != TokenKind::Ident || ctx.text(k) != name {
            continue;
        }
        // A shadowing `let NAME` ends the original binding's scope.
        if k > 0
            && (ctx.is(k - 1, "let") || (ctx.is(k - 1, "mut") && k > 1 && ctx.is(k - 2, "let")))
        {
            break;
        }
        // Skip field-access / path positions (`x.NAME`, `a::NAME`).
        if k > 0 && (ctx.is(k - 1, ".") || ctx.is(k - 1, ":")) {
            continue;
        }
        uses += 1;
        if !(ctx.is(k + 1, ".") && ctx.is(k + 2, "elapsed") && ctx.is(k + 3, "(")) {
            return false;
        }
    }
    uses > 0
}

/// Applies fixes under `root`; returns the rewrites performed.
pub fn fix_tree(root: &Path) -> std::io::Result<Vec<Fix>> {
    let mut all = Vec::new();
    let mut files = Vec::new();
    collect(root, root, &mut files)?;
    files.sort();
    for rel in files {
        let abs = root.join(&rel);
        let src = std::fs::read_to_string(&abs)?;
        let rel_unix = rel.to_string_lossy().replace('\\', "/");
        if let Some((fixed, fixes)) = fix_source(&rel_unix, &src) {
            std::fs::write(&abs, fixed)?;
            all.extend(fixes);
        }
    }
    Ok(all)
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "shims" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rewrites_elapsed_only_binding() {
        let src = "fn f() {\n    let started = std::time::Instant::now();\n    work();\n    record(started.elapsed());\n}\nfn work() {}\nfn record(_d: std::time::Duration) {}\n";
        let (fixed, fixes) = fix_source("crates/graph/src/x.rs", src).unwrap();
        assert_eq!(fixes.len(), 1);
        assert!(fixed.contains("let started = bp_obs::clock::ClockHandle::real().start();"));
        assert!(!fixed.contains("Instant::now"));
    }

    #[test]
    fn leaves_non_elapsed_uses_alone() {
        let src = "fn f() {\n    let t0 = std::time::Instant::now();\n    let t1 = std::time::Instant::now();\n    let _d = t1.duration_since(t0);\n}\n";
        assert!(fix_source("crates/graph/src/x.rs", src).is_none());
    }

    #[test]
    fn never_touches_clock_rs_or_tests() {
        let src = "fn f() { let t = std::time::Instant::now(); g(t.elapsed()); }\nfn g(_d: std::time::Duration) {}\n";
        assert!(fix_source("crates/obs/src/clock.rs", src).is_none());
        let test_src = "#[cfg(test)]\nmod tests {\n    fn f() { let t = std::time::Instant::now(); let _ = t.elapsed(); }\n}\n";
        assert!(fix_source("crates/graph/src/x.rs", test_src).is_none());
    }
}
