//! The rule engine: walks workspace `.rs` files, builds a per-file
//! [`FileContext`] (tokens plus just enough structure — test regions,
//! function extents, brace matching), runs every rule, and applies
//! `bp-lint: allow(...)` suppressions.

use crate::diag::{parse_directive, Directive, LineMap, Severity, Suppression, Violation};
use crate::lexer::{lex, Lexed, TokenKind};
use crate::rules::{all_rules, Rule};
use std::path::{Path, PathBuf};

/// One function found in a file.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The function's name.
    pub name: String,
    /// Whether a `pub` modifier precedes it (any visibility restriction
    /// counts: `pub(crate)` is still an API the rest of the crate calls).
    pub is_pub: bool,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token range (inclusive start, exclusive end) of the parameter list
    /// including the parentheses.
    pub params: (usize, usize),
    /// Token range of the body including braces; `None` for bodiless
    /// declarations (traits, extern blocks).
    pub body: Option<(usize, usize)>,
}

/// Everything a rule gets to look at for one file.
pub struct FileContext<'a> {
    /// Workspace-relative path with unix separators.
    pub rel_path: String,
    /// The file's source text.
    pub src: &'a str,
    /// Lexer output (tokens + comments).
    pub lexed: &'a Lexed,
    /// Offset → line/col mapping.
    pub lines: LineMap,
    /// Byte ranges of test-only code (`#[cfg(test)]` modules, `#[test]`
    /// functions). Files under `tests/` or `benches/` are wholly test.
    pub test_regions: Vec<(usize, usize)>,
    /// `true` when the entire file is test/bench scaffolding.
    pub whole_file_test: bool,
    /// Functions in source order.
    pub fns: Vec<FnInfo>,
    /// For each token index of an opening `(`/`[`/`{`, the index of its
    /// matching closer (usize::MAX when unbalanced).
    pub match_close: Vec<usize>,
}

impl<'a> FileContext<'a> {
    /// The text of token `i`.
    pub fn text(&self, i: usize) -> &'a str {
        let t = &self.lexed.tokens[i];
        &self.src[t.start..t.end]
    }

    /// `true` when token `i` exists and its text equals `s`.
    pub fn is(&self, i: usize, s: &str) -> bool {
        i < self.lexed.tokens.len() && self.text(i) == s
    }

    /// `true` when the byte offset falls inside a test region.
    pub fn in_test(&self, offset: usize) -> bool {
        self.whole_file_test
            || self
                .test_regions
                .iter()
                .any(|&(s, e)| offset >= s && offset < e)
    }

    /// Builds a violation at token `i`.
    pub fn violation(&self, rule: &'static str, i: usize, message: String) -> Violation {
        let (line, col) = self.lines.locate(self.lexed.tokens[i].start);
        Violation {
            rule,
            path: self.rel_path.clone(),
            line,
            col,
            message,
            severity: Severity::Error,
        }
    }
}

/// Builds the match table for `(`/`[`/`{` tokens.
fn match_delims(ctx_tokens: &Lexed, src: &str) -> Vec<usize> {
    let toks = &ctx_tokens.tokens;
    let mut close = vec![usize::MAX; toks.len()];
    let mut stack: Vec<(usize, u8)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match src.as_bytes()[t.start] {
            b'(' | b'[' | b'{' => stack.push((i, src.as_bytes()[t.start])),
            b')' => pop_matching(&mut stack, &mut close, i, b'('),
            b']' => pop_matching(&mut stack, &mut close, i, b'['),
            b'}' => pop_matching(&mut stack, &mut close, i, b'{'),
            _ => {}
        }
    }
    close
}

fn pop_matching(stack: &mut Vec<(usize, u8)>, close: &mut [usize], i: usize, open: u8) {
    // Pop until the matching opener kind; tolerates unbalanced input.
    while let Some((j, k)) = stack.pop() {
        if k == open {
            close[j] = i;
            return;
        }
    }
}

/// Scans tokens for `#[cfg(test)] mod`, `#[test] fn`, and all `fn` items.
fn scan_structure(ctx: &mut FileContext<'_>) {
    let toks = &ctx.lexed.tokens;
    let n = toks.len();
    let mut i = 0usize;
    let mut pending_cfg_test = false;
    let mut pending_test_fn = false;
    while i < n {
        let t = ctx.text(i);
        // Attribute: #[...] or #![...]
        if t == "#" && (ctx.is(i + 1, "[") || (ctx.is(i + 1, "!") && ctx.is(i + 2, "["))) {
            let open = if ctx.is(i + 1, "[") { i + 1 } else { i + 2 };
            let close = ctx.match_close[open];
            if close == usize::MAX {
                i += 1;
                continue;
            }
            let mut has_cfg = false;
            let mut has_test = false;
            for j in open + 1..close {
                match ctx.text(j) {
                    "cfg" => has_cfg = true,
                    "test" => has_test = true,
                    _ => {}
                }
            }
            if has_cfg && has_test {
                pending_cfg_test = true;
            } else if has_test {
                pending_test_fn = true;
            }
            i = close + 1;
            continue;
        }
        if t == "mod" {
            if i + 2 < n && ctx.is(i + 2, "{") {
                let close = ctx.match_close[i + 2];
                if pending_cfg_test && close != usize::MAX {
                    ctx.test_regions.push((toks[i + 2].start, toks[close].end));
                }
            }
            pending_cfg_test = false;
            pending_test_fn = false;
            i += 1;
            continue;
        }
        if t == "fn" && toks[i].kind == TokenKind::Ident {
            let info = scan_fn(ctx, i);
            if let Some(info) = info {
                if pending_test_fn || pending_cfg_test {
                    if let Some((bs, be)) = info.body {
                        ctx.test_regions.push((toks[bs].start, toks[be].end));
                    }
                }
                let resume = info.params.1.max(i + 1);
                ctx.fns.push(info);
                pending_cfg_test = false;
                pending_test_fn = false;
                i = resume;
                continue;
            }
            pending_cfg_test = false;
            pending_test_fn = false;
            i += 1;
            continue;
        }
        // Any other token consumes pending attributes (e.g. `#[cfg(test)]
        // use …;`), except modifiers that can sit between an attribute and
        // the `fn`/`mod` it decorates.
        if !matches!(
            t,
            "pub"
                | "("
                | ")"
                | "crate"
                | "super"
                | "self"
                | "in"
                | "const"
                | "unsafe"
                | "async"
                | "extern"
        ) && toks[i].kind != TokenKind::Str
        {
            pending_cfg_test = false;
            pending_test_fn = false;
        }
        i += 1;
    }
}

/// Parses one `fn` item starting at token `at` (the `fn` keyword).
fn scan_fn(ctx: &FileContext<'_>, at: usize) -> Option<FnInfo> {
    let toks = &ctx.lexed.tokens;
    let n = toks.len();
    let name_idx = at + 1;
    if name_idx >= n || toks[name_idx].kind != TokenKind::Ident {
        return None;
    }
    let name = ctx.text(name_idx).to_string();
    // Skip generics between name and params.
    let mut j = name_idx + 1;
    if ctx.is(j, "<") {
        let mut depth = 0i32;
        while j < n {
            match ctx.text(j) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                "(" | "[" => {
                    // Skip delimited groups inside generics wholesale.
                    let c = ctx.match_close[j];
                    if c == usize::MAX {
                        return None;
                    }
                    j = c;
                }
                _ => {}
            }
            j += 1;
        }
    }
    if !ctx.is(j, "(") {
        return None;
    }
    let params_close = ctx.match_close[j];
    if params_close == usize::MAX {
        return None;
    }
    let params = (j, params_close + 1);
    // After params: return type / where clause, then `{` body or `;`.
    let mut k = params_close + 1;
    let mut body = None;
    while k < n {
        match ctx.text(k) {
            ";" => break,
            "{" => {
                let c = ctx.match_close[k];
                if c != usize::MAX {
                    body = Some((k, c));
                }
                break;
            }
            "(" | "[" => {
                let c = ctx.match_close[k];
                if c == usize::MAX {
                    break;
                }
                k = c + 1;
            }
            _ => k += 1,
        }
    }
    // Visibility: walk back over modifiers for a `pub`.
    let mut is_pub = false;
    let mut back = at;
    for _ in 0..8 {
        if back == 0 {
            break;
        }
        back -= 1;
        match ctx.text(back) {
            "pub" => {
                is_pub = true;
                break;
            }
            "const" | "unsafe" | "async" | "extern" | ")" | "(" | "crate" | "super" | "self"
            | "in" => {}
            _ => break,
        }
    }
    Some(FnInfo {
        name,
        is_pub,
        fn_tok: at,
        params,
        body,
    })
}

/// Builds a [`FileContext`] from source text.
pub fn build_context<'a>(rel_path: &str, src: &'a str, lexed: &'a Lexed) -> FileContext<'a> {
    let match_close = match_delims(lexed, src);
    let whole_file_test = rel_path.contains("/tests/") || rel_path.contains("/benches/");
    let mut ctx = FileContext {
        rel_path: rel_path.to_string(),
        src,
        lexed,
        lines: LineMap::new(src),
        test_regions: Vec::new(),
        whole_file_test,
        fns: Vec::new(),
        match_close,
    };
    scan_structure(&mut ctx);
    ctx
}

/// The outcome of checking a tree.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Violations that survived suppression, in path/line order.
    pub violations: Vec<Violation>,
    /// Allowlisted (suppressed) findings with their reasons.
    pub suppressions: Vec<Suppression>,
    /// Number of files scanned.
    pub files: usize,
}

impl CheckReport {
    /// `true` when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The engine: a rule set plus walking/suppression logic.
pub struct Engine {
    rules: Vec<Box<dyn Rule>>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// An engine with every built-in rule.
    pub fn new() -> Self {
        Engine { rules: all_rules() }
    }

    /// Checks one file's source, applying directives.
    pub fn check_file(&self, rel_path: &str, src: &str, report: &mut CheckReport) {
        let lexed = lex(src);
        let ctx = build_context(rel_path, src, &lexed);
        let directives = collect_directives(&ctx);

        let mut raw: Vec<Violation> = Vec::new();
        // Directive misuse is itself a violation: reasons are mandatory.
        for d in &directives {
            if d.reason.is_empty() {
                let rules = d.rules.join(", ");
                raw.push(Violation {
                    rule: "L000",
                    path: ctx.rel_path.clone(),
                    line: d.line,
                    col: 1,
                    message: format!(
                        "allow({rules}) directive is missing its mandatory reason \
                         (write `// bp-lint: allow({rules}): <why this site is safe>`)"
                    ),
                    severity: Severity::Error,
                });
            }
        }
        for rule in &self.rules {
            raw.extend(rule.check(&ctx));
        }
        raw.sort_by_key(|v| (v.line, v.col));
        for v in raw {
            let suppressed = v.rule != "L000"
                && directives.iter().any(|d| {
                    !d.reason.is_empty()
                        && d.target_line == v.line
                        && d.rules.iter().any(|r| r == v.rule)
                });
            if suppressed {
                let reason = directives
                    .iter()
                    .find(|d| d.target_line == v.line && d.rules.iter().any(|r| r == v.rule))
                    .map(|d| d.reason.clone())
                    .unwrap_or_default();
                report.suppressions.push(Suppression {
                    rule: v.rule.to_string(),
                    path: v.path.clone(),
                    line: v.line,
                    reason,
                });
            } else {
                report.violations.push(v);
            }
        }
        report.files += 1;
    }

    /// Walks `root` and checks every eligible `.rs` file.
    pub fn check_tree(&self, root: &Path) -> std::io::Result<CheckReport> {
        let mut report = CheckReport::default();
        let mut files = Vec::new();
        collect_rs_files(root, root, &mut files)?;
        files.sort();
        for rel in files {
            let abs = root.join(&rel);
            let src = std::fs::read_to_string(&abs)?;
            let rel_unix = rel.to_string_lossy().replace('\\', "/");
            self.check_file(&rel_unix, &src, &mut report);
        }
        Ok(report)
    }
}

/// Collects directives and computes each one's target line.
fn collect_directives(ctx: &FileContext<'_>) -> Vec<Directive> {
    let mut out = Vec::new();
    for c in &ctx.lexed.comments {
        let body = &ctx.src[c.start..c.end];
        if let Some((rules, reason)) = parse_directive(body) {
            let line = ctx.lines.line_of(c.start);
            // If any code token shares the comment's line, the directive
            // covers that line; a directive alone on its line covers the
            // next line.
            let has_code_on_line = ctx
                .lexed
                .tokens
                .iter()
                .any(|t| ctx.lines.line_of(t.start) == line && t.start < c.start);
            let target_line = if has_code_on_line { line } else { line + 1 };
            out.push(Directive {
                rules,
                reason,
                line,
                target_line,
            });
        }
    }
    out
}

/// Recursively collects workspace-relative `.rs` paths under `dir`.
///
/// Skips `target/`, `shims/` (vendored stand-ins for external crates —
/// their API shape is dictated by the crates they mirror), hidden
/// directories, and bp-lint's own test fixtures (which violate rules on
/// purpose).
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "shims" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Convenience: checks the tree at `root` with the default engine.
pub fn check_root(root: &Path) -> std::io::Result<CheckReport> {
    Engine::new().check_tree(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_src(path: &str, src: &str) -> CheckReport {
        let mut report = CheckReport::default();
        Engine::new().check_file(path, src, &mut report);
        report
    }

    #[test]
    fn cfg_test_module_is_a_test_region() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\n";
        let lexed = lex(src);
        let ctx = build_context("crates/storage/src/x.rs", src, &lexed);
        let unwrap_at = src.find("unwrap").unwrap();
        assert!(ctx.in_test(unwrap_at));
        assert!(!ctx.in_test(src.find("fn a").unwrap()));
    }

    #[test]
    fn fns_are_extracted_with_visibility() {
        let src = "pub fn alpha(x: u32) -> u32 { x }\nfn beta() {}\npub(crate) fn gamma<T: Ord>(t: T) {}\n";
        let lexed = lex(src);
        let ctx = build_context("crates/query/src/x.rs", src, &lexed);
        let names: Vec<(&str, bool)> = ctx
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.is_pub))
            .collect();
        assert_eq!(
            names,
            vec![("alpha", true), ("beta", false), ("gamma", true)]
        );
    }

    #[test]
    fn directive_without_reason_is_l000() {
        let src = "// bp-lint: allow(L002)\nfn f() {}\n";
        let report = check_src("crates/core/src/x.rs", src);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "L000");
    }

    #[test]
    fn directive_suppresses_next_line_with_reason() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // bp-lint: allow(L002): test of suppression\n    x.unwrap()\n}\n";
        let report = check_src("crates/core/src/x.rs", src);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.suppressions.len(), 1);
        assert_eq!(report.suppressions[0].reason, "test of suppression");
    }

    #[test]
    fn directive_on_same_line_suppresses() {
        let src =
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // bp-lint: allow(L002): demo\n}\n";
        let report = check_src("crates/core/src/x.rs", src);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }
}
