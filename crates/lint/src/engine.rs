//! The rule engine: walks workspace `.rs` files, builds a per-file
//! [`FileContext`] (tokens plus just enough structure — test regions,
//! function extents, brace matching), runs every rule, and applies
//! `bp-lint: allow(...)` suppressions.
//!
//! `check_tree_with` is the full v2 pipeline: per-file analysis fans out
//! across worker threads (pure per file, so order does not matter), a
//! content-hash cache skips unchanged files on warm runs, the per-file
//! fact summaries feed the whole-program [`Program`] that the
//! interprocedural rules (L007–L010) run over, and the combined findings
//! are sorted into canonical (path, line, col, rule) order so output is
//! identical regardless of thread scheduling.

use crate::cache::{self, Cache, CachedFile};
use crate::callgraph::Program;
use crate::diag::{
    parse_directive, Directive, LineMap, Severity, StaleAllow, Suppression, Violation,
};
use crate::lexer::{lex, Lexed, TokenKind};
use crate::parser::parse_file;
use crate::rules::{all_global_rules, all_rules, Rule, METRICS_REGISTRY_PATH};
use crate::symbols::{summarize, FileSummary};
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// One function found in a file.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The function's name.
    pub name: String,
    /// Whether a `pub` modifier precedes it (any visibility restriction
    /// counts: `pub(crate)` is still an API the rest of the crate calls).
    pub is_pub: bool,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token range (inclusive start, exclusive end) of the parameter list
    /// including the parentheses.
    pub params: (usize, usize),
    /// Token range of the body including braces; `None` for bodiless
    /// declarations (traits, extern blocks).
    pub body: Option<(usize, usize)>,
}

/// Everything a rule gets to look at for one file.
pub struct FileContext<'a> {
    /// Workspace-relative path with unix separators.
    pub rel_path: String,
    /// The file's source text.
    pub src: &'a str,
    /// Lexer output (tokens + comments).
    pub lexed: &'a Lexed,
    /// Offset → line/col mapping.
    pub lines: LineMap,
    /// Byte ranges of test-only code (`#[cfg(test)]` modules, `#[test]`
    /// functions). Files under `tests/` or `benches/` are wholly test.
    pub test_regions: Vec<(usize, usize)>,
    /// `true` when the entire file is test/bench scaffolding.
    pub whole_file_test: bool,
    /// Functions in source order.
    pub fns: Vec<FnInfo>,
    /// For each token index of an opening `(`/`[`/`{`, the index of its
    /// matching closer (usize::MAX when unbalanced).
    pub match_close: Vec<usize>,
}

impl<'a> FileContext<'a> {
    /// The text of token `i`.
    pub fn text(&self, i: usize) -> &'a str {
        let t = &self.lexed.tokens[i];
        &self.src[t.start..t.end]
    }

    /// `true` when token `i` exists and its text equals `s`.
    pub fn is(&self, i: usize, s: &str) -> bool {
        i < self.lexed.tokens.len() && self.text(i) == s
    }

    /// `true` when the byte offset falls inside a test region.
    pub fn in_test(&self, offset: usize) -> bool {
        self.whole_file_test
            || self
                .test_regions
                .iter()
                .any(|&(s, e)| offset >= s && offset < e)
    }

    /// Builds a violation at token `i`.
    pub fn violation(&self, rule: &'static str, i: usize, message: String) -> Violation {
        let (line, col) = self.lines.locate(self.lexed.tokens[i].start);
        Violation {
            rule,
            path: self.rel_path.clone(),
            line,
            col,
            message,
            severity: Severity::Error,
        }
    }
}

/// Builds the match table for `(`/`[`/`{` tokens.
pub(crate) fn match_delims(ctx_tokens: &Lexed, src: &str) -> Vec<usize> {
    let toks = &ctx_tokens.tokens;
    let mut close = vec![usize::MAX; toks.len()];
    let mut stack: Vec<(usize, u8)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match src.as_bytes()[t.start] {
            b'(' | b'[' | b'{' => stack.push((i, src.as_bytes()[t.start])),
            b')' => pop_matching(&mut stack, &mut close, i, b'('),
            b']' => pop_matching(&mut stack, &mut close, i, b'['),
            b'}' => pop_matching(&mut stack, &mut close, i, b'{'),
            _ => {}
        }
    }
    close
}

fn pop_matching(stack: &mut Vec<(usize, u8)>, close: &mut [usize], i: usize, open: u8) {
    // Pop until the matching opener kind; tolerates unbalanced input.
    while let Some((j, k)) = stack.pop() {
        if k == open {
            close[j] = i;
            return;
        }
    }
}

/// Scans tokens for `#[cfg(test)] mod`, `#[test] fn`, and all `fn` items.
fn scan_structure(ctx: &mut FileContext<'_>) {
    let toks = &ctx.lexed.tokens;
    let n = toks.len();
    let mut i = 0usize;
    let mut pending_cfg_test = false;
    let mut pending_test_fn = false;
    while i < n {
        let t = ctx.text(i);
        // Attribute: #[...] or #![...]
        if t == "#" && (ctx.is(i + 1, "[") || (ctx.is(i + 1, "!") && ctx.is(i + 2, "["))) {
            let open = if ctx.is(i + 1, "[") { i + 1 } else { i + 2 };
            let close = ctx.match_close[open];
            if close == usize::MAX {
                i += 1;
                continue;
            }
            let mut has_cfg = false;
            let mut has_test = false;
            for j in open + 1..close {
                match ctx.text(j) {
                    "cfg" => has_cfg = true,
                    "test" => has_test = true,
                    _ => {}
                }
            }
            if has_cfg && has_test {
                pending_cfg_test = true;
            } else if has_test {
                pending_test_fn = true;
            }
            i = close + 1;
            continue;
        }
        if t == "mod" {
            if i + 2 < n && ctx.is(i + 2, "{") {
                let close = ctx.match_close[i + 2];
                if pending_cfg_test && close != usize::MAX {
                    ctx.test_regions.push((toks[i + 2].start, toks[close].end));
                }
            }
            pending_cfg_test = false;
            pending_test_fn = false;
            i += 1;
            continue;
        }
        if t == "fn" && toks[i].kind == TokenKind::Ident {
            let info = scan_fn(ctx, i);
            if let Some(info) = info {
                if pending_test_fn || pending_cfg_test {
                    if let Some((bs, be)) = info.body {
                        ctx.test_regions.push((toks[bs].start, toks[be].end));
                    }
                }
                let resume = info.params.1.max(i + 1);
                ctx.fns.push(info);
                pending_cfg_test = false;
                pending_test_fn = false;
                i = resume;
                continue;
            }
            pending_cfg_test = false;
            pending_test_fn = false;
            i += 1;
            continue;
        }
        // Any other token consumes pending attributes (e.g. `#[cfg(test)]
        // use …;`), except modifiers that can sit between an attribute and
        // the `fn`/`mod` it decorates.
        if !matches!(
            t,
            "pub"
                | "("
                | ")"
                | "crate"
                | "super"
                | "self"
                | "in"
                | "const"
                | "unsafe"
                | "async"
                | "extern"
        ) && toks[i].kind != TokenKind::Str
        {
            pending_cfg_test = false;
            pending_test_fn = false;
        }
        i += 1;
    }
}

/// Parses one `fn` item starting at token `at` (the `fn` keyword).
fn scan_fn(ctx: &FileContext<'_>, at: usize) -> Option<FnInfo> {
    let toks = &ctx.lexed.tokens;
    let n = toks.len();
    let name_idx = at + 1;
    if name_idx >= n || toks[name_idx].kind != TokenKind::Ident {
        return None;
    }
    let name = ctx.text(name_idx).to_string();
    // Skip generics between name and params.
    let mut j = name_idx + 1;
    if ctx.is(j, "<") {
        let mut depth = 0i32;
        while j < n {
            match ctx.text(j) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                "(" | "[" => {
                    // Skip delimited groups inside generics wholesale.
                    let c = ctx.match_close[j];
                    if c == usize::MAX {
                        return None;
                    }
                    j = c;
                }
                _ => {}
            }
            j += 1;
        }
    }
    if !ctx.is(j, "(") {
        return None;
    }
    let params_close = ctx.match_close[j];
    if params_close == usize::MAX {
        return None;
    }
    let params = (j, params_close + 1);
    // After params: return type / where clause, then `{` body or `;`.
    let mut k = params_close + 1;
    let mut body = None;
    while k < n {
        match ctx.text(k) {
            ";" => break,
            "{" => {
                let c = ctx.match_close[k];
                if c != usize::MAX {
                    body = Some((k, c));
                }
                break;
            }
            "(" | "[" => {
                let c = ctx.match_close[k];
                if c == usize::MAX {
                    break;
                }
                k = c + 1;
            }
            _ => k += 1,
        }
    }
    // Visibility: walk back over modifiers for a `pub`.
    let mut is_pub = false;
    let mut back = at;
    for _ in 0..8 {
        if back == 0 {
            break;
        }
        back -= 1;
        match ctx.text(back) {
            "pub" => {
                is_pub = true;
                break;
            }
            "const" | "unsafe" | "async" | "extern" | ")" | "(" | "crate" | "super" | "self"
            | "in" => {}
            _ => break,
        }
    }
    Some(FnInfo {
        name,
        is_pub,
        fn_tok: at,
        params,
        body,
    })
}

/// Builds a [`FileContext`] from source text.
pub fn build_context<'a>(rel_path: &str, src: &'a str, lexed: &'a Lexed) -> FileContext<'a> {
    let match_close = match_delims(lexed, src);
    let whole_file_test = rel_path.contains("/tests/") || rel_path.contains("/benches/");
    let mut ctx = FileContext {
        rel_path: rel_path.to_string(),
        src,
        lexed,
        lines: LineMap::new(src),
        test_regions: Vec::new(),
        whole_file_test,
        fns: Vec::new(),
        match_close,
    };
    scan_structure(&mut ctx);
    ctx
}

/// The outcome of per-file analysis: everything `check_tree_with` needs
/// downstream, and exactly what the incremental cache stores.
#[derive(Debug, Clone)]
pub struct FileAnalysis {
    /// Raw (pre-suppression) per-file violations, including L000, in
    /// (line, col, rule) order.
    pub raw: Vec<Violation>,
    /// Allowlist directives found in the file.
    pub directives: Vec<Directive>,
    /// The interprocedural fact summary.
    pub summary: FileSummary,
}

/// `Some(start)` when timing is enabled.
fn stopwatch(enabled: bool) -> Option<std::time::Instant> {
    // bp-lint: allow(L001): the --timing flag measures bp-lint's own wall time
    enabled.then(std::time::Instant::now)
}

fn elapsed(sw: Option<std::time::Instant>) -> Duration {
    sw.map(|s| s.elapsed()).unwrap_or_default()
}

/// Runs the per-file tier (token rules, directives, fact summary) over
/// one file. Pure in `src`, which is what makes both the thread fan-out
/// and the content-hash cache sound. Returns per-rule wall times when
/// `timing` is set.
pub fn analyze_file(
    rules: &[Box<dyn Rule>],
    rel_path: &str,
    src: &str,
    timing: bool,
) -> (FileAnalysis, Vec<(&'static str, Duration)>) {
    let lexed = lex(src);
    let ctx = build_context(rel_path, src, &lexed);
    let directives = collect_directives(&ctx);

    let mut raw: Vec<Violation> = Vec::new();
    // Directive misuse is itself a violation: reasons are mandatory.
    for d in &directives {
        if d.reason.is_empty() {
            let rules = d.rules.join(", ");
            raw.push(Violation {
                rule: "L000",
                path: ctx.rel_path.clone(),
                line: d.line,
                col: 1,
                message: format!(
                    "allow({rules}) directive is missing its mandatory reason \
                     (write `// bp-lint: allow({rules}): <why this site is safe>`)"
                ),
                severity: Severity::Error,
            });
        }
    }
    let mut rule_times = Vec::new();
    for rule in rules {
        let sw = stopwatch(timing);
        raw.extend(rule.check(&ctx));
        if timing {
            rule_times.push((rule.id(), elapsed(sw)));
        }
    }
    raw.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));

    let ast = parse_file(src, &lexed, &ctx.match_close);
    let summary = summarize(rel_path, &ast, &ctx.lines);
    (
        FileAnalysis {
            raw,
            directives,
            summary,
        },
        rule_times,
    )
}

/// Routes raw violations through the per-file directives into the
/// report, as surviving violations or recorded suppressions.
fn apply_suppressions(
    raw: Vec<Violation>,
    directives: &HashMap<String, Vec<Directive>>,
    report: &mut CheckReport,
) {
    static NO_DIRECTIVES: Vec<Directive> = Vec::new();
    for v in raw {
        let ds = directives.get(&v.path).unwrap_or(&NO_DIRECTIVES);
        let hit = (v.rule != "L000")
            .then(|| {
                ds.iter().find(|d| {
                    !d.reason.is_empty()
                        && d.target_line == v.line
                        && d.rules.iter().any(|r| r == v.rule)
                })
            })
            .flatten();
        if let Some(d) = hit {
            report.suppressions.push(Suppression {
                rule: v.rule.to_string(),
                path: v.path.clone(),
                line: v.line,
                reason: d.reason.clone(),
            });
        } else {
            report.violations.push(v);
        }
    }
}

/// Audits the allowlist: every reasoned directive must have earned its
/// keep by suppressing at least one finding this run. Directives with an
/// empty reason are excluded — L000 already flags those as violations.
fn collect_stale_allows(
    directives: &HashMap<String, Vec<Directive>>,
    suppressions: &[Suppression],
) -> Vec<StaleAllow> {
    let mut stale = Vec::new();
    for (path, ds) in directives {
        for d in ds {
            if d.reason.is_empty() {
                continue;
            }
            let used = suppressions.iter().any(|s| {
                s.path == *path && s.line == d.target_line && d.rules.iter().any(|r| r == &s.rule)
            });
            if !used {
                stale.push(StaleAllow {
                    path: path.clone(),
                    line: d.line,
                    rules: d.rules.clone(),
                    reason: d.reason.clone(),
                });
            }
        }
    }
    stale.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    stale
}

/// Tuning knobs for `check_tree_with`.
#[derive(Debug, Clone, Default)]
pub struct CheckOptions {
    /// Worker thread count; `None` = available parallelism.
    pub jobs: Option<usize>,
    /// Skip both reading and writing the incremental cache.
    pub no_cache: bool,
    /// Collect per-rule and per-file wall times.
    pub timing: bool,
}

/// The outcome of checking a tree.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Violations that survived suppression, in (path, line, col, rule)
    /// order.
    pub violations: Vec<Violation>,
    /// Allowlisted (suppressed) findings with their reasons.
    pub suppressions: Vec<Suppression>,
    /// Reasoned allow directives that suppressed nothing — candidates
    /// for deletion, fatal under `check --audit-allowlist`.
    pub stale_allows: Vec<StaleAllow>,
    /// Number of files scanned.
    pub files: usize,
    /// How many of those were cache hits.
    pub cached_files: usize,
    /// Aggregate wall time per rule (only with `CheckOptions::timing`).
    pub rule_times: Vec<(String, Duration)>,
    /// Wall time per analyzed file (only with `CheckOptions::timing`).
    pub file_times: Vec<(String, Duration)>,
    /// End-to-end wall time (only with `CheckOptions::timing`).
    pub total_time: Duration,
}

impl CheckReport {
    /// `true` when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The engine: a rule set plus walking/suppression logic.
pub struct Engine {
    rules: Vec<Box<dyn Rule>>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

/// Bump when analysis logic outside the rules changes shape (directive
/// collection, summaries) — rule ids alone can't see those edits, and a
/// stale cache would keep serving the old analysis.
const ANALYSIS_VERSION: &str = "v2:doc-comments-never-direct";

/// Fingerprint over the analysis version and the full rule set (ids +
/// descriptions); any change invalidates the incremental cache wholesale.
fn rules_fingerprint() -> String {
    let mut s = String::from(ANALYSIS_VERSION);
    for r in all_rules() {
        s.push_str(r.id());
        s.push_str(r.description());
    }
    for r in all_global_rules() {
        s.push_str(r.id());
        s.push_str(r.description());
    }
    format!("{:016x}", cache::hash_src(&s))
}

impl Engine {
    /// An engine with every built-in rule.
    pub fn new() -> Self {
        Engine { rules: all_rules() }
    }

    /// Checks one file's source, applying directives. Per-file rules
    /// only — the interprocedural tier needs the whole tree.
    pub fn check_file(&self, rel_path: &str, src: &str, report: &mut CheckReport) {
        let (analysis, _) = analyze_file(&self.rules, rel_path, src, false);
        let mut directives = HashMap::new();
        directives.insert(rel_path.to_string(), analysis.directives);
        apply_suppressions(analysis.raw, &directives, report);
        report.files += 1;
    }

    /// Walks `root` and checks every eligible `.rs` file with default
    /// options (parallel, cached, no timing).
    pub fn check_tree(&self, root: &Path) -> std::io::Result<CheckReport> {
        self.check_tree_with(root, &CheckOptions::default())
    }

    /// The full pipeline: parallel per-file analysis (cache-accelerated),
    /// whole-program rules, suppression, canonical ordering.
    pub fn check_tree_with(
        &self,
        root: &Path,
        opts: &CheckOptions,
    ) -> std::io::Result<CheckReport> {
        let total_sw = stopwatch(opts.timing);
        let mut rels = Vec::new();
        collect_rs_files(root, root, &mut rels)?;
        rels.sort();
        // Read sources up front; analysis itself is then I/O-free.
        let mut files: Vec<(String, String, u64)> = Vec::with_capacity(rels.len());
        for rel in &rels {
            let src = std::fs::read_to_string(root.join(rel))?;
            let rel_unix = rel.to_string_lossy().replace('\\', "/");
            let hash = cache::hash_src(&src);
            files.push((rel_unix, src, hash));
        }
        let fingerprint = rules_fingerprint();
        let cache_file = cache::cache_path(root);
        let cached = if opts.no_cache {
            Cache::default()
        } else {
            cache::load(&cache_file, &fingerprint)
        };

        struct Done {
            analysis: FileAnalysis,
            from_cache: bool,
            time: Duration,
            rule_times: Vec<(&'static str, Duration)>,
        }
        let n_files = files.len();
        let jobs = opts
            .jobs
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
            .clamp(1, n_files.max(1));
        let next = AtomicUsize::new(0);
        let timing = opts.timing;
        let mut slots: Vec<Option<Done>> = Vec::new();
        slots.resize_with(n_files, || None);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..jobs)
                .map(|_| {
                    s.spawn(|| {
                        // Each worker owns a rule set: rules are stateless
                        // unit structs, so this is cheaper than making the
                        // trait objects Sync.
                        let rules = all_rules();
                        let mut local: Vec<(usize, Done)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n_files {
                                break;
                            }
                            let (rel, src, hash) = &files[i];
                            let sw = stopwatch(timing);
                            let (analysis, from_cache, rule_times) = match cached.get(rel, *hash) {
                                Some(hit) => (
                                    FileAnalysis {
                                        raw: hit.raw.clone(),
                                        directives: hit.directives.clone(),
                                        summary: hit.summary.clone(),
                                    },
                                    true,
                                    Vec::new(),
                                ),
                                None => {
                                    let (a, rt) = analyze_file(&rules, rel, src, timing);
                                    (a, false, rt)
                                }
                            };
                            local.push((
                                i,
                                Done {
                                    analysis,
                                    from_cache,
                                    time: elapsed(sw),
                                    rule_times,
                                },
                            ));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                for (i, d) in h.join().expect("bp-lint worker thread panicked") {
                    slots[i] = Some(d);
                }
            }
        });

        let mut report = CheckReport {
            files: n_files,
            ..CheckReport::default()
        };
        let mut rule_times: BTreeMap<&'static str, Duration> = BTreeMap::new();
        let mut entries: Vec<(String, CachedFile)> = Vec::with_capacity(n_files);
        let mut directives: HashMap<String, Vec<Directive>> = HashMap::with_capacity(n_files);
        let mut summaries: Vec<FileSummary> = Vec::with_capacity(n_files);
        let mut all_raw: Vec<Violation> = Vec::new();
        for (i, slot) in slots.into_iter().enumerate() {
            let d = slot.expect("work queue covered every file");
            let (rel, _, hash) = &files[i];
            if d.from_cache {
                report.cached_files += 1;
            }
            if timing {
                report.file_times.push((rel.clone(), d.time));
                for (id, t) in d.rule_times {
                    *rule_times.entry(id).or_default() += t;
                }
            }
            entries.push((
                rel.clone(),
                CachedFile {
                    hash: *hash,
                    raw: d.analysis.raw.clone(),
                    directives: d.analysis.directives.clone(),
                    summary: d.analysis.summary.clone(),
                },
            ));
            all_raw.extend(d.analysis.raw);
            directives.insert(rel.clone(), d.analysis.directives);
            summaries.push(d.analysis.summary);
        }

        // Whole-program tier: always re-runs; only per-file work is cached.
        let registry = std::fs::read_to_string(root.join(METRICS_REGISTRY_PATH)).ok();
        let prog = Program::new(summaries, registry);
        for rule in all_global_rules() {
            let sw = stopwatch(timing);
            all_raw.extend(rule.check(&prog));
            if timing {
                *rule_times.entry(rule.id()).or_default() += elapsed(sw);
            }
        }

        apply_suppressions(all_raw, &directives, &mut report);
        report.stale_allows = collect_stale_allows(&directives, &report.suppressions);
        report.violations.sort_by(|a, b| {
            (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule))
        });
        report
            .suppressions
            .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));

        // Persist the cache only into an existing target/ dir: `--root`
        // pointed at a fixture tree must never grow build artifacts.
        if !opts.no_cache && root.join("target").is_dir() {
            let _ = cache::save(&cache_file, &fingerprint, &entries);
        }
        if timing {
            report.rule_times = rule_times
                .into_iter()
                .map(|(id, t)| (id.to_string(), t))
                .collect();
            report.rule_times.sort_by_key(|r| std::cmp::Reverse(r.1));
            report.file_times.sort_by_key(|f| std::cmp::Reverse(f.1));
            report.total_time = elapsed(total_sw);
        }
        Ok(report)
    }
}

/// Collects directives and computes each one's target line.
fn collect_directives(ctx: &FileContext<'_>) -> Vec<Directive> {
    let mut out = Vec::new();
    for c in &ctx.lexed.comments {
        let body = &ctx.src[c.start..c.end];
        // Doc comments only ever *document* the directive syntax (e.g. the
        // `parse_directive` rustdoc); a live allow is always a plain `//`
        // or `/* */` comment.
        if body.starts_with("///")
            || body.starts_with("//!")
            || body.starts_with("/**")
            || body.starts_with("/*!")
        {
            continue;
        }
        if let Some((rules, reason)) = parse_directive(body) {
            let line = ctx.lines.line_of(c.start);
            // If any code token shares the comment's line, the directive
            // covers that line; a directive alone on its line covers the
            // next line.
            let has_code_on_line = ctx
                .lexed
                .tokens
                .iter()
                .any(|t| ctx.lines.line_of(t.start) == line && t.start < c.start);
            let target_line = if has_code_on_line { line } else { line + 1 };
            out.push(Directive {
                rules,
                reason,
                line,
                target_line,
            });
        }
    }
    out
}

/// Recursively collects workspace-relative `.rs` paths under `dir`.
///
/// Skips `target/`, `shims/` (vendored stand-ins for external crates —
/// their API shape is dictated by the crates they mirror), hidden
/// directories, and bp-lint's own test fixtures (which violate rules on
/// purpose).
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "shims" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Convenience: checks the tree at `root` with the default engine.
pub fn check_root(root: &Path) -> std::io::Result<CheckReport> {
    Engine::new().check_tree(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_src(path: &str, src: &str) -> CheckReport {
        let mut report = CheckReport::default();
        Engine::new().check_file(path, src, &mut report);
        report
    }

    #[test]
    fn cfg_test_module_is_a_test_region() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\n";
        let lexed = lex(src);
        let ctx = build_context("crates/storage/src/x.rs", src, &lexed);
        let unwrap_at = src.find("unwrap").unwrap();
        assert!(ctx.in_test(unwrap_at));
        assert!(!ctx.in_test(src.find("fn a").unwrap()));
    }

    #[test]
    fn fns_are_extracted_with_visibility() {
        let src = "pub fn alpha(x: u32) -> u32 { x }\nfn beta() {}\npub(crate) fn gamma<T: Ord>(t: T) {}\n";
        let lexed = lex(src);
        let ctx = build_context("crates/query/src/x.rs", src, &lexed);
        let names: Vec<(&str, bool)> = ctx
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.is_pub))
            .collect();
        assert_eq!(
            names,
            vec![("alpha", true), ("beta", false), ("gamma", true)]
        );
    }

    #[test]
    fn directive_without_reason_is_l000() {
        let src = "// bp-lint: allow(L002)\nfn f() {}\n";
        let report = check_src("crates/core/src/x.rs", src);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "L000");
    }

    #[test]
    fn directive_suppresses_next_line_with_reason() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // bp-lint: allow(L002): test of suppression\n    x.unwrap()\n}\n";
        let report = check_src("crates/core/src/x.rs", src);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.suppressions.len(), 1);
        assert_eq!(report.suppressions[0].reason, "test of suppression");
    }

    #[test]
    fn directive_on_same_line_suppresses() {
        let src =
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // bp-lint: allow(L002): demo\n}\n";
        let report = check_src("crates/core/src/x.rs", src);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn doc_comments_never_parse_as_directives() {
        // Rustdoc describing the syntax must not register a phantom allow
        // (which the allowlist audit would then flag as stale).
        let src = "/// Accepts `bp-lint: allow(L002): reason`.\nfn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let lexed = lex(src);
        let ctx = build_context("crates/core/src/x.rs", src, &lexed);
        assert!(collect_directives(&ctx).is_empty());
    }

    #[test]
    fn stale_allow_audit_flags_only_unused_reasoned_directives() {
        let path = "crates/core/src/x.rs".to_string();
        let mut directives: HashMap<String, Vec<Directive>> = HashMap::new();
        directives.insert(
            path.clone(),
            vec![
                Directive {
                    rules: vec!["L002".to_string()],
                    reason: "earned its keep".to_string(),
                    line: 4,
                    target_line: 5,
                },
                Directive {
                    rules: vec!["L002".to_string(), "L004".to_string()],
                    reason: "the guarded code was deleted".to_string(),
                    line: 9,
                    target_line: 10,
                },
                // Reasonless: L000 territory, not the audit's.
                Directive {
                    rules: vec!["L002".to_string()],
                    reason: String::new(),
                    line: 20,
                    target_line: 21,
                },
            ],
        );
        let suppressions = vec![Suppression {
            rule: "L002".to_string(),
            path: path.clone(),
            line: 5,
            reason: "earned its keep".to_string(),
        }];
        let stale = collect_stale_allows(&directives, &suppressions);
        assert_eq!(stale.len(), 1, "{stale:?}");
        assert_eq!(stale[0].line, 9);
        assert_eq!(stale[0].rules, vec!["L002".to_string(), "L004".to_string()]);
        assert!(stale[0].to_string().contains("stale allow(L002, L004)"));
    }
}
