//! Per-file fact extraction: distills the AST into flat, cheap-to-store
//! summaries of every function — its signature, the calls it makes
//! (with receiver chains, loop context, and interesting argument
//! shapes), and whether it ever mentions the SLO deadline types. The
//! interprocedural rules and the incremental cache both operate on
//! these summaries, never on the AST itself.

use crate::ast::{AstFile, Block, Expr, FnItem, Item};
use crate::diag::LineMap;

/// Facts about one source file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FileSummary {
    /// Workspace-relative path, unix separators.
    pub rel_path: String,
    /// The crate the file belongs to (`storage` for
    /// `crates/storage/src/store.rs`), empty when not under `crates/`.
    pub crate_name: String,
    /// `true` for files under `tests/` or `benches/`.
    pub whole_file_test: bool,
    /// Functions in source order (including test fns, flagged).
    pub fns: Vec<FnSummary>,
}

/// Facts about one function.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FnSummary {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` type name, empty for free functions.
    pub impl_type: String,
    /// `true` when any visibility modifier precedes the fn.
    pub is_pub: bool,
    /// `true` for `#[test]` fns, fns in `#[cfg(test)]` mods, or fns in
    /// whole-file-test files.
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Parameter names in order (`self` included for methods).
    pub param_names: Vec<String>,
    /// Parameter types, space-joined source tokens, same order.
    pub param_tys: Vec<String>,
    /// `true` when the body names `Deadline` or `Budget` anywhere.
    pub mentions_deadline: bool,
    /// Every call and method call in the body (loops included).
    pub calls: Vec<CallFact>,
}

/// One call site inside a function body.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CallFact {
    /// Callee name (final path segment or method name).
    pub name: String,
    /// For path calls, the second-to-last segment (`slo` in
    /// `crate::slo::observe`, `Deadline` in `Deadline::start`); empty
    /// for unqualified and method calls.
    pub qual: String,
    /// For method calls, the rendered receiver chain (`self.graph`,
    /// `state.shared`, `_` when the receiver is itself a call); empty
    /// for path calls.
    pub recv: String,
    /// `true` for `recv.name(...)`, `false` for `path(...)`.
    pub is_method: bool,
    /// 1-based line of the call.
    pub line: u32,
    /// 1-based column of the call.
    pub col: u32,
    /// `true` when the call sits inside a loop body or loop header.
    pub in_loop: bool,
    /// Argument count (receiver excluded for method calls).
    pub argc: usize,
    /// `(position, value)` for string-literal arguments.
    pub str_args: Vec<(usize, String)>,
    /// `(position, pattern)` for `format!` arguments; `{…}` holes
    /// become `*`.
    pub fmt_args: Vec<(usize, String)>,
    /// `(position, param index)` for arguments that are exactly one of
    /// the enclosing function's parameters.
    pub param_args: Vec<(usize, usize)>,
    /// `(position, chain)` for arguments that are path/field chains
    /// (`state.traces`) — used to substitute lock identities through
    /// helper calls.
    pub path_args: Vec<(usize, String)>,
}

impl FnSummary {
    /// The key rules display for this function (`Type::name` or `name`).
    pub fn display(&self) -> String {
        if self.impl_type.is_empty() {
            self.name.clone()
        } else {
            format!("{}::{}", self.impl_type, self.name)
        }
    }
}

/// Extracts the crate name from a workspace-relative path.
pub fn crate_of(rel_path: &str) -> String {
    rel_path
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
        .to_string()
}

/// Builds the summary for one parsed file.
pub fn summarize(rel_path: &str, ast: &AstFile, lines: &LineMap) -> FileSummary {
    let whole_file_test = rel_path.contains("/tests/") || rel_path.contains("/benches/");
    let mut out = FileSummary {
        rel_path: rel_path.to_string(),
        crate_name: crate_of(rel_path),
        whole_file_test,
        fns: Vec::new(),
    };
    collect_items(&ast.items, "", whole_file_test, lines, &mut out.fns);
    out
}

fn collect_items(
    items: &[Item],
    impl_type: &str,
    in_test: bool,
    lines: &LineMap,
    out: &mut Vec<FnSummary>,
) {
    for item in items {
        match item {
            Item::Fn(f) => out.push(summarize_fn(f, impl_type, in_test, lines)),
            Item::Impl(im) => collect_items(&im.items, &im.type_name, in_test, lines, out),
            Item::Mod(m) => collect_items(&m.items, impl_type, in_test || m.cfg_test, lines, out),
            Item::Other => {}
        }
    }
}

fn summarize_fn(f: &FnItem, impl_type: &str, in_test: bool, lines: &LineMap) -> FnSummary {
    let (line, col) = lines.locate(f.span.start);
    let mut s = FnSummary {
        name: f.name.clone(),
        impl_type: impl_type.to_string(),
        is_pub: f.is_pub,
        is_test: f.is_test || in_test,
        line,
        col,
        param_names: f.params.iter().map(|p| p.name.clone()).collect(),
        param_tys: f.params.iter().map(|p| p.ty.clone()).collect(),
        mentions_deadline: false,
        calls: Vec::new(),
    };
    if let Some(body) = &f.body {
        let mut cx = Walk {
            lines,
            param_names: &s.param_names,
            calls: &mut s.calls,
            mentions_deadline: &mut s.mentions_deadline,
        };
        cx.exprs(&body.exprs, false);
    }
    s
}

struct Walk<'a> {
    lines: &'a LineMap,
    param_names: &'a [String],
    calls: &'a mut Vec<CallFact>,
    mentions_deadline: &'a mut bool,
}

impl Walk<'_> {
    fn block(&mut self, b: &Block, in_loop: bool) {
        self.exprs(&b.exprs, in_loop);
    }

    fn exprs(&mut self, exprs: &[Expr], in_loop: bool) {
        for e in exprs {
            self.expr(e, in_loop);
        }
    }

    fn expr(&mut self, e: &Expr, in_loop: bool) {
        match e {
            Expr::Path { segs, .. } => {
                if segs.iter().any(|s| s == "Deadline" || s == "Budget") {
                    *self.mentions_deadline = true;
                }
            }
            Expr::StrLit { .. } => {}
            Expr::Call { callee, args, span } => {
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    let name = segs.last().cloned().unwrap_or_default();
                    let qual = if segs.len() >= 2 {
                        segs[segs.len() - 2].clone()
                    } else {
                        String::new()
                    };
                    self.push_call(name, qual, String::new(), false, *span, args, in_loop);
                }
                self.expr(callee, in_loop);
                self.exprs(args, in_loop);
            }
            Expr::MethodCall {
                recv,
                name,
                args,
                span,
            } => {
                let chain = recv.chain().unwrap_or_else(|| "_".to_string());
                self.push_call(
                    name.clone(),
                    String::new(),
                    chain,
                    true,
                    *span,
                    args,
                    in_loop,
                );
                self.expr(recv, in_loop);
                self.exprs(args, in_loop);
            }
            Expr::Field { base, .. } => self.expr(base, in_loop),
            Expr::Macro { args, .. } | Expr::Group { exprs: args, .. } => self.exprs(args, in_loop),
            Expr::Loop { header, body, .. } => {
                // Header calls iterate too (`for n in g.nodes()`).
                self.exprs(header, true);
                self.block(body, true);
            }
            Expr::Block(b) => self.block(b, in_loop),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push_call(
        &mut self,
        name: String,
        qual: String,
        recv: String,
        is_method: bool,
        span: crate::ast::Span,
        args: &[Expr],
        in_loop: bool,
    ) {
        let (line, col) = self.lines.locate(span.start);
        let mut fact = CallFact {
            name,
            qual,
            recv,
            is_method,
            line,
            col,
            in_loop,
            argc: args.len(),
            ..CallFact::default()
        };
        for (pos, arg) in args.iter().enumerate() {
            match arg {
                Expr::StrLit { value, .. } => fact.str_args.push((pos, value.clone())),
                Expr::Macro { name, args, .. } if name == "format" => {
                    if let Some(Expr::StrLit { value, .. }) = args.first() {
                        fact.fmt_args.push((pos, fmt_pattern(value)));
                    }
                }
                Expr::Path { segs, .. } if segs.len() == 1 => {
                    if let Some(idx) = self.param_names.iter().position(|p| *p == segs[0]) {
                        fact.param_args.push((pos, idx));
                    }
                    fact.path_args.push((pos, segs[0].clone()));
                }
                _ => {
                    if let Some(chain) = arg.chain() {
                        fact.path_args.push((pos, chain));
                    }
                }
            }
        }
        self.calls.push(fact);
    }
}

/// Turns a `format!` template into a match pattern: each `{…}` hole
/// becomes `*`; doubled braces are the literal characters.
pub fn fmt_pattern(template: &str) -> String {
    let mut out = String::new();
    let mut chars = template.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' => {
                if chars.peek() == Some(&'{') {
                    chars.next();
                    out.push('{');
                } else {
                    for inner in chars.by_ref() {
                        if inner == '}' {
                            break;
                        }
                    }
                    out.push('*');
                }
            }
            '}' => {
                if chars.peek() == Some(&'}') {
                    chars.next();
                }
                out.push('}');
            }
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::match_delims;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn summary(path: &str, src: &str) -> FileSummary {
        let lexed = lex(src);
        let close = match_delims(&lexed, src);
        let ast = parse_file(src, &lexed, &close);
        summarize(path, &ast, &LineMap::new(src))
    }

    #[test]
    fn crate_names() {
        assert_eq!(crate_of("crates/storage/src/store.rs"), "storage");
        assert_eq!(crate_of("README.rs"), "");
    }

    #[test]
    fn methods_carry_impl_type_and_receivers() {
        let src = r#"
            impl ProvenanceStore {
                pub fn add_node(&mut self, op: Op) {
                    self.commit(op);
                }
                fn commit(&mut self, op: Op) {
                    self.graph.add_node(op.id);
                    self.wal.append(payload);
                }
            }
        "#;
        let s = summary("crates/storage/src/store.rs", src);
        assert_eq!(s.crate_name, "storage");
        assert_eq!(s.fns.len(), 2);
        assert_eq!(s.fns[0].impl_type, "ProvenanceStore");
        assert!(s.fns[0].is_pub);
        let commit = &s.fns[1];
        let add = commit.calls.iter().find(|c| c.name == "add_node").unwrap();
        assert_eq!(add.recv, "self.graph");
        let app = commit.calls.iter().find(|c| c.name == "append").unwrap();
        assert_eq!(app.recv, "self.wal");
    }

    #[test]
    fn loop_context_and_deadline_mentions() {
        let src = r#"
            pub fn walk(browser: &ProvenanceBrowser) {
                let deadline = crate::slo::Deadline::start(browser);
                for n in browser.graph().nodes() {
                    score(n);
                }
            }
            fn score(n: NodeId) -> f64 { weight(n) }
        "#;
        let s = summary("crates/query/src/context.rs", src);
        let walk = &s.fns[0];
        assert!(walk.mentions_deadline);
        let nodes = walk.calls.iter().find(|c| c.name == "nodes").unwrap();
        assert!(nodes.in_loop);
        let score = walk.calls.iter().find(|c| c.name == "score").unwrap();
        assert!(score.in_loop);
        let start = walk.calls.iter().find(|c| c.name == "start").unwrap();
        assert!(!start.in_loop);
        assert_eq!(start.qual, "Deadline");
        let score_fn = &s.fns[1];
        let weight = score_fn.calls.iter().find(|c| c.name == "weight").unwrap();
        assert!(!weight.in_loop);
    }

    #[test]
    fn interesting_args_are_recorded() {
        let src = r#"
            fn observe(obs: &Obs, latency_metric: &str) {
                obs.histogram(latency_metric);
                obs.counter("query.deadline.hit");
                obs.gauge(&format!("bench.query.{name}.latency_us"));
                push_ring(&state.traces, entry);
            }
        "#;
        let s = summary("crates/obs/src/slo.rs", src);
        let f = &s.fns[0];
        let hist = f.calls.iter().find(|c| c.name == "histogram").unwrap();
        assert_eq!(hist.param_args, vec![(0, 1)]);
        let ctr = f.calls.iter().find(|c| c.name == "counter").unwrap();
        assert_eq!(ctr.str_args, vec![(0, "query.deadline.hit".to_string())]);
        let g = f.calls.iter().find(|c| c.name == "gauge").unwrap();
        assert_eq!(
            g.fmt_args,
            vec![(0, "bench.query.*.latency_us".to_string())]
        );
        let pr = f.calls.iter().find(|c| c.name == "push_ring").unwrap();
        assert_eq!(pr.argc, 2);
        assert!(pr
            .path_args
            .iter()
            .any(|(pos, chain)| *pos == 0 && chain == "state.traces"));
    }

    #[test]
    fn test_fns_are_flagged() {
        let src = r#"
            fn real() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { x.counter("junk"); }
            }
        "#;
        let s = summary("crates/obs/src/metrics.rs", src);
        assert!(!s.fns[0].is_test);
        assert!(s.fns[1].is_test);
        let s2 = summary("crates/storage/tests/wal.rs", "fn helper() {}");
        assert!(s2.whole_file_test);
        assert!(s2.fns[0].is_test);
    }

    #[test]
    fn fmt_patterns() {
        assert_eq!(
            fmt_pattern("bench.query.{name}.latency_us"),
            "bench.query.*.latency_us"
        );
        assert_eq!(fmt_pattern("plain"), "plain");
        assert_eq!(fmt_pattern("{{literal}}"), "{literal}");
        assert_eq!(fmt_pattern("{a}{b}"), "**");
    }
}
