//! A hand-rolled Rust token lexer.
//!
//! Produces a flat token stream (identifiers, literals, single-character
//! punctuation) with byte spans, plus the comment list (needed for
//! `bp-lint: allow(...)` directives). It understands exactly as much Rust
//! lexical grammar as a linter needs: nested block comments, cooked and
//! raw strings (with hash fences), byte strings, char literals vs.
//! lifetimes, raw identifiers, and numeric literals — so that a `panic!`
//! inside a string or comment is never mistaken for code.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `HashMap`, `unwrap`, …).
    Ident,
    /// A lifetime (`'a`, `'_`).
    Lifetime,
    /// A numeric literal.
    Number,
    /// A string, byte-string, or raw-string literal.
    Str,
    /// A character or byte literal.
    Char,
    /// A single punctuation byte (`.`, `:`, `!`, `(`, …).
    Punct,
}

/// One lexed token with its byte span in the source.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Lexeme class.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

/// One comment (line or block) with its span and starting line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Byte offset of the `//` or `/*`.
    pub start: usize,
    /// Byte offset one past the end of the comment.
    pub end: usize,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order (comments and whitespace removed).
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens and comments.
///
/// The lexer never fails: malformed input (an unterminated string at EOF,
/// say) produces a best-effort token ending at EOF. Non-ASCII bytes are
/// treated as identifier characters, which keeps multi-byte UTF-8
/// sequences intact without a full Unicode table.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let n = b.len();
    let mut out = Lexed::default();
    let mut i = 0usize;

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < n {
            if b[i + 1] == b'/' {
                let start = i;
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment { start, end: i });
                continue;
            }
            if b[i + 1] == b'*' {
                let start = i;
                i += 2;
                let mut depth = 1usize;
                while i < n && depth > 0 {
                    if i + 1 < n && b[i] == b'/' && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < n && b[i] == b'*' && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment { start, end: i });
                continue;
            }
        }
        // String-literal prefixes: r"", r#""#, b"", br"", br#""#, b''.
        if c == b'r' || c == b'b' {
            if let Some(end) = try_prefixed_literal(b, i) {
                let kind = if src[i..end].contains('"') {
                    TokenKind::Str
                } else {
                    TokenKind::Char
                };
                out.tokens.push(Token {
                    kind,
                    start: i,
                    end,
                });
                i = end;
                continue;
            }
        }
        // Cooked string.
        if c == b'"' {
            let end = scan_cooked_string(b, i + 1);
            out.tokens.push(Token {
                kind: TokenKind::Str,
                start: i,
                end,
            });
            i = end;
            continue;
        }
        // Char literal or lifetime.
        if c == b'\'' {
            // Lifetime: 'ident NOT followed by a closing quote.
            if i + 1 < n && is_ident_start(b[i + 1]) {
                let mut j = i + 1;
                while j < n && is_ident_continue(b[j]) {
                    j += 1;
                }
                if j < n && b[j] == b'\'' {
                    // 'a' — a char literal after all.
                    out.tokens.push(Token {
                        kind: TokenKind::Char,
                        start: i,
                        end: j + 1,
                    });
                    i = j + 1;
                } else {
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        start: i,
                        end: j,
                    });
                    i = j;
                }
                continue;
            }
            // Escaped or punctuation char literal: '\n', '\'', '\u{1F600}'.
            let mut j = i + 1;
            if j < n && b[j] == b'\\' {
                j += 1;
                if j < n && b[j] == b'u' {
                    // \u{...}
                    j += 1;
                    if j < n && b[j] == b'{' {
                        while j < n && b[j] != b'}' {
                            j += 1;
                        }
                    }
                    j += 1;
                } else {
                    j += 1; // the escaped byte
                }
            } else if j < n {
                j += 1; // the literal byte (may start a UTF-8 sequence)
                while j < n && b[j] >= 0x80 {
                    j += 1;
                }
            }
            if j < n && b[j] == b'\'' {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Char,
                start: i,
                end: j,
            });
            i = j;
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < n {
                let d = b[i];
                if d.is_ascii_alphanumeric() || d == b'_' {
                    i += 1;
                } else if d == b'.' && i + 1 < n && b[i + 1].is_ascii_digit() {
                    // 1.5 — but not 0..10 (range) or 1.method().
                    i += 1;
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Number,
                start,
                end: i,
            });
            continue;
        }
        // Identifier (including raw identifiers handled via the r-prefix
        // check above falling through when not a string).
        if is_ident_start(c) {
            let start = i;
            i += 1;
            while i < n && is_ident_continue(b[i]) {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                start,
                end: i,
            });
            continue;
        }
        // Everything else: one punctuation byte.
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            start: i,
            end: i + 1,
        });
        i += 1;
    }
    out
}

/// If the bytes at `i` begin a prefixed literal (`r"`, `r#"`, `br"`,
/// `b"`, `b'`, `r#ident` is NOT a literal), returns the end offset.
fn try_prefixed_literal(b: &[u8], i: usize) -> Option<usize> {
    let n = b.len();
    let mut j = i;
    let mut raw = false;
    if b[j] == b'b' {
        j += 1;
        if j < n && b[j] == b'r' {
            raw = true;
            j += 1;
        }
    } else if b[j] == b'r' {
        raw = true;
        j += 1;
    }
    if j >= n {
        return None;
    }
    if raw {
        // Count hash fence.
        let mut hashes = 0usize;
        while j < n && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j >= n || b[j] != b'"' {
            return None; // r#ident or bare r / br
        }
        j += 1;
        // Scan to `"` followed by `hashes` hashes.
        loop {
            if j >= n {
                return Some(n);
            }
            if b[j] == b'"' {
                let mut k = j + 1;
                let mut seen = 0usize;
                while k < n && seen < hashes && b[k] == b'#' {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return Some(k);
                }
            }
            j += 1;
        }
    }
    // Non-raw: b"..." or b'...'.
    if b[j] == b'"' {
        return Some(scan_cooked_string(b, j + 1));
    }
    if b[j] == b'\'' {
        j += 1;
        while j < n {
            if b[j] == b'\\' {
                j += 2;
            } else if b[j] == b'\'' {
                return Some(j + 1);
            } else {
                j += 1;
            }
        }
        return Some(n);
    }
    None
}

/// Scans a cooked (escaped) string starting just after the opening quote;
/// returns the offset one past the closing quote.
fn scan_cooked_string(b: &[u8], mut j: usize) -> usize {
    let n = b.len();
    while j < n {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .map(|t| src[t.start..t.end].to_string())
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(texts("foo.unwrap()"), vec!["foo", ".", "unwrap", "(", ")"]);
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = texts(r#"let s = "panic!(unwrap())";"#);
        assert!(toks.iter().all(|t| t != "panic" && t != "unwrap"));
        assert_eq!(lex(r#""a\"b""#).tokens.len(), 1);
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r##"let s = r#"contains "quotes" and unwrap()"#; x"##;
        let toks = texts(src);
        assert!(toks.contains(&"x".to_string()));
        assert!(!toks.contains(&"unwrap".to_string()));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = texts(r#"f(b"unwrap", b'\'', b'a')"#);
        assert!(!toks.contains(&"unwrap".to_string()));
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let src = "a // unwrap()\nb /* panic! /* nested */ */ c";
        let lexed = lex(src);
        let toks: Vec<_> = lexed.tokens.iter().map(|t| &src[t.start..t.end]).collect();
        assert_eq!(toks, vec!["a", "b", "c"]);
        assert_eq!(lexed.comments.len(), 2);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        assert_eq!(texts("0..10"), vec!["0", ".", ".", "10"]);
        assert_eq!(texts("1.5f64"), vec!["1.5f64"]);
    }

    #[test]
    fn unterminated_string_reaches_eof() {
        let lexed = lex("let s = \"oops");
        assert_eq!(lexed.tokens.last().unwrap().end, "let s = \"oops".len());
    }
}
