//! Diagnostics: violations, line mapping, and allowlist directives.

use std::fmt;

/// How serious a finding is. Everything bp-lint reports today fails the
/// build; the severity only affects display.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// A rule violation (fails `check`).
    Error,
}

/// One rule violation at a concrete source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule id (`L001` … `L005`, or `L000` for directive misuse).
    pub rule: &'static str,
    /// Workspace-relative path, unix separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
    /// Severity (always [`Severity::Error`] today).
    pub severity: Severity,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// A suppression that matched a violation.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The rule suppressed.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// Line the suppressed violation was on.
    pub line: u32,
    /// The written justification from the directive.
    pub reason: String,
}

/// A reasoned allow directive that suppressed nothing this run: the
/// code it guarded was fixed or moved, so the allowlist entry is dead
/// weight and should be deleted (`check --audit-allowlist` fails on
/// these).
#[derive(Debug, Clone)]
pub struct StaleAllow {
    /// Workspace-relative path of the file holding the directive.
    pub path: String,
    /// Line the directive comment starts on.
    pub line: u32,
    /// Rules the directive names.
    pub rules: Vec<String>,
    /// The written justification, kept for the audit message.
    pub reason: String,
}

impl std::fmt::Display for StaleAllow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: stale allow({}): suppresses nothing — remove it (reason was: {})",
            self.path,
            self.line,
            self.rules.join(", "),
            self.reason
        )
    }
}

/// Byte-offset → (line, column) mapping for one file.
#[derive(Debug)]
pub struct LineMap {
    /// Byte offset of the start of each line; `starts[0] == 0`.
    starts: Vec<usize>,
}

impl LineMap {
    /// Builds the map for `src`.
    pub fn new(src: &str) -> Self {
        let mut starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineMap { starts }
    }

    /// 1-based (line, column) of a byte offset.
    pub fn locate(&self, offset: usize) -> (u32, u32) {
        let line_idx = match self.starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let line = u32::try_from(line_idx + 1).unwrap_or(u32::MAX);
        let col = u32::try_from(offset - self.starts[line_idx] + 1).unwrap_or(u32::MAX);
        (line, col)
    }

    /// 1-based line of a byte offset.
    pub fn line_of(&self, offset: usize) -> u32 {
        self.locate(offset).0
    }
}

/// A parsed `bp-lint: allow(...)` directive.
#[derive(Debug, Clone)]
pub struct Directive {
    /// Rules the directive suppresses.
    pub rules: Vec<String>,
    /// The mandatory written reason (empty string when omitted — L000).
    pub reason: String,
    /// Line the directive comment starts on.
    pub line: u32,
    /// Line the directive applies to: its own line when code shares it,
    /// otherwise the next line.
    pub target_line: u32,
}

/// Parses one comment body for an allow directive. Accepts
/// `bp-lint: allow(L001): reason` and `bp-lint: allow(L001, L004): reason`.
pub fn parse_directive(comment: &str) -> Option<(Vec<String>, String)> {
    let at = comment.find("bp-lint:")?;
    let rest = comment[at + "bp-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    // Only real rule ids (`L` + digits) make a directive; this keeps prose
    // like "use `bp-lint: allow(...)`" in docs from parsing as one.
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty()
        || !rules.iter().all(|r| {
            r.len() == 4 && r.starts_with('L') && r[1..].bytes().all(|b| b.is_ascii_digit())
        })
    {
        return None;
    }
    let tail = rest[close + 1..].trim_start();
    let reason = tail.strip_prefix(':').map_or("", str::trim).to_string();
    Some((rules, reason))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_map_locates() {
        let m = LineMap::new("ab\ncd\n");
        assert_eq!(m.locate(0), (1, 1));
        assert_eq!(m.locate(1), (1, 2));
        assert_eq!(m.locate(3), (2, 1));
        assert_eq!(m.locate(4), (2, 2));
    }

    #[test]
    fn directive_parses_with_reason() {
        let (rules, reason) =
            parse_directive("// bp-lint: allow(L002): poisoning is unrecoverable here").unwrap();
        assert_eq!(rules, vec!["L002"]);
        assert_eq!(reason, "poisoning is unrecoverable here");
    }

    #[test]
    fn directive_multiple_rules_and_missing_reason() {
        let (rules, reason) = parse_directive("// bp-lint: allow(L001, L003)").unwrap();
        assert_eq!(rules, vec!["L001", "L003"]);
        assert!(reason.is_empty());
    }

    #[test]
    fn non_directives_ignored() {
        assert!(parse_directive("// just a comment about bp-lint").is_none());
        assert!(parse_directive("// bp-lint: allow()").is_none());
    }
}
