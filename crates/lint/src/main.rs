//! The `bp-lint` binary.
//!
//! ```text
//! bp-lint check [--root PATH]   # exit 0 clean, 1 violations, 2 usage/io
//! bp-lint fix   [--root PATH]   # apply mechanically safe rewrites
//! bp-lint rules                 # list the rule set
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return ExitCode::from(2);
    };
    match cmd.as_str() {
        "check" => match parse_root(&args[1..]) {
            Ok(root) => run_check(&root),
            Err(msg) => fail_usage(&msg),
        },
        "fix" => match parse_root(&args[1..]) {
            Ok(root) => run_fix(&root),
            Err(msg) => fail_usage(&msg),
        },
        "rules" => {
            for rule in bp_lint::rules::all_rules() {
                println!("{}  {}", rule.id(), rule.description());
            }
            ExitCode::SUCCESS
        }
        other => fail_usage(&format!("unknown subcommand `{other}`")),
    }
}

fn usage() {
    eprintln!(
        "bp-lint: repo-specific static analysis for the provenance store\n\
         \n\
         usage:\n\
         \x20 bp-lint check [--root PATH]   check the workspace (exit 1 on violations)\n\
         \x20 bp-lint fix   [--root PATH]   apply mechanically safe rewrites\n\
         \x20 bp-lint rules                 list the rule set\n\
         \n\
         Suppress a finding with `// bp-lint: allow(L00X): <reason>` on or\n\
         above the offending line; the reason is mandatory."
    );
}

fn fail_usage(msg: &str) -> ExitCode {
    eprintln!("bp-lint: {msg}");
    usage();
    ExitCode::from(2)
}

/// Parses `[--root PATH]`, defaulting to the workspace root (the nearest
/// ancestor containing a top-level `Cargo.toml` with `[workspace]`, so the
/// tool works from any crate directory).
fn parse_root(args: &[String]) -> Result<PathBuf, String> {
    let mut it = args.iter();
    let mut root: Option<PathBuf> = None;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let p = it.next().ok_or("--root needs a path")?;
                root = Some(PathBuf::from(p));
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    match root {
        Some(r) => Ok(r),
        None => find_workspace_root()
            .ok_or_else(|| "could not locate workspace root; pass --root".to_string()),
    }
}

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn run_check(root: &Path) -> ExitCode {
    match bp_lint::check_root(root) {
        Ok(report) => {
            for v in &report.violations {
                println!("{v}");
            }
            let n = report.violations.len();
            let s = report.suppressions.len();
            if n == 0 {
                println!(
                    "bp-lint: clean — {} files, 0 violations, {} allowlisted",
                    report.files, s
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "bp-lint: FAILED — {} files, {} violation{}, {} allowlisted",
                    report.files,
                    n,
                    if n == 1 { "" } else { "s" },
                    s
                );
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("bp-lint: io error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_fix(root: &Path) -> ExitCode {
    match bp_lint::fixer::fix_tree(root) {
        Ok(fixes) => {
            for f in &fixes {
                println!("{}:{}: fixed: {}", f.path, f.line, f.note);
            }
            println!("bp-lint: applied {} fix(es)", fixes.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bp-lint: io error: {e}");
            ExitCode::from(2)
        }
    }
}
