//! The `bp-lint` binary.
//!
//! ```text
//! bp-lint check [--root PATH] [--sarif FILE] [--timing] [--jobs N] [--no-cache]
//!               [--audit-allowlist]
//!                               # exit 0 clean, 1 violations/stale allows, 2 usage/io
//! bp-lint fix   [--root PATH]   # apply mechanically safe rewrites
//! bp-lint rules                 # list the rule set
//! ```

use bp_lint::engine::{CheckOptions, Engine};
use bp_lint::sarif::{self, RuleMeta};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return ExitCode::from(2);
    };
    match cmd.as_str() {
        "check" => match CheckArgs::parse(&args[1..]) {
            Ok(a) => run_check(&a),
            Err(msg) => fail_usage(&msg),
        },
        "fix" => match parse_root(&args[1..]) {
            Ok(root) => run_fix(&root),
            Err(msg) => fail_usage(&msg),
        },
        "rules" => {
            for r in rule_metas() {
                println!("{}  {}", r.id, r.description);
            }
            ExitCode::SUCCESS
        }
        other => fail_usage(&format!("unknown subcommand `{other}`")),
    }
}

/// Metadata for every rule, per-file and whole-program alike, in id
/// order — shared by `rules` and the SARIF driver block.
fn rule_metas() -> Vec<RuleMeta> {
    let mut out: Vec<RuleMeta> = bp_lint::rules::all_rules()
        .iter()
        .map(|r| RuleMeta {
            id: r.id(),
            description: r.description().to_string(),
        })
        .collect();
    out.extend(bp_lint::rules::all_global_rules().iter().map(|r| RuleMeta {
        id: r.id(),
        description: r.description().to_string(),
    }));
    out.sort_by_key(|r| r.id);
    out
}

fn usage() {
    eprintln!(
        "bp-lint: repo-specific static analysis for the provenance store\n\
         \n\
         usage:\n\
         \x20 bp-lint check [--root PATH] [--sarif FILE] [--timing] [--jobs N] [--no-cache]\n\
         \x20                               check the workspace (exit 1 on violations)\n\
         \x20 bp-lint fix   [--root PATH]   apply mechanically safe rewrites\n\
         \x20 bp-lint rules                 list the rule set\n\
         \n\
         check flags:\n\
         \x20 --sarif FILE   also write findings as SARIF 2.1.0 to FILE\n\
         \x20 --timing       print per-rule and slowest-file wall times\n\
         \x20 --jobs N       analysis worker threads (default: all cores)\n\
         \x20 --no-cache     ignore and do not update the incremental cache\n\
         \x20 --audit-allowlist  fail when an allow directive suppresses nothing\n\
         \n\
         Suppress a finding with `// bp-lint: allow(L00X): <reason>` on or\n\
         above the offending line; the reason is mandatory."
    );
}

fn fail_usage(msg: &str) -> ExitCode {
    eprintln!("bp-lint: {msg}");
    usage();
    ExitCode::from(2)
}

/// Parsed `check` arguments.
struct CheckArgs {
    root: PathBuf,
    sarif: Option<PathBuf>,
    audit_allowlist: bool,
    opts: CheckOptions,
}

impl CheckArgs {
    fn parse(args: &[String]) -> Result<CheckArgs, String> {
        let mut it = args.iter();
        let mut root: Option<PathBuf> = None;
        let mut sarif = None;
        let mut audit_allowlist = false;
        let mut opts = CheckOptions::default();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--root" => {
                    let p = it.next().ok_or("--root needs a path")?;
                    root = Some(PathBuf::from(p));
                }
                "--sarif" => {
                    let p = it.next().ok_or("--sarif needs a file path")?;
                    sarif = Some(PathBuf::from(p));
                }
                "--jobs" => {
                    let n = it.next().ok_or("--jobs needs a count")?;
                    let n: usize = n
                        .parse()
                        .map_err(|_| format!("--jobs: `{n}` is not a number"))?;
                    if n == 0 {
                        return Err("--jobs must be at least 1".to_string());
                    }
                    opts.jobs = Some(n);
                }
                "--timing" => opts.timing = true,
                "--no-cache" => opts.no_cache = true,
                "--audit-allowlist" => audit_allowlist = true,
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        let root = match root {
            Some(r) => r,
            None => find_workspace_root()
                .ok_or_else(|| "could not locate workspace root; pass --root".to_string())?,
        };
        Ok(CheckArgs {
            root,
            sarif,
            audit_allowlist,
            opts,
        })
    }
}

/// Parses `[--root PATH]`, defaulting to the workspace root (the nearest
/// ancestor containing a top-level `Cargo.toml` with `[workspace]`, so the
/// tool works from any crate directory).
fn parse_root(args: &[String]) -> Result<PathBuf, String> {
    let mut it = args.iter();
    let mut root: Option<PathBuf> = None;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let p = it.next().ok_or("--root needs a path")?;
                root = Some(PathBuf::from(p));
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    match root {
        Some(r) => Ok(r),
        None => find_workspace_root()
            .ok_or_else(|| "could not locate workspace root; pass --root".to_string()),
    }
}

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn run_check(args: &CheckArgs) -> ExitCode {
    match Engine::new().check_tree_with(&args.root, &args.opts) {
        Ok(report) => {
            for v in &report.violations {
                println!("{v}");
            }
            if let Some(path) = &args.sarif {
                let doc = sarif::render(&report.violations, &rule_metas());
                if let Err(e) = std::fs::write(path, doc) {
                    eprintln!("bp-lint: io error writing {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            if args.opts.timing {
                print_timing(&report);
            }
            let stale = if args.audit_allowlist {
                for s in &report.stale_allows {
                    println!("{s}");
                }
                report.stale_allows.len()
            } else {
                0
            };
            let n = report.violations.len();
            let s = report.suppressions.len();
            if n == 0 && stale > 0 {
                println!(
                    "bp-lint: FAILED — {} files, 0 violations, {} allowlisted, {} stale allow{}",
                    report.files,
                    s,
                    stale,
                    if stale == 1 { "" } else { "s" }
                );
                ExitCode::from(1)
            } else if n == 0 {
                println!(
                    "bp-lint: clean — {} files, 0 violations, {} allowlisted",
                    report.files, s
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "bp-lint: FAILED — {} files, {} violation{}, {} allowlisted",
                    report.files,
                    n,
                    if n == 1 { "" } else { "s" },
                    s
                );
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("bp-lint: io error: {e}");
            ExitCode::from(2)
        }
    }
}

fn print_timing(report: &bp_lint::engine::CheckReport) {
    eprintln!(
        "bp-lint: timing — {:.1?} total, {} files ({} cached)",
        report.total_time, report.files, report.cached_files
    );
    eprintln!("  per rule:");
    for (id, t) in &report.rule_times {
        eprintln!("    {id}  {t:>10.1?}");
    }
    eprintln!("  slowest files:");
    for (path, t) in report.file_times.iter().take(10) {
        eprintln!("    {path}  {t:.1?}");
    }
}

fn run_fix(root: &Path) -> ExitCode {
    match bp_lint::fixer::fix_tree(root) {
        Ok(fixes) => {
            for f in &fixes {
                println!("{}:{}: fixed: {}", f.path, f.line, f.note);
            }
            println!("bp-lint: applied {} fix(es)", fixes.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bp-lint: io error: {e}");
            ExitCode::from(2)
        }
    }
}
