//! Content-hash incremental cache.
//!
//! Per-file analysis (token rules + directives + the interprocedural
//! fact summary) is pure in the file's contents, so warm runs can skip
//! re-lexing/re-parsing files whose FNV-1a hash is unchanged. The cache
//! is a line-oriented text file under `<root>/target/bp-lint/cache`
//! keyed by a rules fingerprint — any rule-set change invalidates the
//! whole cache. Global rules (L007–L010) always re-run over the cached
//! summaries; only the per-file tier is memoized. Any parse hiccup
//! silently yields an empty cache: the cache is a pure accelerator,
//! never a source of truth.

use crate::diag::{Directive, Severity, Violation};
use crate::symbols::{CallFact, FileSummary, FnSummary};
use std::collections::HashMap;
use std::io::Write;
use std::path::Path;

/// Cached result of per-file analysis.
#[derive(Debug, Clone, Default)]
pub struct CachedFile {
    /// FNV-1a hash of the file contents.
    pub hash: u64,
    /// Raw (pre-suppression) token-rule violations, including L000.
    pub raw: Vec<Violation>,
    /// Allowlist directives (valid ones, with reasons).
    pub directives: Vec<Directive>,
    /// The interprocedural fact summary.
    pub summary: FileSummary,
}

/// An in-memory cache, keyed by workspace-relative path.
#[derive(Debug, Default)]
pub struct Cache {
    entries: HashMap<String, CachedFile>,
}

impl Cache {
    /// A hit for `path` with matching contents hash, if present.
    pub fn get(&self, path: &str, hash: u64) -> Option<&CachedFile> {
        self.entries.get(path).filter(|e| e.hash == hash)
    }

    /// Number of cached files.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// FNV-1a over the source bytes.
pub fn hash_src(src: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in src.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The cache file location for a workspace root.
pub fn cache_path(root: &Path) -> std::path::PathBuf {
    root.join("target").join("bp-lint").join("cache")
}

/// Interns a rule id back to its `&'static str` form; unknown ids make
/// the cache entry unusable (rule set changed under us).
fn static_rule_id(id: &str) -> Option<&'static str> {
    const IDS: &[&str] = &[
        "L000", "L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008", "L009", "L010",
    ];
    IDS.iter().find(|r| **r == id).copied()
}

// ----- field escaping ---------------------------------------------------

/// Escapes a free-text field so it survives the tab/newline/list framing.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0A"),
            '|' => out.push_str("%7C"),
            ',' => out.push_str("%2C"),
            '=' => out.push_str("%3D"),
            _ => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let b = s.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if b[i] == b'%' && i + 2 < b.len() {
            let hex = &s[i + 1..i + 3];
            if let Ok(v) = u8::from_str_radix(hex, 16) {
                out.push(v as char);
                i += 3;
                continue;
            }
        }
        // Multi-byte UTF-8 passes through untouched (never starts with %).
        let ch_len = utf8_len(b[i]);
        out.push_str(&s[i..i + ch_len]);
        i += ch_len;
    }
    out
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn flag(b: bool) -> &'static str {
    if b {
        "1"
    } else {
        "0"
    }
}

fn list_pairs_str(pairs: &[(usize, String)]) -> String {
    if pairs.is_empty() {
        return "-".to_string();
    }
    pairs
        .iter()
        .map(|(p, v)| format!("{p}={}", esc(v)))
        .collect::<Vec<_>>()
        .join("|")
}

fn list_pairs_usize(pairs: &[(usize, usize)]) -> String {
    if pairs.is_empty() {
        return "-".to_string();
    }
    pairs
        .iter()
        .map(|(p, v)| format!("{p}={v}"))
        .collect::<Vec<_>>()
        .join("|")
}

fn parse_pairs_str(s: &str) -> Option<Vec<(usize, String)>> {
    if s == "-" {
        return Some(Vec::new());
    }
    s.split('|')
        .map(|item| {
            let (p, v) = item.split_once('=')?;
            Some((p.parse().ok()?, unesc(v)))
        })
        .collect()
}

fn parse_pairs_usize(s: &str) -> Option<Vec<(usize, usize)>> {
    if s == "-" {
        return Some(Vec::new());
    }
    s.split('|')
        .map(|item| {
            let (p, v) = item.split_once('=')?;
            Some((p.parse().ok()?, v.parse().ok()?))
        })
        .collect()
}

fn list_strs(items: &[String]) -> String {
    if items.is_empty() {
        return "-".to_string();
    }
    items.iter().map(|s| esc(s)).collect::<Vec<_>>().join(",")
}

fn parse_strs(s: &str) -> Vec<String> {
    if s == "-" {
        return Vec::new();
    }
    s.split(',').map(unesc).collect()
}

// ----- save -------------------------------------------------------------

/// Serializes entries to the cache file. Creates parent directories;
/// callers gate on the root's `target/` dir already existing so fixture
/// roots are never polluted.
pub fn save(
    path: &Path,
    fingerprint: &str,
    entries: &[(String, CachedFile)],
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut out = String::with_capacity(64 * 1024);
    out.push_str(&format!("bp-lint-cache v2 {}\n", esc(fingerprint)));
    for (rel, e) in entries {
        out.push_str(&format!("F\t{:016x}\t{}\n", e.hash, esc(rel)));
        let s = &e.summary;
        out.push_str(&format!(
            "U\t{}\t{}\n",
            esc(&s.crate_name),
            flag(s.whole_file_test)
        ));
        for v in &e.raw {
            out.push_str(&format!(
                "V\t{}\t{}\t{}\t{}\n",
                v.rule,
                v.line,
                v.col,
                esc(&v.message)
            ));
        }
        for d in &e.directives {
            out.push_str(&format!(
                "D\t{}\t{}\t{}\t{}\n",
                d.line,
                d.target_line,
                list_strs(&d.rules),
                esc(&d.reason)
            ));
        }
        for f in &s.fns {
            out.push_str(&format!(
                "N\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                esc(&f.name),
                esc(&f.impl_type),
                flag(f.is_pub),
                flag(f.is_test),
                f.line,
                f.col,
                flag(f.mentions_deadline),
                list_strs(&f.param_names),
                list_strs(&f.param_tys)
            ));
            for c in &f.calls {
                out.push_str(&format!(
                    "C\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                    esc(&c.name),
                    esc(&c.qual),
                    esc(&c.recv),
                    flag(c.is_method),
                    c.line,
                    c.col,
                    flag(c.in_loop),
                    c.argc,
                    list_pairs_str(&c.str_args),
                    list_pairs_str(&c.fmt_args),
                    list_pairs_usize(&c.param_args),
                    list_pairs_str(&c.path_args)
                ));
            }
        }
    }
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(out.as_bytes())?;
    }
    std::fs::rename(&tmp, path)
}

// ----- load -------------------------------------------------------------

/// Loads the cache; returns empty on any mismatch, version skew, or
/// parse problem.
pub fn load(path: &Path, fingerprint: &str) -> Cache {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Cache::default();
    };
    parse(&text, fingerprint).unwrap_or_default()
}

fn parse(text: &str, fingerprint: &str) -> Option<Cache> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let expect = format!("bp-lint-cache v2 {}", esc(fingerprint));
    if header != expect {
        return None;
    }
    let mut cache = Cache::default();
    let mut cur: Option<(String, CachedFile)> = None;
    for line in lines {
        let mut fields = line.split('\t');
        let tag = fields.next()?;
        let rest: Vec<&str> = fields.collect();
        match tag {
            "F" => {
                if let Some((rel, e)) = cur.take() {
                    cache.entries.insert(rel, e);
                }
                if rest.len() != 2 {
                    return None;
                }
                let hash = u64::from_str_radix(rest[0], 16).ok()?;
                let rel = unesc(rest[1]);
                cur = Some((
                    rel.clone(),
                    CachedFile {
                        hash,
                        summary: FileSummary {
                            rel_path: rel,
                            ..FileSummary::default()
                        },
                        ..CachedFile::default()
                    },
                ));
            }
            "U" => {
                let (_, e) = cur.as_mut()?;
                if rest.len() != 2 {
                    return None;
                }
                e.summary.crate_name = unesc(rest[0]);
                e.summary.whole_file_test = rest[1] == "1";
            }
            "V" => {
                let (rel, e) = cur.as_mut()?;
                if rest.len() != 4 {
                    return None;
                }
                e.raw.push(Violation {
                    rule: static_rule_id(rest[0])?,
                    path: rel.clone(),
                    line: rest[1].parse().ok()?,
                    col: rest[2].parse().ok()?,
                    message: unesc(rest[3]),
                    severity: Severity::Error,
                });
            }
            "D" => {
                let (_, e) = cur.as_mut()?;
                if rest.len() != 4 {
                    return None;
                }
                e.directives.push(Directive {
                    line: rest[0].parse().ok()?,
                    target_line: rest[1].parse().ok()?,
                    rules: parse_strs(rest[2]),
                    reason: unesc(rest[3]),
                });
            }
            "N" => {
                let (_, e) = cur.as_mut()?;
                if rest.len() != 9 {
                    return None;
                }
                e.summary.fns.push(FnSummary {
                    name: unesc(rest[0]),
                    impl_type: unesc(rest[1]),
                    is_pub: rest[2] == "1",
                    is_test: rest[3] == "1",
                    line: rest[4].parse().ok()?,
                    col: rest[5].parse().ok()?,
                    mentions_deadline: rest[6] == "1",
                    param_names: parse_strs(rest[7]),
                    param_tys: parse_strs(rest[8]),
                    calls: Vec::new(),
                });
            }
            "C" => {
                let (_, e) = cur.as_mut()?;
                if rest.len() != 12 {
                    return None;
                }
                let f = e.summary.fns.last_mut()?;
                f.calls.push(CallFact {
                    name: unesc(rest[0]),
                    qual: unesc(rest[1]),
                    recv: unesc(rest[2]),
                    is_method: rest[3] == "1",
                    line: rest[4].parse().ok()?,
                    col: rest[5].parse().ok()?,
                    in_loop: rest[6] == "1",
                    argc: rest[7].parse().ok()?,
                    str_args: parse_pairs_str(rest[8])?,
                    fmt_args: parse_pairs_str(rest[9])?,
                    param_args: parse_pairs_usize(rest[10])?,
                    path_args: parse_pairs_str(rest[11])?,
                });
            }
            _ => return None,
        }
    }
    if let Some((rel, e)) = cur.take() {
        cache.entries.insert(rel, e);
    }
    Some(cache)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry() -> (String, CachedFile) {
        let summary = FileSummary {
            rel_path: "crates/storage/src/store.rs".into(),
            crate_name: "storage".into(),
            whole_file_test: false,
            fns: vec![FnSummary {
                name: "commit".into(),
                impl_type: "ProvenanceStore".into(),
                is_pub: false,
                is_test: false,
                line: 10,
                col: 5,
                mentions_deadline: false,
                param_names: vec!["self".into(), "op".into()],
                param_tys: vec!["Self".into(), "& Op , weird|chars".into()],
                calls: vec![CallFact {
                    name: "append".into(),
                    qual: String::new(),
                    recv: "self.wal".into(),
                    is_method: true,
                    line: 12,
                    col: 9,
                    in_loop: false,
                    argc: 1,
                    str_args: vec![(0, "tab\there".into())],
                    fmt_args: vec![(0, "bench.query.*.latency_us".into())],
                    param_args: vec![(0, 1)],
                    path_args: vec![(0, "self.payload".into())],
                }],
            }],
        };
        let entry = CachedFile {
            hash: hash_src("fn main() {}"),
            raw: vec![Violation {
                rule: "L002",
                path: "crates/storage/src/store.rs".into(),
                line: 3,
                col: 7,
                message: "message with\nnewline and\ttab and = and | and , and %".into(),
                severity: Severity::Error,
            }],
            directives: vec![Directive {
                rules: vec!["L001".into(), "L002".into()],
                reason: "justified, with comma".into(),
                line: 2,
                target_line: 3,
            }],
            summary,
        };
        ("crates/storage/src/store.rs".to_string(), entry)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let dir = std::env::temp_dir().join(format!("bp-lint-cache-test-{}", std::process::id()));
        let path = dir.join("cache");
        let (rel, entry) = sample_entry();
        save(&path, "fp1", &[(rel.clone(), entry.clone())]).expect("save");
        let cache = load(&path, "fp1");
        let hit = cache.get(&rel, entry.hash).expect("hit");
        assert_eq!(hit.summary, entry.summary);
        assert_eq!(hit.raw.len(), 1);
        assert_eq!(hit.raw[0].message, entry.raw[0].message);
        assert_eq!(hit.directives.len(), 1);
        assert_eq!(hit.directives[0].rules, entry.directives[0].rules);
        assert_eq!(hit.directives[0].reason, entry.directives[0].reason);
        // Wrong hash → miss.
        assert!(cache.get(&rel, entry.hash ^ 1).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_mismatch_empties_cache() {
        let dir = std::env::temp_dir().join(format!("bp-lint-cache-fp-{}", std::process::id()));
        let path = dir.join("cache");
        let (rel, entry) = sample_entry();
        save(&path, "fp1", &[(rel, entry)]).expect("save");
        assert!(load(&path, "fp2").is_empty());
        assert_eq!(load(&path, "fp1").len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_is_ignored() {
        let dir = std::env::temp_dir().join(format!("bp-lint-cache-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("cache");
        std::fs::write(&path, "bp-lint-cache v2 fp1\nZ\tnot a record\n").expect("write");
        assert!(load(&path, "fp1").is_empty());
        assert!(load(&dir.join("missing"), "fp1").is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hash_is_stable_and_content_sensitive() {
        assert_eq!(hash_src("abc"), hash_src("abc"));
        assert_ne!(hash_src("abc"), hash_src("abd"));
    }
}
