//! The rule set: repo-specific invariants L001–L006.
//!
//! Rules are token-pattern checks over the [`FileContext`]; each one
//! encodes an invariant the provenance store's correctness story depends
//! on. See the crate docs for the one-line summaries and DESIGN.md for the
//! full rationale.

use crate::diag::Violation;
use crate::engine::{FileContext, FnInfo};
use std::collections::BTreeSet;

/// A single lint rule.
pub trait Rule {
    /// Stable rule id (`L001`…).
    fn id(&self) -> &'static str;
    /// One-line description for `bp-lint rules` and docs.
    fn description(&self) -> &'static str;
    /// Runs the rule over one file.
    fn check(&self, ctx: &FileContext<'_>) -> Vec<Violation>;
}

/// Every built-in rule, in id order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoRawClock),
        Box::new(NoPanicInLib),
        Box::new(NoLossyCastInCodec),
        Box::new(DeterministicSerialization),
        Box::new(SloGuard),
        Box::new(NoRawLog),
    ]
}

/// Library crates whose non-test code must not abort (L002): the capture
/// and query paths must degrade, not panic.
const LIB_CRATES: [&str; 6] = [
    "crates/core/src/",
    "crates/storage/src/",
    "crates/places/src/",
    "crates/graph/src/",
    "crates/text/src/",
    "crates/query/src/",
];

/// Crates covered by L006: everything built as a library, including the
/// observability and simulator crates. User-facing printing belongs to
/// bp-cli and the bench/lint binaries, which are deliberately absent.
const NO_RAW_LOG_CRATES: [&str; 8] = [
    "crates/core/src/",
    "crates/storage/src/",
    "crates/places/src/",
    "crates/graph/src/",
    "crates/text/src/",
    "crates/query/src/",
    "crates/obs/src/",
    "crates/sim/src/",
];

/// The one sanctioned raw-stderr site: `bp_obs::log`'s own sink (L006).
const RAW_LOG_SINK_FILE: &str = "crates/obs/src/log.rs";

/// Printing macros L006 flags.
const RAW_LOG_MACROS: [&str; 5] = ["println", "eprintln", "print", "eprint", "dbg"];

/// Files forming the on-disk codec (L003): every byte written here must
/// come from a checked conversion.
const CODEC_FILES: [&str; 5] = [
    "crates/storage/src/varint.rs",
    "crates/storage/src/record.rs",
    "crates/storage/src/wal.rs",
    "crates/storage/src/crc.rs",
    "crates/text/src/index.rs",
];

/// Integer target types whose `as` casts can silently truncate or
/// reinterpret (L003).
const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Function-call names that feed bytes to an encoder or WAL frame (L004).
const ENCODE_SINKS: [&str; 8] = [
    "encode",
    "write_u64",
    "write_u32",
    "write_i64",
    "write_str",
    "write_bytes",
    "append",
    "serialize",
];

/// Iterator methods whose order leaks the hasher's state (L004).
const ORDER_LEAKING_ITERS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

// ---------------------------------------------------------------------------
// L001 — no-raw-clock
// ---------------------------------------------------------------------------

/// L001: all monotonic/wall-clock reads go through `bp_obs::clock`.
pub struct NoRawClock;

impl Rule for NoRawClock {
    fn id(&self) -> &'static str {
        "L001"
    }
    fn description(&self) -> &'static str {
        "Instant::now()/SystemTime::now() only inside crates/obs/src/clock.rs; \
         everything else uses bp_obs::clock so tests can mock time"
    }
    fn check(&self, ctx: &FileContext<'_>) -> Vec<Violation> {
        if ctx.rel_path == "crates/obs/src/clock.rs" {
            return Vec::new();
        }
        let mut out = Vec::new();
        let toks = &ctx.lexed.tokens;
        // Token scans look behind and ahead of `i`; an index loop is the
        // clearer idiom here (same below).
        #[allow(clippy::needless_range_loop)]
        for i in 0..toks.len().saturating_sub(3) {
            let head = ctx.text(i);
            if (head == "Instant" || head == "SystemTime")
                && ctx.is(i + 1, ":")
                && ctx.is(i + 2, ":")
                && ctx.is(i + 3, "now")
                && !ctx.in_test(toks[i].start)
            {
                out.push(ctx.violation(
                    self.id(),
                    i,
                    format!(
                        "raw `{head}::now()` call; route timing through \
                         bp_obs::clock (ClockHandle / unix_time_ms) so tests can mock time"
                    ),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// L002 — no-panic-in-lib
// ---------------------------------------------------------------------------

/// L002: library crates return errors instead of aborting.
pub struct NoPanicInLib;

impl Rule for NoPanicInLib {
    fn id(&self) -> &'static str {
        "L002"
    }
    fn description(&self) -> &'static str {
        "no unwrap()/expect()/panic!/unreachable! in non-test code of \
         core, storage, places, graph, text, query — degrade, don't abort"
    }
    fn check(&self, ctx: &FileContext<'_>) -> Vec<Violation> {
        if !LIB_CRATES.iter().any(|p| ctx.rel_path.starts_with(p)) {
            return Vec::new();
        }
        let mut out = Vec::new();
        let toks = &ctx.lexed.tokens;
        #[allow(clippy::needless_range_loop)]
        for i in 0..toks.len() {
            if ctx.in_test(toks[i].start) {
                continue;
            }
            let t = ctx.text(i);
            // `.unwrap(` / `.expect(` method calls.
            if (t == "unwrap" || t == "expect") && i > 0 && ctx.is(i - 1, ".") && ctx.is(i + 1, "(")
            {
                out.push(ctx.violation(
                    self.id(),
                    i,
                    format!(
                        "`.{t}()` in a library crate: capture/query paths must \
                         return an error (or degrade) instead of aborting"
                    ),
                ));
            }
            // panicking macros.
            if matches!(t, "panic" | "unreachable" | "todo" | "unimplemented") && ctx.is(i + 1, "!")
            {
                out.push(ctx.violation(
                    self.id(),
                    i,
                    format!(
                        "`{t}!` in a library crate: capture/query paths must \
                         return an error (or degrade) instead of aborting"
                    ),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// L003 — no-lossy-cast-in-codec
// ---------------------------------------------------------------------------

/// L003: the codec files use checked conversions, never `as`.
pub struct NoLossyCastInCodec;

impl Rule for NoLossyCastInCodec {
    fn id(&self) -> &'static str {
        "L003"
    }
    fn description(&self) -> &'static str {
        "no integer `as` casts in storage/{varint,record,wal,crc}.rs and \
         text/index.rs — use try_from with an error path"
    }
    fn check(&self, ctx: &FileContext<'_>) -> Vec<Violation> {
        if !CODEC_FILES.contains(&ctx.rel_path.as_str()) {
            return Vec::new();
        }
        let mut out = Vec::new();
        let toks = &ctx.lexed.tokens;
        #[allow(clippy::needless_range_loop)]
        for i in 0..toks.len().saturating_sub(1) {
            if ctx.text(i) == "as"
                && INT_TYPES.contains(&ctx.text(i + 1))
                && !ctx.in_test(toks[i].start)
            {
                out.push(ctx.violation(
                    self.id(),
                    i,
                    format!(
                        "numeric `as {}` cast in a codec file can silently \
                         truncate on-disk values; use try_from with an error path",
                        ctx.text(i + 1)
                    ),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// L004 — deterministic-serialization
// ---------------------------------------------------------------------------

/// L004: no default-hasher map iteration inside functions that feed an
/// encoder/WAL frame — on-disk bytes must be replay-deterministic.
pub struct DeterministicSerialization;

impl DeterministicSerialization {
    /// Collects struct fields declared with a hash-container type.
    fn hash_fields(ctx: &FileContext<'_>) -> BTreeSet<String> {
        let mut fields = BTreeSet::new();
        let toks = &ctx.lexed.tokens;
        // Pattern: `ident : … HashMap|HashSet … ,|}` inside struct bodies.
        // A simple approximation: any `name :` whose following tokens up
        // to the next `,` or `}` at the same depth mention HashMap/HashSet.
        for i in 0..toks.len() {
            if ctx.text(i) != "struct" {
                continue;
            }
            // find `{`
            let mut j = i + 1;
            let mut body = None;
            while j < toks.len() && j < i + 40 {
                match ctx.text(j) {
                    "{" => {
                        body = Some((j, ctx.match_close[j]));
                        break;
                    }
                    ";" | "(" => break,
                    _ => j += 1,
                }
            }
            let Some((open, close)) = body else { continue };
            if close == usize::MAX {
                continue;
            }
            let mut k = open + 1;
            while k < close {
                // field name followed by `:`
                if toks[k].kind == crate::lexer::TokenKind::Ident && ctx.is(k + 1, ":") {
                    let name = ctx.text(k).to_string();
                    let mut m = k + 2;
                    let mut mentions_hash = false;
                    let mut depth = 0i32;
                    while m < close {
                        match ctx.text(m) {
                            "<" => depth += 1,
                            ">" => depth -= 1,
                            "," if depth <= 0 => break,
                            "HashMap" | "HashSet" => mentions_hash = true,
                            _ => {}
                        }
                        m += 1;
                    }
                    if mentions_hash {
                        fields.insert(name);
                    }
                    k = m;
                } else {
                    k += 1;
                }
            }
        }
        fields
    }

    /// Collects local bindings / params with a hash-container type inside
    /// one function.
    fn hash_locals(ctx: &FileContext<'_>, f: &FnInfo) -> BTreeSet<String> {
        let mut names = BTreeSet::new();
        let toks = &ctx.lexed.tokens;
        // Params: split on top-level commas; a param mentioning
        // HashMap/HashSet marks its leading identifier.
        let (ps, pe) = f.params;
        let mut start = ps + 1;
        let mut depth = 0i32;
        for j in ps + 1..pe.saturating_sub(1) {
            let t = ctx.text(j);
            match t {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth -= 1,
                "," if depth == 0 => {
                    mark_param(ctx, start, j, &mut names);
                    start = j + 1;
                }
                _ => {}
            }
        }
        mark_param(ctx, start, pe.saturating_sub(1), &mut names);
        // Lets: `let [mut] NAME … ;` whose statement mentions a hash type.
        if let Some((bs, be)) = f.body {
            let mut i = bs + 1;
            while i < be {
                if ctx.text(i) == "let" {
                    let mut j = i + 1;
                    if ctx.is(j, "mut") {
                        j += 1;
                    }
                    if j < be && toks[j].kind == crate::lexer::TokenKind::Ident {
                        let name = ctx.text(j).to_string();
                        // Scan to the end of the statement at brace depth 0.
                        let mut m = j + 1;
                        let mut mentions = false;
                        let mut d = 0i32;
                        while m < be {
                            match ctx.text(m) {
                                "(" | "[" | "{" => d += 1,
                                ")" | "]" | "}" => d -= 1,
                                ";" if d <= 0 => break,
                                "HashMap" | "HashSet" => mentions = true,
                                _ => {}
                            }
                            m += 1;
                        }
                        if mentions {
                            names.insert(name);
                        }
                        i = m;
                        continue;
                    }
                }
                i += 1;
            }
        }
        names
    }
}

fn mark_param(ctx: &FileContext<'_>, start: usize, end: usize, names: &mut BTreeSet<String>) {
    if start >= end {
        return;
    }
    let mut mentions = false;
    for j in start..end {
        if matches!(ctx.text(j), "HashMap" | "HashSet") {
            mentions = true;
        }
    }
    if !mentions {
        return;
    }
    // First ident before the `:` is the binding name (skip `mut`).
    let mut j = start;
    while j < end {
        let t = ctx.text(j);
        if t == "mut" {
            j += 1;
            continue;
        }
        if ctx.lexed.tokens[j].kind == crate::lexer::TokenKind::Ident && ctx.is(j + 1, ":") {
            names.insert(t.to_string());
        }
        break;
    }
}

impl Rule for DeterministicSerialization {
    fn id(&self) -> &'static str {
        "L004"
    }
    fn description(&self) -> &'static str {
        "no default-hasher HashMap/HashSet iteration inside functions that \
         feed an encoder/WAL frame — use BTreeMap or sort first"
    }
    fn check(&self, ctx: &FileContext<'_>) -> Vec<Violation> {
        let fields = Self::hash_fields(ctx);
        let mut out = Vec::new();
        for f in &ctx.fns {
            let Some((bs, be)) = f.body else { continue };
            if ctx.in_test(ctx.lexed.tokens[bs].start) {
                continue;
            }
            // Does this function call an encode sink?
            let mut has_sink = false;
            for i in bs..be {
                if ENCODE_SINKS.contains(&ctx.text(i)) && ctx.is(i + 1, "(") {
                    has_sink = true;
                    break;
                }
            }
            if !has_sink {
                continue;
            }
            let locals = Self::hash_locals(ctx, f);
            // Iteration sites: NAME.iter()/… or `for … in … NAME …`.
            for i in bs..be {
                let t = ctx.text(i);
                if ORDER_LEAKING_ITERS.contains(&t)
                    && ctx.is(i + 1, "(")
                    && i > 0
                    && ctx.is(i - 1, ".")
                {
                    // receiver: NAME or self.FIELD
                    let recv = i.checked_sub(2).map(|r| ctx.text(r)).unwrap_or("");
                    let is_field = i >= 4
                        && ctx.is(i - 3, ".")
                        && ctx.is(i - 4, "self")
                        && fields.contains(recv);
                    if locals.contains(recv) || is_field {
                        out.push(ctx.violation(
                            self.id(),
                            i,
                            format!(
                                "iterating `{recv}` (std HashMap/HashSet) in a function \
                                 that feeds an encoder: iteration order is nondeterministic, \
                                 so on-disk bytes would differ across runs — use \
                                 BTreeMap/BTreeSet or collect-and-sort before encoding"
                            ),
                        ));
                    }
                }
                if t == "for" {
                    // header: tokens between `in` and the loop `{`.
                    let mut j = i + 1;
                    let mut saw_in = false;
                    while j < be {
                        let tj = ctx.text(j);
                        if tj == "in" {
                            saw_in = true;
                        } else if tj == "{" {
                            break;
                        } else if saw_in {
                            let named_local = locals.contains(tj);
                            let named_field = fields.contains(tj)
                                && j >= 2
                                && ctx.is(j - 1, ".")
                                && ctx.is(j - 2, "self");
                            // `for x in m.iter()` is already caught by the
                            // method-call check above; don't double-report.
                            let method_call_follows = ctx.is(j + 1, ".")
                                && ORDER_LEAKING_ITERS.contains(&ctx.text(j + 2));
                            if (named_local || named_field) && !method_call_follows {
                                out.push(ctx.violation(
                                    self.id(),
                                    j,
                                    format!(
                                        "`for` loop over `{tj}` (std HashMap/HashSet) in a \
                                         function that feeds an encoder: iteration order is \
                                         nondeterministic, so on-disk bytes would differ across \
                                         runs — use BTreeMap/BTreeSet or collect-and-sort first"
                                    ),
                                ));
                                break;
                            }
                        }
                        j += 1;
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// L005 — slo-guard
// ---------------------------------------------------------------------------

/// L005: public query entry points consult `slo::Deadline` before
/// unbounded iteration (the paper's 200 ms bound, statically enforced).
pub struct SloGuard;

impl Rule for SloGuard {
    fn id(&self) -> &'static str {
        "L005"
    }
    fn description(&self) -> &'static str {
        "every pub fn in crates/query that executes a use-case query \
         (takes &ProvenanceBrowser and loops) must consult slo::Deadline"
    }
    fn check(&self, ctx: &FileContext<'_>) -> Vec<Violation> {
        if !ctx.rel_path.starts_with("crates/query/src/") {
            return Vec::new();
        }
        let mut out = Vec::new();
        for f in &ctx.fns {
            if !f.is_pub {
                continue;
            }
            let Some((bs, be)) = f.body else { continue };
            if ctx.in_test(ctx.lexed.tokens[f.fn_tok].start) {
                continue;
            }
            // Use-case entry point: takes the browser.
            let takes_browser =
                (f.params.0..f.params.1).any(|i| ctx.text(i) == "ProvenanceBrowser");
            if !takes_browser {
                continue;
            }
            let mut loops = false;
            let mut consults_deadline = false;
            for i in bs..be {
                match ctx.text(i) {
                    "for" | "while" | "loop" => loops = true,
                    "Deadline" => consults_deadline = true,
                    _ => {}
                }
            }
            if loops && !consults_deadline {
                out.push(ctx.violation(
                    self.id(),
                    f.fn_tok,
                    format!(
                        "pub fn `{}` executes a query with loops but never consults \
                         slo::Deadline; construct one from the budget and check \
                         `expired()` before unbounded iteration (E2's 200 ms bound)",
                        f.name
                    ),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// L006 — no-raw-log
// ---------------------------------------------------------------------------

/// L006: library crates emit structured log events, not bare prints.
///
/// A daemonized store ships its diagnostics as JSON lines with levels and
/// fields (`bp_obs::log`), which also land in the flight recorder; a bare
/// `eprintln!` bypasses filtering, the recorder, and any collector parsing
/// the stream. The log module's own stderr sink is the one exemption.
pub struct NoRawLog;

impl Rule for NoRawLog {
    fn id(&self) -> &'static str {
        "L006"
    }
    fn description(&self) -> &'static str {
        "no println!/eprintln!/print!/eprint!/dbg! in library-crate non-test \
         code — route diagnostics through bp_obs::log so they are leveled, \
         filterable, and flight-recorded (log.rs's own sink is exempt)"
    }
    fn check(&self, ctx: &FileContext<'_>) -> Vec<Violation> {
        if !NO_RAW_LOG_CRATES
            .iter()
            .any(|p| ctx.rel_path.starts_with(p))
            || ctx.rel_path == RAW_LOG_SINK_FILE
        {
            return Vec::new();
        }
        let mut out = Vec::new();
        let toks = &ctx.lexed.tokens;
        #[allow(clippy::needless_range_loop)]
        for i in 0..toks.len().saturating_sub(1) {
            let t = ctx.text(i);
            if RAW_LOG_MACROS.contains(&t) && ctx.is(i + 1, "!") && !ctx.in_test(toks[i].start) {
                out.push(ctx.violation(
                    self.id(),
                    i,
                    format!(
                        "`{t}!` in a library crate writes unstructured output; use \
                         bp_obs::log (debug/info/warn/error) so the event is leveled, \
                         filterable via BP_LOG, and lands in the flight recorder"
                    ),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{CheckReport, Engine};

    fn check(path: &str, src: &str) -> CheckReport {
        let mut r = CheckReport::default();
        Engine::new().check_file(path, src, &mut r);
        r
    }

    #[test]
    fn l001_flags_raw_clock_outside_clock_rs() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        let r = check("crates/graph/src/x.rs", src);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "L001");
        assert!(check("crates/obs/src/clock.rs", src).is_clean());
    }

    #[test]
    fn l002_flags_only_lib_crates_and_spares_unwrap_or() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\nfn g(x: Option<u32>) -> u32 { x.unwrap() }";
        let r = check("crates/storage/src/x.rs", src);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("unwrap"));
        assert!(
            check("crates/cli/src/x.rs", src).is_clean(),
            "cli may panic"
        );
    }

    #[test]
    fn l003_flags_codec_casts_only() {
        let src = "fn f(x: usize) -> u64 { x as u64 }";
        let r = check("crates/storage/src/varint.rs", src);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "L003");
        assert!(check("crates/storage/src/store.rs", src).is_clean());
        // float casts are not integer truncation
        let fsrc = "fn f(x: u64) -> f64 { x as f64 }";
        assert!(check("crates/storage/src/varint.rs", fsrc).is_clean());
    }

    #[test]
    fn l004_flags_hash_iteration_feeding_encoder() {
        let src = "use std::collections::HashMap;\n\
                   fn encode_all(m: &HashMap<u32, u32>, out: &mut Vec<u8>) {\n\
                       for (k, v) in m.iter() { write_u64(out, *k); write_u64(out, *v); }\n\
                   }\nfn write_u64(_o: &mut Vec<u8>, _v: u32) {}\n";
        let r = check("crates/storage/src/factorize.rs", src);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].rule, "L004");
    }

    #[test]
    fn l004_spares_btreemap_and_sinkless_fns() {
        let clean = "use std::collections::BTreeMap;\n\
                     fn encode_all(m: &BTreeMap<u32, u32>, out: &mut Vec<u8>) {\n\
                         for (k, v) in m.iter() { write_u64(out, *k); }\n\
                     }\nfn write_u64(_o: &mut Vec<u8>, _v: u32) {}\n";
        assert!(check("crates/storage/src/factorize.rs", clean).is_clean());
        let no_sink = "use std::collections::HashMap;\n\
                       fn tally(m: &HashMap<u32, u32>) -> u32 { m.values().sum() }\n";
        assert!(check("crates/storage/src/factorize.rs", no_sink).is_clean());
    }

    #[test]
    fn l005_requires_deadline_in_looping_pub_query_fns() {
        let bad = "pub fn search(b: &ProvenanceBrowser) -> u32 {\n\
                       let mut n = 0; for _ in 0..10 { n += 1; } n\n\
                   }\n";
        let r = check("crates/query/src/context.rs", bad);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "L005");
        let good = "pub fn search(b: &ProvenanceBrowser) -> u32 {\n\
                        let d = crate::slo::Deadline::unbounded();\n\
                        let mut n = 0; for _ in 0..10 { if d.expired() { break; } n += 1; } n\n\
                    }\n";
        assert!(check("crates/query/src/context.rs", good).is_clean());
        // Non-browser helpers and private fns are exempt.
        let helper = "pub fn rank(xs: &[u32]) -> u32 { let mut n = 0; for x in xs { n += x; } n }";
        assert!(check("crates/query/src/context.rs", helper).is_clean());
    }

    #[test]
    fn l006_flags_raw_prints_in_library_crates_only() {
        let src = "fn f() { eprintln!(\"recovered\"); }";
        let r = check("crates/storage/src/store.rs", src);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].rule, "L006");
        assert!(r.violations[0].message.contains("bp_obs::log"));
        // User-facing binaries may print freely.
        assert!(check("crates/cli/src/commands.rs", src).is_clean());
        assert!(check("crates/bench/src/bin/bench.rs", src).is_clean());
        assert!(check("crates/lint/src/main.rs", src).is_clean());
    }

    #[test]
    fn l006_exempts_the_log_sink_and_test_code() {
        let sink = "pub fn emit(line: &str) { eprintln!(\"{line}\"); }";
        assert!(check("crates/obs/src/log.rs", sink).is_clean());
        let in_test = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { println!(\"debugging a test is fine\"); }\n}\n";
        assert!(check("crates/graph/src/x.rs", in_test).is_clean());
        // dbg! is flagged too — it is the easiest macro to leave behind.
        let dbg = "fn f(x: u32) -> u32 { dbg!(x) }";
        assert_eq!(check("crates/query/src/x.rs", dbg).violations.len(), 1);
    }
}
